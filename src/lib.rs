//! Peak prediction-driven resource overcommitment — facade crate.
//!
//! Reproduction of "Take it to the Limit: Peak Prediction-driven Resource
//! Overcommitment in Datacenters" (EuroSys '21). This crate re-exports the
//! workspace's public API so downstream users can depend on a single crate:
//!
//! * [`stats`] — numerical building blocks (ECDF, Welford, percentiles, …).
//! * [`trace`] — trace-v3-shaped synthetic workload generator.
//! * [`core`] — peak oracle, practical peak predictors, simulator, metrics.
//! * [`qos`] — CPU scheduling latency model.
//! * [`scheduler`] — predictor-gated admission, placement, A/B harness.
//! * [`serve`] — online peak-prediction TCP service with fault injection.
//! * [`cluster`] — multi-process ring: supervisor, consistent hashing,
//!   cluster-wide aggregation.
//! * [`client`] — retrying typed client for [`serve`] + load generator,
//!   plus the ring-routing [`client::ClusterClient`].
//! * [`experiments`] — the table/figure reproduction harness.
//! * [`telemetry`] — structured tracing + the unified metrics registry.
//!
//! # Examples
//!
//! ```
//! use overcommit_repro::trace::{CellConfig, CellPreset};
//!
//! let cfg = CellConfig::preset(CellPreset::A).with_machines(2).with_weeks(1);
//! assert_eq!(cfg.machines, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oc_client as client;
pub use oc_cluster as cluster;
pub use oc_core as core;
pub use oc_experiments as experiments;
pub use oc_qos as qos;
pub use oc_scheduler as scheduler;
pub use oc_serve as serve;
pub use oc_stats as stats;
pub use oc_telemetry as telemetry;
pub use oc_trace as trace;
