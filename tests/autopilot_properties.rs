//! Property-based tests for the Autopilot limit recommender.

use overcommit_repro::core::autopilot::{recommend_limits, relative_slack, AutopilotConfig};
use overcommit_repro::trace::ids::{JobId, TaskId};
use overcommit_repro::trace::sample::UsageSample;
use overcommit_repro::trace::task::{SchedulingClass, TaskSpec, TaskTrace};
use overcommit_repro::trace::time::Tick;
use proptest::prelude::*;

fn task_from(usage: &[f64], declared: f64) -> TaskTrace {
    let spec = TaskSpec {
        id: TaskId::new(JobId(1), 0),
        limit: declared,
        memory_limit: 0.0,
        start: Tick(0),
        end: Tick(usage.len() as u64),
        class: SchedulingClass::Class2,
        priority: 200,
    };
    let samples = usage
        .iter()
        .map(|&u| UsageSample {
            avg: u,
            p50: u,
            p90: u,
            p95: u,
            p99: u,
            max: u,
        })
        .collect();
    TaskTrace::new(spec, samples).unwrap()
}

fn cfg() -> AutopilotConfig {
    AutopilotConfig {
        warmup_ticks: 3,
        update_interval_ticks: 5,
        window_ticks: 10,
        ..AutopilotConfig::default()
    }
}

proptest! {
    /// Recommended limits always cover current usage, stay above the
    /// configured floor, and never exceed
    /// `max(declared, margin · max usage)`.
    #[test]
    fn limits_are_sandwiched(
        usage in proptest::collection::vec(0.001f64..0.9, 1..120),
        declared in 0.05f64..1.0,
    ) {
        let t = task_from(&usage, declared);
        let c = cfg();
        let limits = recommend_limits(&t, &c).unwrap();
        prop_assert_eq!(limits.len(), usage.len());
        let max_usage = usage.iter().copied().fold(0.0f64, f64::max);
        let ceiling = declared.max(c.margin * max_usage).max(c.min_limit) + 1e-9;
        for (i, (&l, &u)) in limits.iter().zip(usage.iter()).enumerate() {
            prop_assert!(l + 1e-12 >= u, "tick {i}: limit {l} below usage {u}");
            prop_assert!(
                l >= c.min_limit.min(declared.min(u.max(c.min_limit))) - 1e-12,
                "tick {i}: limit {l} below floor"
            );
            prop_assert!(l <= ceiling, "tick {i}: limit {l} above ceiling {ceiling}");
        }
    }

    /// Warm-up keeps the declared limit in force.
    #[test]
    fn warmup_preserves_declared(
        usage in proptest::collection::vec(0.001f64..0.2, 5..60),
        declared in 0.3f64..1.0,
    ) {
        let t = task_from(&usage, declared);
        let c = cfg();
        let limits = recommend_limits(&t, &c).unwrap();
        for i in 0..c.warmup_ticks.min(usage.len()) {
            // Usage below the declared limit cannot raise it during
            // warm-up, so the declared limit stands.
            prop_assert_eq!(limits[i], declared, "tick {}", i);
        }
    }

    /// Relative slack lies in (-∞, 1] and equals zero when limits track
    /// usage exactly.
    #[test]
    fn slack_bounds(usage in proptest::collection::vec(0.01f64..0.9, 1..80)) {
        let t = task_from(&usage, 1.0);
        let exact: Vec<f64> = usage.clone();
        let s = relative_slack(&t, &exact);
        prop_assert!(s.abs() < 1e-9, "tracking limits give slack {s}");
        let loose = vec![2.0; usage.len()];
        let s = relative_slack(&t, &loose);
        prop_assert!(s > 0.0 && s <= 1.0);
    }

    /// Determinism: same inputs, same limits.
    #[test]
    fn deterministic(usage in proptest::collection::vec(0.001f64..0.9, 1..60)) {
        let t = task_from(&usage, 0.5);
        let a = recommend_limits(&t, &cfg()).unwrap();
        let b = recommend_limits(&t, &cfg()).unwrap();
        prop_assert_eq!(a, b);
    }
}
