//! Equivalence of the incremental sliding-window statistics against naive
//! recomputation from the retained samples.
//!
//! The hot-path engine answers percentile and std queries from running
//! state ([`OrderStatWindow`]'s sorted index, [`MovingWindow`]'s shifted
//! moments). These properties pin that state to the ground truth — sort
//! the buffer, take two passes — after arbitrary push sequences, including
//! eviction at every capacity from 1 to 128 and streams long enough to
//! cross the internal exact-recompute refresh boundary (4096 pushes).

use overcommit_repro::stats::{percentile_of_sorted, MovingWindow, OrderStatWindow};
use proptest::prelude::*;

fn naive_percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p).unwrap()
}

fn naive_std(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    var.sqrt()
}

proptest! {
    /// OrderStatWindow percentiles are bit-identical to sorting the FIFO
    /// tail, at every prefix of the stream and at several percentiles.
    #[test]
    fn order_stat_percentile_matches_sort(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..400),
        cap in 1usize..128,
        p in 0.0f64..=100.0,
    ) {
        let mut w = OrderStatWindow::new(cap).unwrap();
        let mut fifo: Vec<f64> = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            w.push(x);
            fifo.push(x);
            let tail = &fifo[fifo.len().saturating_sub(cap)..];
            // Spot-check each prefix at the sampled percentile, and the
            // final state at the fixed grid below.
            prop_assert_eq!(w.percentile(p).unwrap(), naive_percentile(tail, p), "prefix {}", i);
        }
        let tail = &fifo[fifo.len().saturating_sub(cap)..];
        for q in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(w.percentile(q).unwrap(), naive_percentile(tail, q), "p{}", q);
        }
        prop_assert_eq!(w.max(), tail.iter().copied().reduce(f64::max));
        prop_assert_eq!(w.min(), tail.iter().copied().reduce(f64::min));
        prop_assert_eq!(w.len(), tail.len());
    }

    /// Incremental mean/std match two-pass recomputation after arbitrary
    /// pushes with eviction.
    #[test]
    fn moving_window_std_matches_two_pass(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..400),
        cap in 1usize..128,
    ) {
        let mut w = MovingWindow::new(cap).unwrap();
        let mut fifo: Vec<f64> = Vec::new();
        for &x in &xs {
            w.push(x);
            fifo.push(x);
        }
        let tail = &fifo[fifo.len().saturating_sub(cap)..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((w.mean() - mean).abs() <= 1e-9 * (1.0 + mean.abs()));
        let exact = naive_std(tail);
        prop_assert!(
            (w.population_std() - exact).abs() <= 1e-9 * (1.0 + exact),
            "incremental {} vs exact {}", w.population_std(), exact
        );
    }

    /// Long streams cross the REFRESH_EVERY = 4096 exact-recompute
    /// boundary; statistics must stay pinned to the ground truth on both
    /// sides of it.
    #[test]
    fn refresh_boundary_preserves_equivalence(
        cap in 1usize..128,
        seed in 0u64..1000,
        p in 0.0f64..=100.0,
    ) {
        let n = 4200usize; // > 4096, crosses the refresh boundary.
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64 + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                1e6 + ((h >> 11) % 100_000) as f64 / 1000.0
            })
            .collect();
        let mut mw = MovingWindow::new(cap).unwrap();
        let mut ow = OrderStatWindow::new(cap).unwrap();
        for &x in &xs {
            mw.push(x);
            ow.push(x);
        }
        let tail = &xs[n - cap.min(n)..];
        prop_assert_eq!(ow.percentile(p).unwrap(), naive_percentile(tail, p));
        let exact = naive_std(tail);
        prop_assert!(
            (mw.population_std() - exact).abs() <= 1e-6 * (1.0 + exact),
            "incremental {} vs exact {} (cap {})", mw.population_std(), exact, cap
        );
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((mw.mean() - mean).abs() <= 1e-9 * (1.0 + mean.abs()));
    }
}

/// Duplicates, signed zeros, and eviction order interact correctly: the
/// sorted index must evict exactly the sample that left the FIFO.
#[test]
fn eviction_with_duplicates_is_exact() {
    let mut w = OrderStatWindow::new(3).unwrap();
    for x in [1.0, 1.0, 2.0, 1.0, 2.0, 2.0, 1.0] {
        w.push(x);
    }
    // FIFO tail is [2, 2, 1].
    assert_eq!(w.sorted(), &[1.0, 2.0, 2.0]);
    assert_eq!(w.percentile(50.0).unwrap(), 2.0);
}
