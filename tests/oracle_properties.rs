//! Property-based tests for the peak oracle and its supporting kernels.

use overcommit_repro::core::oracle::{future_peak, machine_oracle, task_future_peak};
use overcommit_repro::core::segtree::MaxTree;
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::gen::WorkloadGenerator;
use overcommit_repro::trace::ids::MachineId;
use overcommit_repro::trace::sample::UsageMetric;
use overcommit_repro::trace::time::Tick;
use proptest::prelude::*;

proptest! {
    /// The O(n) sliding-window maximum equals the O(n·h) naive scan.
    #[test]
    fn future_peak_matches_naive(
        series in proptest::collection::vec(0.0f64..10.0, 0..200),
        horizon in 1u64..400,
    ) {
        let fast = future_peak(&series, horizon);
        prop_assert_eq!(fast.len(), series.len());
        for i in 0..series.len() {
            let end = (i + horizon as usize).min(series.len());
            let naive = series[i..end]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(fast[i], naive);
        }
    }

    /// A longer horizon never lowers the oracle.
    #[test]
    fn horizon_monotonicity(
        series in proptest::collection::vec(0.0f64..10.0, 1..150),
        h1 in 1u64..100,
        h2 in 1u64..100,
    ) {
        let (short, long) = (h1.min(h2), h1.max(h2));
        let a = future_peak(&series, short);
        let b = future_peak(&series, long);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(y >= x);
        }
    }

    /// The oracle never drops below the present value and never exceeds
    /// the series maximum.
    #[test]
    fn oracle_bounds(
        series in proptest::collection::vec(0.0f64..10.0, 1..150),
        horizon in 1u64..300,
    ) {
        let po = future_peak(&series, horizon);
        let global = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (i, &v) in po.iter().enumerate() {
            prop_assert!(v >= series[i]);
            prop_assert!(v <= global);
        }
    }

    /// The max segment tree agrees with a naive array under arbitrary
    /// interleavings of point updates and range queries.
    #[test]
    fn segtree_matches_naive(
        n in 1usize..80,
        ops in proptest::collection::vec((0usize..80, -5.0f64..5.0, 0usize..80, 0usize..80), 1..100),
    ) {
        let mut tree = MaxTree::new(n);
        let mut naive = vec![0.0f64; n];
        for (i, delta, lo, hi) in ops {
            let i = i % n;
            tree.add(i, delta);
            naive[i] += delta;
            let lo = lo % (n + 1);
            let hi = hi % (n + 1);
            let expected = if lo >= hi.min(n) {
                0.0
            } else {
                naive[lo..hi.min(n)]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            let got = tree.range_max(lo, hi);
            prop_assert!((got - expected).abs() < 1e-9, "[{lo},{hi}) got {got} want {expected}");
        }
    }
}

/// The scheduled-tasks oracle bounds: current usage ≤ PO ≤ Σ limits, for
/// every metric and several horizons, on a real generated machine.
#[test]
fn machine_oracle_sandwich() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.duration_ticks = 400;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let trace = gen.generate_machine(MachineId(3)).unwrap();
    for metric in [UsageMetric::Avg, UsageMetric::P90, UsageMetric::Max] {
        for horizon in [1u64, 12, 288, 10_000] {
            let po = machine_oracle(&trace, metric, horizon);
            for (i, &v) in po.iter().enumerate() {
                let t = Tick(i as u64);
                let now = trace.total_usage_at(t, metric);
                let limit = trace.total_limit_at(t);
                assert!(
                    v + 1e-9 >= now,
                    "{metric:?} h={horizon} tick {i}: oracle {v} below usage {now}"
                );
                assert!(
                    v <= limit + 1e-9,
                    "{metric:?} h={horizon} tick {i}: oracle {v} above limits {limit}"
                );
            }
        }
    }
}

/// The per-task future peak is the task's own suffix maximum: adding a
/// task to a machine can only raise the machine oracle.
#[test]
fn oracle_superadditive_in_tasks() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.duration_ticks = 300;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let trace = gen.generate_machine(MachineId(1)).unwrap();
    let full = machine_oracle(&trace, UsageMetric::P90, 288);

    let mut reduced = trace.clone();
    let removed = reduced.tasks.pop().unwrap();
    let partial = machine_oracle(&reduced, UsageMetric::P90, 288);
    for i in 0..full.len() {
        assert!(
            full[i] + 1e-9 >= partial[i],
            "tick {i}: removing task {} raised the oracle",
            removed.spec.id
        );
    }
}

/// Task future peaks at the task's start equal the task's lifetime peak
/// when the horizon covers the whole lifetime.
#[test]
fn task_future_peak_at_start_is_lifetime_peak() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.duration_ticks = 300;
    let gen = WorkloadGenerator::new(cell).unwrap();
    let trace = gen.generate_machine(MachineId(2)).unwrap();
    for task in trace.tasks.iter().take(30) {
        let fp = task_future_peak(task, UsageMetric::Max, u64::MAX);
        assert!((fp[0] - task.peak()).abs() < 1e-12);
    }
}
