//! Property-based tests for the statistics substrate.

use overcommit_repro::stats::{
    ols, pearson, percentile_slice, spearman, Ecdf, MovingWindow, P2Quantile, Welford,
};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 1..200)
}

proptest! {
    /// Welford matches the naive two-pass mean/variance.
    #[test]
    fn welford_matches_naive(xs in samples()) {
        let mut w = Welford::new();
        w.extend(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((w.population_variance() - var).abs() < 1e-6 * (1.0 + var));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging two Welford accumulators equals accumulating the
    /// concatenation.
    #[test]
    fn welford_merge_is_concatenation(a in samples(), b in samples()) {
        let mut wa = Welford::new();
        wa.extend(a.iter().copied());
        let mut wb = Welford::new();
        wb.extend(b.iter().copied());
        wa.merge(&wb);
        let mut all = Welford::new();
        all.extend(a.iter().chain(b.iter()).copied());
        prop_assert!((wa.mean() - all.mean()).abs() < 1e-8 * (1.0 + all.mean().abs()));
        prop_assert!(
            (wa.population_variance() - all.population_variance()).abs()
                < 1e-6 * (1.0 + all.population_variance())
        );
        prop_assert_eq!(wa.count(), all.count());
        prop_assert_eq!(wa.max(), all.max());
    }

    /// The moving window over the full stream equals direct statistics of
    /// the tail.
    #[test]
    fn moving_window_is_suffix_stats(xs in samples(), cap in 1usize..50) {
        let mut w = MovingWindow::new(cap).unwrap();
        for &x in &xs {
            w.push(x);
        }
        let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-8 * (1.0 + mean.abs()));
        prop_assert_eq!(w.len(), tail.len());
        prop_assert_eq!(w.last(), tail.last().copied());
        let wmax = w.max().expect("window is non-empty");
        let tmax = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(wmax, tmax);
    }

    /// Percentiles are monotone in `p`, bounded by min/max, and exact at
    /// the endpoints.
    #[test]
    fn percentile_monotone_and_bounded(xs in samples()) {
        let lo = percentile_slice(&xs, 0.0).unwrap();
        let hi = percentile_slice(&xs, 100.0).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
        let mut last = lo;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = percentile_slice(&xs, p).unwrap();
            prop_assert!(v + 1e-12 >= last);
            prop_assert!(v >= min && v <= max);
            last = v;
        }
    }

    /// The ECDF is a proper distribution function: prob_le is monotone,
    /// hits 0 below the min and 1 at the max, and quantile inverts it.
    #[test]
    fn ecdf_is_a_cdf(xs in samples()) {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let e = Ecdf::new(xs).unwrap();
        prop_assert_eq!(e.prob_le(min - 1.0), 0.0);
        prop_assert_eq!(e.prob_le(max), 1.0);
        let mut last = 0.0;
        let step = (max - min) / 7.0;
        if step > 0.0 {
            for k in 0..8 {
                let p = e.prob_le(min + step * k as f64);
                prop_assert!(p >= last);
                last = p;
            }
        }
        // Interpolated quantiles sit between order statistics, so the
        // step CDF at the quantile may undershoot by at most one sample.
        let slack = 1.0 / e.len() as f64 + 1e-12;
        for q in [0.1, 0.5, 0.9] {
            let x = e.quantile(q).unwrap();
            prop_assert!(e.prob_le(x) + slack >= q);
        }
    }

    /// Pearson is exactly ±1 on affine relationships; Spearman is
    /// invariant under strictly monotone transforms.
    #[test]
    fn correlation_laws(
        xs in proptest::collection::vec(-50.0f64..50.0, 3..100),
        a in 0.1f64..5.0,
        b in -10.0f64..10.0,
    ) {
        // Need variation for correlation to exist.
        let spread = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        prop_assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-6);
        let neg: Vec<f64> = xs.iter().map(|&x| -a * x + b).collect();
        prop_assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-6);

        // Monotone transform: exp(x/50) preserves ranks.
        let zs: Vec<f64> = xs.iter().map(|&x| (x / 50.0).exp()).collect();
        let s1 = spearman(&xs, &ys).unwrap();
        let s2 = spearman(&zs, &ys).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    /// OLS recovers exact affine coefficients.
    #[test]
    fn ols_recovers_lines(
        xs in proptest::collection::vec(-50.0f64..50.0, 3..80),
        slope in -5.0f64..5.0,
        intercept in -10.0f64..10.0,
    ) {
        let spread = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-3);
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = ols(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
        prop_assert!((fit.predict(1.0) - (slope + intercept)).abs() < 1e-5);
    }

    /// The streaming P² estimator lands near the exact quantile on
    /// well-behaved data.
    #[test]
    fn p2_tracks_exact(seed in 0u64..1000) {
        // Deterministic pseudo-uniform stream.
        let n = 3000usize;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64 + seed).wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let mut q = P2Quantile::new(0.9).unwrap();
        for &x in &xs {
            q.push(x);
        }
        let exact = percentile_slice(&xs, 90.0).unwrap();
        prop_assert!(
            (q.estimate().unwrap() - exact).abs() < 0.05,
            "p2 {} vs exact {exact}",
            q.estimate().unwrap()
        );
    }
}

/// Error paths behave: empty inputs and mismatched lengths are rejected,
/// never panicking.
#[test]
fn error_paths() {
    assert!(percentile_slice(&[], 50.0).is_err());
    assert!(percentile_slice(&[1.0], -1.0).is_err());
    assert!(percentile_slice(&[1.0], 101.0).is_err());
    assert!(Ecdf::new(vec![]).is_err());
    assert!(Ecdf::new(vec![f64::NAN]).is_err());
    assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
    assert!(spearman(&[], &[]).is_err());
    assert!(ols(&[1.0, 1.0], &[2.0, 3.0]).is_err()); // Degenerate x.
    assert!(MovingWindow::new(0).is_err());
    assert!(P2Quantile::new(1.5).is_err());
}
