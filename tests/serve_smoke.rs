//! Smoke test: the online service and the offline simulator agree
//! bit-for-bit.
//!
//! The same generated machine is (a) run through `simulate_machine` with
//! series recording and (b) streamed tick by tick through the typed
//! `oc-client` as `OBSERVE` calls followed by one `PREDICT` per tick.
//! Because the wire protocol uses shortest-round-trip float formatting,
//! the shard's `IncrementalView` replays the exact sample stream the
//! simulator's `MachineView` saw, and every served prediction must match
//! the offline one to the last bit.
//!
//! The chaos variant re-runs the identity with seeded fault injection on
//! the client's sockets — delays, partial reads/writes, dropped
//! connections. The client's retries are safe because ingestion is
//! idempotent per `(tick, task)`: a re-sent sample for a still-pending
//! tick updates in place bit-identically. So even with ~8% of socket
//! operations faulted, *every* served prediction must still equal the
//! offline reference exactly.
//!
//! The shard clamps its answers with `clamp_prediction` (served numbers
//! must be actionable), while the recorded series keeps raw predictor
//! output — so the offline reference is `raw.clamp(0.0, Σ limits)` with
//! the recorded per-tick limit sum.
//!
//! Ticks with zero live tasks are skipped: the simulator observes them as
//! explicit empty ticks, while the service synthesizes them by gap-filling
//! only once a *later* sample arrives — a `PREDICT` issued at the empty
//! tick itself therefore sees the pre-gap state. State re-converges at the
//! next sample, which the test confirms by comparing every non-empty tick.

use overcommit_repro::client::{Client, ClientConfig};
use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::sim::simulate_machine;
use overcommit_repro::serve::fault::FaultPlan;
use overcommit_repro::serve::proto::{Request, Response};
use overcommit_repro::serve::{Frontend, ServeConfig, Server};
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::ids::CellId;
use overcommit_repro::trace::{MachineId, WorkloadGenerator};
use std::time::Duration;

/// Replays machines 0..4 of a small preset-A cell through a server and
/// asserts bit-identity of every served prediction against the offline
/// simulator. `client_cfg` lets the chaos variant inject faults;
/// `frontend` pins which connection frontend serves the replay, so the
/// identity is checked against both the reactor and the thread-per-
/// connection implementation.
fn assert_online_matches_offline(client_cfg: &ClientConfig, frontend: Frontend) -> u64 {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    cell.duration_ticks = 96; // 8 hours of 5-minute ticks
    let generator = WorkloadGenerator::new(cell).unwrap();

    let sim_cfg = SimConfig::default().with_series();
    let spec = PredictorSpec::paper_max();
    let mut faults_total = 0u64;

    for m in 0..4u32 {
        let trace = generator.generate_machine(MachineId(m)).unwrap();

        // Offline reference: raw per-tick predictions + limit sums.
        let predictors = vec![spec.build().unwrap()];
        let result = simulate_machine(&trace, &sim_cfg, &predictors).unwrap();
        let series = result.series.as_ref().expect("series recording enabled");

        // Online replay: same machine, same predictor, same sim config,
        // same per-machine capacity.
        let server = Server::start(
            ServeConfig::default()
                .with_shards(3) // deliberately co-prime with nothing
                .with_capacity(trace.capacity)
                .with_predictor(spec.clone())
                .with_sim(sim_cfg.clone())
                .with_frontend(frontend),
        )
        .unwrap();

        let mut client = Client::connect(server.addr(), client_cfg.clone()).unwrap();
        let cell_id = CellId::new("smoke");

        let mut compared = 0usize;
        let mut predicts_sent = 0u64;
        for (i, t) in trace.horizon.iter().enumerate() {
            // Stream the tick's samples in trace task order — the order
            // `drive_ticks` feeds the simulator's view. Sequential typed
            // calls keep each sample acknowledged before the next is
            // sent, so a chaos retry always re-sends a still-pending
            // tick (idempotent, bit-identical).
            let mut sent = 0usize;
            for task in trace.tasks_at(t) {
                let usage = task
                    .sample_at(t)
                    .map(|s| sim_cfg.metric.of(s))
                    .unwrap_or(0.0);
                client
                    .observe(
                        &cell_id,
                        trace.machine,
                        task.spec.id,
                        usage,
                        task.spec.limit,
                        t.0,
                    )
                    .unwrap_or_else(|e| panic!("machine {m} tick {i}: {e}"));
                sent += 1;
            }
            if sent == 0 {
                continue; // empty tick — see the module docs
            }
            let served = client
                .predict(&cell_id, trace.machine)
                .unwrap_or_else(|e| panic!("machine {m} tick {i}: {e}"));
            predicts_sent += 1;

            let offline = series.predictions[0][i].clamp(0.0, series.limit[i]);
            assert_eq!(
                served.to_bits(),
                offline.to_bits(),
                "machine {m} tick {i}: served {served} != offline {offline}"
            );
            compared += 1;
        }

        assert!(
            compared * 2 >= trace.horizon.len() as usize,
            "machine {m}: only {compared} of {} ticks had samples — too sparse to be a \
             meaningful identity check",
            trace.horizon.len()
        );

        faults_total += client.faults_injected();
        let retried = client.metrics().retries > 0;
        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.errors, 0);
        if !retried {
            // Without retries there are no duplicate sends, so the exact
            // request counts must survive the trip.
            assert_eq!(stats.predicts, predicts_sent);
            assert_eq!(stats.stale, 0);
        } else {
            // Retries may duplicate requests (idempotently); counts only
            // grow.
            assert!(stats.predicts >= predicts_sent);
        }
    }
    faults_total
}

/// Replays machines 0..4 through *pipelined* windows twice — unframed
/// and with `BATCH` framing — and asserts every served prediction is
/// bit-identical to the offline simulator and across the two replays.
///
/// This is the batched-ingest counterpart of
/// [`assert_online_matches_offline`]: the request script is identical
/// (tick-ordered samples, one `PREDICT` per non-empty tick), only the
/// transport framing differs, so any divergence pins the blame on the
/// `BATCH` data plane (frontend coalescing, the prediction cache, or the
/// zero-copy codec) rather than the workload.
fn assert_batched_matches_offline(client_cfg: &ClientConfig, frontend: Frontend) -> u64 {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    cell.duration_ticks = 96;
    let generator = WorkloadGenerator::new(cell).unwrap();

    let sim_cfg = SimConfig::default().with_series();
    let spec = PredictorSpec::paper_max();
    let mut faults_total = 0u64;

    for m in 0..4u32 {
        let trace = generator.generate_machine(MachineId(m)).unwrap();

        let predictors = vec![spec.build().unwrap()];
        let result = simulate_machine(&trace, &sim_cfg, &predictors).unwrap();
        let series = result.series.as_ref().expect("series recording enabled");

        // One shared request script; `expect` maps each PREDICT's request
        // index to the offline reference bits for that tick.
        let cell_id = CellId::new("smoke");
        let mut reqs: Vec<Request> = Vec::new();
        let mut expect: Vec<(usize, u64)> = Vec::new();
        for (i, t) in trace.horizon.iter().enumerate() {
            let mut sent = 0usize;
            for task in trace.tasks_at(t) {
                let usage = task
                    .sample_at(t)
                    .map(|s| sim_cfg.metric.of(s))
                    .unwrap_or(0.0);
                reqs.push(Request::Observe {
                    cell: cell_id.clone(),
                    machine: trace.machine,
                    task: task.spec.id,
                    usage,
                    limit: task.spec.limit,
                    mem: None,
                    tick: t.0,
                });
                sent += 1;
            }
            if sent == 0 {
                continue; // empty tick — see the module docs
            }
            let offline = series.predictions[0][i].clamp(0.0, series.limit[i]);
            expect.push((reqs.len(), offline.to_bits()));
            reqs.push(Request::Predict {
                cell: cell_id.clone(),
                machine: trace.machine,
                vector: false,
            });
        }

        let mut replay = |batch: usize| -> Vec<u64> {
            let server = Server::start(
                ServeConfig::default()
                    .with_shards(3)
                    .with_capacity(trace.capacity)
                    .with_predictor(spec.clone())
                    .with_sim(sim_cfg.clone())
                    .with_frontend(frontend),
            )
            .unwrap();
            let mut client = Client::connect(
                server.addr(),
                client_cfg
                    .clone()
                    .with_pipeline_window(64)
                    .with_batch(batch),
            )
            .unwrap();
            let mut got: Vec<Option<u64>> = vec![None; reqs.len()];
            client
                .pipeline_with(&reqs, |idx, resp, _| {
                    if let Response::Pred { peak, .. } = resp {
                        got[idx] = Some(peak.to_bits());
                    }
                })
                .unwrap_or_else(|e| panic!("machine {m} batch {batch}: {e}"));
            faults_total += client.faults_injected();
            drop(client);
            let stats = server.shutdown();
            assert_eq!(stats.errors, 0, "machine {m} batch {batch}");
            expect
                .iter()
                .map(|&(idx, _)| got[idx].expect("every PREDICT resolves"))
                .collect()
        };

        let unbatched = replay(1);
        let batched = replay(32);
        assert!(!expect.is_empty(), "machine {m}: no ticks had samples");
        for (k, &(_, offline_bits)) in expect.iter().enumerate() {
            assert_eq!(
                batched[k],
                offline_bits,
                "machine {m} predict {k}: batched {} != offline {}",
                f64::from_bits(batched[k]),
                f64::from_bits(offline_bits),
            );
            assert_eq!(
                unbatched[k], batched[k],
                "machine {m} predict {k}: unbatched and batched replays disagree"
            );
        }
    }
    faults_total
}

#[test]
fn served_predictions_match_offline_simulation_bit_for_bit() {
    let faults = assert_online_matches_offline(&ClientConfig::default(), Frontend::default());
    assert_eq!(faults, 0);
}

#[test]
fn served_predictions_survive_chaos_bit_for_bit() {
    let plan = FaultPlan::new(20210426, 0.08).with_max_delay(Duration::from_micros(200));
    let cfg = ClientConfig::default().with_seed(11).with_faults(plan);
    let faults = assert_online_matches_offline(&cfg, Frontend::default());
    assert!(faults > 0, "chaos plan never fired");
}

/// The thread-per-connection frontend must serve the same bits as the
/// reactor (the default above) — the frontends share the entire data
/// plane below the socket loop, and this pins that the split stays
/// behavioral-identical.
#[test]
fn threaded_frontend_matches_offline_bit_for_bit() {
    let faults = assert_online_matches_offline(&ClientConfig::default(), Frontend::Threaded);
    assert_eq!(faults, 0);
}

#[test]
fn threaded_frontend_survives_chaos_bit_for_bit() {
    let plan = FaultPlan::new(20210426, 0.08).with_max_delay(Duration::from_micros(200));
    let cfg = ClientConfig::default().with_seed(11).with_faults(plan);
    let faults = assert_online_matches_offline(&cfg, Frontend::Threaded);
    assert!(faults > 0, "chaos plan never fired");
}

#[test]
fn batched_ingest_matches_offline_bit_for_bit() {
    let faults = assert_batched_matches_offline(&ClientConfig::default(), Frontend::default());
    assert_eq!(faults, 0);
}

#[test]
fn threaded_batched_ingest_matches_offline_bit_for_bit() {
    let faults = assert_batched_matches_offline(&ClientConfig::default(), Frontend::Threaded);
    assert_eq!(faults, 0);
}

/// Batched ingest under chaos: *state* bit-identity.
///
/// With pipelining plus fault injection, a lost response makes the
/// client re-send a `PREDICT` the server may have already answered — and
/// by then later samples from the same window have been ingested, so
/// intermediate prediction bits are legitimately different from the
/// per-tick offline reference (true for unframed pipelining too; the
/// sequential chaos test above sidesteps it by acking each request
/// before the next). The invariant that must survive framing is the PR
/// 2/3 one: once every acknowledged sample has landed, the served state
/// is bit-identical to the offline `MachineView` replay. So this test
/// streams every sample through chaos-faulted `BATCH` frames, then asks
/// a clean client for one final `PREDICT` and requires it to match the
/// offline final-tick prediction to the last bit.
#[test]
fn batched_ingest_survives_chaos_bit_for_bit() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    cell.duration_ticks = 96;
    let generator = WorkloadGenerator::new(cell).unwrap();

    let sim_cfg = SimConfig::default().with_series();
    let spec = PredictorSpec::paper_max();
    let mut faults_total = 0u64;

    for m in 0..4u32 {
        let trace = generator.generate_machine(MachineId(m)).unwrap();

        let predictors = vec![spec.build().unwrap()];
        let result = simulate_machine(&trace, &sim_cfg, &predictors).unwrap();
        let series = result.series.as_ref().expect("series recording enabled");

        let cell_id = CellId::new("smoke");
        let mut reqs: Vec<Request> = Vec::new();
        let mut last_offline: Option<u64> = None;
        for (i, t) in trace.horizon.iter().enumerate() {
            let mut sent = 0usize;
            for task in trace.tasks_at(t) {
                let usage = task
                    .sample_at(t)
                    .map(|s| sim_cfg.metric.of(s))
                    .unwrap_or(0.0);
                reqs.push(Request::Observe {
                    cell: cell_id.clone(),
                    machine: trace.machine,
                    task: task.spec.id,
                    usage,
                    limit: task.spec.limit,
                    mem: None,
                    tick: t.0,
                });
                sent += 1;
            }
            if sent > 0 {
                let offline = series.predictions[0][i].clamp(0.0, series.limit[i]);
                last_offline = Some(offline.to_bits());
            }
        }
        let expected = last_offline.expect("machine has at least one sample");

        let server = Server::start(
            ServeConfig::default()
                .with_shards(3)
                .with_capacity(trace.capacity)
                .with_predictor(spec.clone())
                .with_sim(sim_cfg.clone()),
        )
        .unwrap();

        let plan = FaultPlan::new(20210426 + u64::from(m), 0.08)
            .with_max_delay(Duration::from_micros(200));
        let mut chaos_client = Client::connect(
            server.addr(),
            ClientConfig::default()
                .with_seed(11)
                .with_faults(plan)
                .with_pipeline_window(64)
                .with_batch(32),
        )
        .unwrap();
        let mut acked = 0u64;
        chaos_client
            .pipeline_with(&reqs, |_, resp, _| {
                if matches!(resp, Response::Ok) {
                    acked += 1;
                }
            })
            .unwrap_or_else(|e| panic!("machine {m}: {e}"));
        assert_eq!(acked, reqs.len() as u64, "machine {m}: unresolved samples");
        faults_total += chaos_client.faults_injected();
        drop(chaos_client);

        let mut clean = Client::connect(server.addr(), ClientConfig::default()).unwrap();
        let served = clean
            .predict(&cell_id, trace.machine)
            .unwrap_or_else(|e| panic!("machine {m}: {e}"));
        assert_eq!(
            served.to_bits(),
            expected,
            "machine {m}: final served state {served} != offline {}",
            f64::from_bits(expected),
        );
        drop(clean);

        let stats = server.shutdown();
        assert_eq!(stats.errors, 0, "machine {m}");
        assert!(
            stats.observes + stats.stale >= acked,
            "machine {m}: lost acked samples: {stats:?}"
        );
    }
    assert!(faults_total > 0, "chaos plan never fired");
}
