//! Smoke test: the online service and the offline simulator agree
//! bit-for-bit.
//!
//! The same generated machine is (a) run through `simulate_machine` with
//! series recording and (b) streamed tick by tick over TCP as `OBSERVE`
//! lines followed by one `PREDICT` per tick. Because the wire protocol
//! uses shortest-round-trip float formatting, the shard's `IncrementalView`
//! replays the exact sample stream the simulator's `MachineView` saw, and
//! every served prediction must match the offline one to the last bit.
//!
//! The shard clamps its answers with `clamp_prediction` (served numbers
//! must be actionable), while the recorded series keeps raw predictor
//! output — so the offline reference is `raw.clamp(0.0, Σ limits)` with
//! the recorded per-tick limit sum.
//!
//! Ticks with zero live tasks are skipped: the simulator observes them as
//! explicit empty ticks, while the service synthesizes them by gap-filling
//! only once a *later* sample arrives — a `PREDICT` issued at the empty
//! tick itself therefore sees the pre-gap state. State re-converges at the
//! next sample, which the test confirms by comparing every non-empty tick.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::sim::simulate_machine;
use overcommit_repro::serve::proto::{Request, Response};
use overcommit_repro::serve::{ServeConfig, Server};
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::ids::CellId;
use overcommit_repro::trace::{MachineId, WorkloadGenerator};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

#[test]
fn served_predictions_match_offline_simulation_bit_for_bit() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    cell.duration_ticks = 96; // 8 hours of 5-minute ticks
    let generator = WorkloadGenerator::new(cell).unwrap();

    let sim_cfg = SimConfig::default().with_series();
    let spec = PredictorSpec::paper_max();

    for m in 0..4u32 {
        let trace = generator.generate_machine(MachineId(m)).unwrap();

        // Offline reference: raw per-tick predictions + limit sums.
        let predictors = vec![spec.build().unwrap()];
        let result = simulate_machine(&trace, &sim_cfg, &predictors).unwrap();
        let series = result.series.as_ref().expect("series recording enabled");

        // Online replay: same machine, same predictor, same sim config,
        // same per-machine capacity.
        let server = Server::start(
            ServeConfig::default()
                .with_shards(3) // deliberately co-prime with nothing
                .with_capacity(trace.capacity)
                .with_predictor(spec.clone())
                .with_sim(sim_cfg.clone()),
        )
        .unwrap();

        let stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let cell_id = CellId::new("smoke");
        let mut line = String::new();

        let mut compared = 0usize;
        let mut predicts_sent = 0u64;
        for (i, t) in trace.horizon.iter().enumerate() {
            // Stream the tick's samples in trace task order — the order
            // `drive_ticks` feeds the simulator's view.
            let mut batch = String::new();
            let mut sent = 0usize;
            for task in trace.tasks_at(t) {
                let usage = task
                    .sample_at(t)
                    .map(|s| sim_cfg.metric.of(s))
                    .unwrap_or(0.0);
                let req = Request::Observe {
                    cell: cell_id.clone(),
                    machine: trace.machine,
                    task: task.spec.id,
                    usage,
                    limit: task.spec.limit,
                    tick: t.0,
                };
                batch.push_str(&req.encode());
                batch.push('\n');
                sent += 1;
            }
            if sent == 0 {
                continue; // empty tick — see the module docs
            }
            batch.push_str(
                &Request::Predict {
                    cell: cell_id.clone(),
                    machine: trace.machine,
                }
                .encode(),
            );
            batch.push('\n');
            predicts_sent += 1;
            writer.write_all(batch.as_bytes()).unwrap();
            writer.flush().unwrap();

            for _ in 0..sent {
                line.clear();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim_end(), "OK", "machine {m} tick {i}");
            }
            line.clear();
            reader.read_line(&mut line).unwrap();
            let served = match Response::parse(line.trim_end()).unwrap() {
                Response::Pred { peak } => peak,
                other => panic!("machine {m} tick {i}: expected PRED, got {other:?}"),
            };

            let offline = series.predictions[0][i].clamp(0.0, series.limit[i]);
            assert_eq!(
                served.to_bits(),
                offline.to_bits(),
                "machine {m} tick {i}: served {served} != offline {offline}"
            );
            compared += 1;
        }

        assert!(
            compared * 2 >= trace.horizon.len() as usize,
            "machine {m}: only {compared} of {} ticks had samples — too sparse to be a \
             meaningful identity check",
            trace.horizon.len()
        );

        drop((reader, writer));
        let stats = server.shutdown();
        assert_eq!(stats.predicts, predicts_sent);
        assert_eq!(stats.stale, 0);
        assert_eq!(stats.errors, 0);
    }
}
