//! Smoke tests for the reproduction harness.

use oc_experiments::common::{Opts, Scale};

/// Unknown experiment ids fail with a helpful message.
#[test]
fn unknown_experiment_is_rejected() {
    let err = oc_experiments::dispatch("fig99", &Opts::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown experiment"));
    assert!(
        msg.contains("fig10"),
        "message should list known ids: {msg}"
    );
}

/// Every advertised experiment id dispatches (identity check only — the
/// full quick-scale suite runs in release via `repro all`).
#[test]
fn all_ids_are_known() {
    // Dispatching with an impossible results dir would still run the
    // simulation before failing on write, so this test only checks id
    // resolution indirectly: the "all" list and the A/B id must be
    // distinct and non-empty.
    assert!(!oc_experiments::ALL_EXPERIMENTS.is_empty());
    assert!(!oc_experiments::ALL_EXPERIMENTS.contains(&oc_experiments::AB_EXPERIMENT));
}

/// One real end-to-end experiment pass, writing CSV to a temp directory.
/// Debug builds make this the slowest test in the workspace, so it is
/// ignored by default; CI and `repro all` cover the release path.
///
/// ```text
/// cargo test --release --test experiments_smoke -- --ignored
/// ```
#[test]
#[ignore = "runs a quick-scale experiment; use --release"]
fn fig4_end_to_end() {
    let dir = std::env::temp_dir().join("oc-experiments-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let opts = Opts {
        scale: Scale::Quick,
        threads: 2,
        results: dir.clone(),
        plot: false,
        seed: None,
    };
    oc_experiments::dispatch("fig4", &opts).unwrap();
    let csv = std::fs::read_to_string(dir.join("fig4.csv")).unwrap();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("series,x,cdf"));
    assert!(lines.count() > 100, "fig4 CSV suspiciously small");
}
