//! Property-based tests for the QoS substrate and its coupling to the
//! simulator.

use overcommit_repro::qos::{slo_miss_rate, LatencyModel, QosReport};
use proptest::prelude::*;

proptest! {
    /// Expected latency is monotone in the demand ratio and bounded below
    /// by the base latency.
    #[test]
    fn expected_latency_monotone(rhos in proptest::collection::vec(0.0f64..1.5, 2..50)) {
        let m = LatencyModel::default();
        let mut sorted = rhos.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &rho in &sorted {
            let l = m.expected_latency(rho);
            prop_assert!(l + 1e-12 >= last, "not monotone at rho {rho}");
            prop_assert!(l >= m.base);
            prop_assert!(l.is_finite());
            last = l;
        }
    }

    /// The machine latency series is positive, finite, and its length
    /// matches the usage series.
    #[test]
    fn series_shape(
        usage in proptest::collection::vec(0.0f64..2.0, 0..200),
        key in 0u64..1000,
    ) {
        let m = LatencyModel::default();
        let s = m.machine_series(&usage, 1.0, key);
        prop_assert_eq!(s.len(), usage.len());
        for &l in &s {
            prop_assert!(l > 0.0 && l.is_finite());
        }
    }

    /// QoS reports order their percentiles and normalization rescales
    /// them coherently.
    #[test]
    fn report_percentiles_ordered(series in proptest::collection::vec(0.01f64..100.0, 1..300)) {
        let r = QosReport::from_series(&series).unwrap();
        prop_assert!(r.p50 <= r.p90 + 1e-12);
        prop_assert!(r.p90 <= r.p99 + 1e-12);
        prop_assert!(r.p99 <= r.max + 1e-12);
        prop_assert!(r.mean <= r.max + 1e-12);
        let n = r.normalized(2.0).unwrap();
        prop_assert!((n.max - r.max / 2.0).abs() < 1e-12);
        prop_assert!((n.p50 - r.p50 / 2.0).abs() < 1e-12);
    }

    /// SLO miss rate is a CDF complement: monotone non-increasing in the
    /// threshold, in [0, 1].
    #[test]
    fn slo_miss_monotone(series in proptest::collection::vec(0.0f64..10.0, 1..200)) {
        let mut last = 1.0;
        for threshold in [0.0, 1.0, 2.0, 5.0, 10.0] {
            let miss = slo_miss_rate(&series, threshold);
            prop_assert!((0.0..=1.0).contains(&miss));
            prop_assert!(miss <= last + 1e-12);
            last = miss;
        }
        prop_assert_eq!(slo_miss_rate(&series, f64::INFINITY), 0.0);
    }
}

/// Higher contention in the usage series produces a stochastically higher
/// latency series under the same noise stream.
#[test]
fn contention_dominance() {
    let m = LatencyModel::default();
    let calm: Vec<f64> = (0..2000)
        .map(|i| 0.3 + 0.1 * ((i as f64) / 50.0).sin())
        .collect();
    let hot: Vec<f64> = calm.iter().map(|&u| u + 0.5).collect();
    // Same machine key → identical noise draws, so dominance is per-tick.
    let a = m.machine_series(&calm, 1.0, 7);
    let b = m.machine_series(&hot, 1.0, 7);
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(y >= x, "hotter machine produced lower latency");
    }
    let ra = QosReport::from_series(&a).unwrap();
    let rb = QosReport::from_series(&b).unwrap();
    assert!(rb.p99 > ra.p99);
}
