//! Golden regression for the seeded evaluation cell.
//!
//! Pins the full pipeline — generator, view, predictors, metrics — on one
//! seeded cell (preset A, 4 machines, 288 ticks, the four-policy comparison
//! set). Two layers of protection:
//!
//! * materialized [`run_cell`] and streaming [`run_cell_streaming`] must
//!   agree *exactly* (same `violations`, bit-equal `mean_savings`), at any
//!   thread count — the `materialized_equals_streaming` contract at cell
//!   scale;
//! * both must reproduce the hardcoded goldens below, so any change to the
//!   statistics engine that shifts predictions even by an ulp is caught
//!   here, not in production comparisons.
//!
//! The goldens were recorded from this workspace and verified identical in
//! debug and release profiles. If an intentional numerical change breaks
//! them, regenerate with:
//! `cargo test --test cell_golden -- --nocapture` after temporarily
//! printing the table (violations and `mean_savings` per machine per
//! predictor).

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::runner::{run_cell, run_cell_streaming, CellRun};
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::gen::WorkloadGenerator;

fn seeded_gen() -> WorkloadGenerator {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    cell.duration_ticks = 288;
    WorkloadGenerator::new(cell).unwrap()
}

/// `(violations, mean_savings)` per machine (rows) per predictor (columns:
/// borg-default(0.9), rc-like(p99), n-sigma(5), max(n-sigma, rc-like)).
#[allow(clippy::approx_constant)]
const GOLDEN: [[(u64, f64); 4]; 4] = [
    [
        (28, 0.09999999999999998),
        (1, 0.15773808228327219),
        (1, 0.07836595654839787),
        (1, 0.07806521936697065),
    ],
    [
        (0, 0.10000000000000002),
        (0, 0.280779134713117),
        (7, 0.10497209154454844),
        (0, 0.0976347197421256),
    ],
    [
        (0, 0.09999999999999998),
        (0, 0.1773678371998835),
        (0, 0.08476761248353228),
        (0, 0.07745775868274347),
    ],
    [
        (0, 0.09999999999999995),
        (0, 0.1299019113267292),
        (0, 0.01690086364598159),
        (0, 0.016619173298375724),
    ],
];

fn assert_matches_golden(run: &CellRun, label: &str) {
    assert_eq!(run.results.len(), GOLDEN.len(), "{label}: machine count");
    for (m, result) in run.results.iter().enumerate() {
        assert_eq!(result.reports.len(), 4, "{label}: predictor count");
        for (j, report) in result.reports.iter().enumerate() {
            let (violations, mean_savings) = GOLDEN[m][j];
            assert_eq!(
                report.violations, violations,
                "{label}: machine {m} predictor {j} violations"
            );
            assert_eq!(
                report.mean_savings(),
                mean_savings,
                "{label}: machine {m} predictor {j} mean_savings (bitwise)"
            );
        }
    }
}

/// The seeded cell reproduces the recorded goldens bit-for-bit, via both
/// runners and regardless of thread count.
#[test]
fn seeded_cell_matches_goldens_bitwise() {
    let gen = seeded_gen();
    let specs = PredictorSpec::comparison_set();
    let cfg = SimConfig::default();

    let streaming = run_cell_streaming(&gen, &cfg, &specs, 2).unwrap();
    assert_matches_golden(&streaming, "streaming/2-threads");

    let machines = gen.generate_cell().unwrap();
    let materialized = run_cell(gen.config().id.clone(), &machines, &cfg, &specs, 3).unwrap();
    assert_matches_golden(&materialized, "materialized/3-threads");

    let single = run_cell_streaming(&gen, &cfg, &specs, 1).unwrap();
    assert_matches_golden(&single, "streaming/1-thread");
}

/// Materialized and streaming runs agree exactly on every per-machine
/// report statistic, not just the goldened ones.
#[test]
fn materialized_equals_streaming_on_seeded_cell() {
    let gen = seeded_gen();
    let specs = PredictorSpec::comparison_set();
    let cfg = SimConfig::default();
    let machines = gen.generate_cell().unwrap();
    let a = run_cell(gen.config().id.clone(), &machines, &cfg, &specs, 4).unwrap();
    let b = run_cell_streaming(&gen, &cfg, &specs, 2).unwrap();
    for (x, y) in a.results.iter().zip(b.results.iter()) {
        assert_eq!(x.machine, y.machine);
        for j in 0..specs.len() {
            assert_eq!(x.reports[j].violations, y.reports[j].violations);
            assert_eq!(x.reports[j].mean_savings(), y.reports[j].mean_savings());
            assert_eq!(x.reports[j].mean_severity(), y.reports[j].mean_severity());
            assert_eq!(
                x.reports[j].prediction.mean(),
                y.reports[j].prediction.mean()
            );
        }
    }
}
