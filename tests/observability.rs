//! Workspace observability end-to-end: the `METRICS` verb must reconcile
//! with what the load generator measured, and a traced run's spans must
//! survive a JSONL round trip.
//!
//! These are the acceptance checks for the telemetry layer: counters are
//! only trustworthy if two independent observers — the client-side
//! [`LoadReport`](overcommit_repro::client::LoadReport) and the
//! server-side metrics exposition — agree about the same replay.

use overcommit_repro::client::loadgen::{self, LoadgenConfig};
use overcommit_repro::client::{Client, ClientConfig};
use overcommit_repro::serve::{ServeConfig, Server};
use overcommit_repro::telemetry::trace;

/// Runs a small replay and cross-checks the server's `METRICS` exposition
/// against both the `LoadReport` and the `STATS` snapshot it embeds.
#[test]
fn server_metrics_reconcile_with_load_report() {
    let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
    let cfg = LoadgenConfig {
        machines: 4,
        ticks: 16,
        connections: 2,
        predicts: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(server.addr(), &cfg).unwrap();
    assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
    assert_eq!(report.lost, 0);

    let mut client = Client::connect(server.addr(), ClientConfig::default()).unwrap();
    let m = client.server_metrics().unwrap();

    // The ingestion counters must agree with the STATS snapshot the
    // report embeds (no traffic ran in between).
    assert_eq!(m["serve.observes"], report.server.observes as f64);
    assert_eq!(m["serve.predicts"], report.server.predicts as f64);
    assert_eq!(m["serve.stale"], report.server.stale as f64);
    assert_eq!(m["serve.errors"], report.server.errors as f64);
    assert_eq!(m["serve.machines"], report.server.machines as f64);

    // Every acknowledged OBSERVE is a promise: it must be visible in the
    // server's ingestion counters (retries may only add).
    let accounted = m["serve.observes"] + m["serve.stale"] + m["serve.errors"];
    assert!(
        accounted >= report.acked_observes as f64,
        "acked {} > accounted {accounted}",
        report.acked_observes
    );

    // The per-verb request counters count protocol dispatches, so they
    // can only exceed the per-sample accounting (duplicates re-apply).
    assert!(m["serve.requests.observe"] >= report.acked_observes as f64);
    assert!(m["serve.requests.predict"] >= report.server.predicts as f64);

    // Shard latency sampling covers exactly the shard-processed requests
    // (every OBSERVE outcome — applied, stale, or error — plus every
    // PREDICT that missed the frontend cache and every ADMIT).
    // `serve.predicts` counts predictions *served*, so cache hits — which
    // never reach a shard — are subtracted back out.
    assert_eq!(
        m["serve.latency_us.count"],
        m["serve.observes"]
            + m["serve.stale"]
            + m["serve.errors"]
            + (m["serve.predicts"] - m["serve.predict.cache_hit"])
            + m["serve.admits"]
    );

    // Every PREDICT dispatch is either a frontend cache hit or a miss.
    assert_eq!(
        m["serve.predict.cache_hit"] + m["serve.predict.cache_miss"],
        m["serve.requests.predict"]
    );

    // No BATCH frames on the wire — but frontend coalescing is
    // independent of framing: any pipelined run of same-shard OBSERVEs
    // micro-batches, so `serve.batch.coalesced` may still count.
    assert_eq!(m["serve.batch.requests"], 0.0);

    // The replay is over and every request acked, so both shard queues
    // must have drained back to empty.
    assert_eq!(m["serve.shard.queue_depth.0"], 0.0);
    assert_eq!(m["serve.shard.queue_depth.1"], 0.0);

    drop(client);
    server.shutdown();
}

/// Same reconciliation for a `BATCH`-framed replay, plus the framing
/// counters themselves: every framed sub-request is counted, frontend
/// coalescing fires, and the latency identity still balances with the
/// prediction cache in play.
#[test]
fn batched_replay_metrics_reconcile() {
    let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
    let cfg = LoadgenConfig {
        machines: 4,
        ticks: 16,
        connections: 2,
        predicts: true,
        batch: 32,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(server.addr(), &cfg).unwrap();
    assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
    assert_eq!(report.lost, 0);

    let mut client = Client::connect(server.addr(), ClientConfig::default()).unwrap();
    let m = client.server_metrics().unwrap();

    assert_eq!(m["serve.observes"], report.server.observes as f64);
    assert_eq!(m["serve.predicts"], report.server.predicts as f64);

    // Nearly the whole replay travels inside BATCH frames (the trailing
    // partial window of each connection may go unframed), and frames of
    // consecutive same-shard samples must coalesce at least once.
    assert!(
        m["serve.batch.requests"] >= report.sent as f64 * 0.5,
        "only {} of {} requests were framed",
        m["serve.batch.requests"],
        report.sent
    );
    assert!(
        m["serve.batch.coalesced"] > 0.0,
        "frontend coalescing never fired"
    );

    assert_eq!(
        m["serve.predict.cache_hit"] + m["serve.predict.cache_miss"],
        m["serve.requests.predict"]
    );
    assert_eq!(
        m["serve.latency_us.count"],
        m["serve.observes"]
            + m["serve.stale"]
            + m["serve.errors"]
            + (m["serve.predicts"] - m["serve.predict.cache_hit"])
            + m["serve.admits"]
    );

    drop(client);
    server.shutdown();
}

/// A traced replay must produce spans that survive JSONL encoding and
/// parsing, including the per-connection `loadgen.conn` spans and the
/// server-side `serve.request` spans (the server runs in-process here).
#[test]
fn traced_replay_round_trips_through_jsonl() {
    let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
    trace::enable();
    let cfg = LoadgenConfig {
        machines: 2,
        ticks: 8,
        connections: 2,
        predicts: false,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(server.addr(), &cfg).unwrap();
    trace::disable();
    server.shutdown();
    assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);

    let events = trace::drain();
    let mut buf = Vec::new();
    trace::write_jsonl(&mut buf, &events).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let parsed = overcommit_repro::telemetry::json::parse_jsonl(&text).unwrap();
    assert_eq!(parsed.len(), events.len());
    for (p, e) in parsed.iter().zip(&events) {
        assert!(p.matches(e), "{p:?} != {e:?}");
    }

    // One loadgen.conn span per connection (>=: parallel tests in this
    // binary may also record while tracing is enabled).
    let conn_spans = parsed.iter().filter(|p| p.name == "loadgen.conn").count();
    assert!(conn_spans >= 2, "{conn_spans} loadgen.conn spans");
    // The in-process server traced its request handling too.
    let req_spans = parsed.iter().filter(|p| p.name == "serve.request").count();
    assert!(req_spans > 0, "no serve.request spans recorded");
}
