//! Property-based invariants of the practical peak predictors.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::view::MachineView;
use overcommit_repro::trace::ids::{JobId, TaskId};
use overcommit_repro::trace::time::Tick;
use proptest::prelude::*;

/// A randomly generated observation stream: per tick, per task `(limit,
/// usage ≤ limit)`.
fn view_from(
    observations: &[Vec<(f64, f64)>],
    min_samples: usize,
    max_samples: usize,
) -> MachineView {
    let cfg = SimConfig {
        min_num_samples: min_samples,
        max_num_samples: max_samples.max(min_samples).max(1),
        ..SimConfig::default()
    };
    let mut view = MachineView::new(1.0, &cfg);
    for (t, tasks) in observations.iter().enumerate() {
        view.observe(
            Tick(t as u64),
            tasks.iter().enumerate().map(|(i, &(limit, frac))| {
                (TaskId::new(JobId(i as u64 + 1), 0), limit, limit * frac)
            }),
        );
    }
    view
}

/// Observation-stream strategy: 1–40 ticks of 0–8 tasks.
fn observations() -> impl Strategy<Value = Vec<Vec<(f64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0.01f64..0.5, 0.0f64..=1.0), 0..8),
        1..40,
    )
}

proptest! {
    /// Every built-in predictor stays within `[0, Σ limits]`.
    #[test]
    fn predictions_are_actionable(
        obs in observations(),
        warmup in 0usize..10,
        history in 1usize..30,
    ) {
        let view = view_from(&obs, warmup, history);
        let specs = [
            PredictorSpec::LimitSum,
            PredictorSpec::borg_default(),
            PredictorSpec::RcLike { percentile: 95.0 },
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::paper_max(),
        ];
        for spec in &specs {
            let p = spec.build().unwrap().predict(&view);
            prop_assert!(p >= 0.0, "{}: negative prediction {p}", spec.name());
            prop_assert!(
                p <= view.total_limit() + 1e-9,
                "{}: prediction {p} above Σ limits {}",
                spec.name(),
                view.total_limit()
            );
            prop_assert!(p.is_finite());
        }
    }

    /// The max composite dominates each of its components pointwise.
    #[test]
    fn max_dominates_components(obs in observations()) {
        let view = view_from(&obs, 3, 12);
        let children = [
            PredictorSpec::NSigma { n: 5.0 },
            PredictorSpec::RcLike { percentile: 99.0 },
        ];
        let max = PredictorSpec::Max(children.to_vec()).build().unwrap();
        let m = max.predict(&view);
        for child in &children {
            let c = child.build().unwrap().predict(&view);
            prop_assert!(m + 1e-12 >= c, "max {m} below component {} = {c}", child.name());
        }
    }

    /// RC-like is monotone in its percentile; N-sigma in its multiplier.
    #[test]
    fn parameter_monotonicity(obs in observations()) {
        let view = view_from(&obs, 2, 20);
        let mut last = 0.0f64;
        for pct in [50.0, 80.0, 95.0, 99.0, 100.0] {
            let p = PredictorSpec::RcLike { percentile: pct }
                .build()
                .unwrap()
                .predict(&view);
            prop_assert!(p + 1e-9 >= last, "rc-like not monotone at p{pct}");
            last = p;
        }
        let mut last = 0.0f64;
        for n in [0.0, 1.0, 3.0, 5.0, 10.0] {
            let p = PredictorSpec::NSigma { n }.build().unwrap().predict(&view);
            prop_assert!(p + 1e-9 >= last, "n-sigma not monotone at n={n}");
            last = p;
        }
    }

    /// With every task warm and constant usage, RC-like predicts exactly
    /// the usage sum and N-sigma the aggregate mean.
    #[test]
    fn constant_usage_fixed_points(
        tasks in proptest::collection::vec((0.05f64..0.5, 0.1f64..=0.9), 1..6),
    ) {
        let obs: Vec<Vec<(f64, f64)>> = vec![tasks.clone(); 30];
        let view = view_from(&obs, 3, 10);
        let usage_sum: f64 = tasks.iter().map(|&(l, f)| l * f).sum();
        let rc = PredictorSpec::RcLike { percentile: 99.0 }
            .build()
            .unwrap()
            .predict(&view);
        prop_assert!((rc - usage_sum).abs() < 1e-6, "rc {rc} vs usage {usage_sum}");
        let ns = PredictorSpec::NSigma { n: 5.0 }.build().unwrap().predict(&view);
        prop_assert!((ns - usage_sum).abs() < 1e-6, "n-sigma {ns} vs usage {usage_sum}");
    }

    /// The borg-default prediction is exactly φ·ΣL whatever the usage.
    #[test]
    fn borg_default_ignores_usage(obs in observations(), phi in 0.1f64..1.0) {
        let view = view_from(&obs, 3, 12);
        let p = PredictorSpec::BorgDefault { phi }.build().unwrap().predict(&view);
        prop_assert!((p - phi * view.total_limit()).abs() < 1e-12);
    }
}

/// Spec validation rejects every out-of-domain parameter and the builder
/// agrees with validation.
#[test]
fn validation_and_build_agree() {
    let bad = [
        PredictorSpec::BorgDefault { phi: 0.0 },
        PredictorSpec::BorgDefault { phi: f64::NAN },
        PredictorSpec::RcLike { percentile: -1.0 },
        PredictorSpec::NSigma { n: f64::INFINITY },
        PredictorSpec::Max(vec![]),
    ];
    for spec in &bad {
        assert!(spec.validate().is_err(), "{:?} should not validate", spec);
        assert!(spec.build().is_err(), "{:?} should not build", spec);
    }
    for spec in PredictorSpec::comparison_set() {
        assert!(spec.validate().is_ok());
        assert!(spec.build().is_ok());
    }
}
