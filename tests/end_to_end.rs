//! End-to-end invariants: generator → oracle → predictors → metrics.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::metrics::VIOLATION_EPS;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::runner::{run_cell, run_cell_streaming};
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::gen::WorkloadGenerator;

fn small_gen(preset: CellPreset, machines: usize, ticks: u64) -> WorkloadGenerator {
    let mut cell = CellConfig::preset(preset);
    cell.machines = machines;
    cell.duration_ticks = ticks;
    WorkloadGenerator::new(cell).unwrap()
}

/// The theory of Section 3 in executable form: the conservative limit-sum
/// policy never violates the oracle, on every cell preset.
#[test]
fn limit_sum_is_always_safe() {
    for preset in [
        CellPreset::A,
        CellPreset::B,
        CellPreset::G,
        CellPreset::Prod5,
    ] {
        let gen = small_gen(preset, 3, 288);
        let run =
            run_cell_streaming(&gen, &SimConfig::default(), &[PredictorSpec::LimitSum], 2).unwrap();
        for r in run.reports(0) {
            assert_eq!(
                r.violations, 0,
                "cell {}: limit-sum violated on machine {}",
                run.cell, r.machine
            );
            assert!(r.mean_savings().abs() < 1e-12);
        }
    }
}

/// borg-default's violation severity is structurally capped at `1 − φ`
/// because the oracle cannot exceed Σ limits (Section 5.4's observation).
#[test]
fn borg_default_severity_is_capped() {
    let gen = small_gen(CellPreset::A, 4, 432);
    let phi = 0.85;
    let run = run_cell_streaming(
        &gen,
        &SimConfig::default(),
        &[PredictorSpec::BorgDefault { phi }],
        2,
    )
    .unwrap();
    for r in run.reports(0) {
        assert!(
            r.max_severity() <= (1.0 - phi) + 1e-9,
            "machine {}: severity {} above cap {}",
            r.machine,
            r.max_severity(),
            1.0 - phi
        );
    }
}

/// The max composite violates at most as often as each component, and its
/// savings are at most each component's.
#[test]
fn max_predictor_violation_subset() {
    let gen = small_gen(CellPreset::A, 4, 432);
    let specs = [
        PredictorSpec::NSigma { n: 5.0 },
        PredictorSpec::RcLike { percentile: 99.0 },
        PredictorSpec::paper_max(),
    ];
    let run = run_cell_streaming(&gen, &SimConfig::default(), &specs, 2).unwrap();
    for result in &run.results {
        let [ns, rc, max] = &result.reports[..] else {
            panic!("three reports");
        };
        assert!(max.violations <= ns.violations);
        assert!(max.violations <= rc.violations);
        assert!(max.mean_savings() <= ns.mean_savings() + 1e-12);
        assert!(max.mean_savings() <= rc.mean_savings() + 1e-12);
    }
}

/// A larger oracle horizon can only find more violations (the oracle
/// grows, predictions stay fixed).
#[test]
fn violations_monotone_in_horizon() {
    let gen = small_gen(CellPreset::A, 3, 576);
    let spec = [PredictorSpec::NSigma { n: 3.0 }];
    let short = run_cell_streaming(
        &gen,
        &SimConfig::default().with_horizon_hours(3.0),
        &spec,
        2,
    )
    .unwrap();
    let long = run_cell_streaming(
        &gen,
        &SimConfig::default().with_horizon_hours(24.0),
        &spec,
        2,
    )
    .unwrap();
    for (a, b) in short.results.iter().zip(long.results.iter()) {
        assert!(
            a.reports[0].violations <= b.reports[0].violations,
            "machine {}: horizon growth lost violations",
            a.machine
        );
    }
}

/// Recorded series are consistent with the accumulated reports: recounting
/// violations from the series gives the report's number.
#[test]
fn series_and_reports_agree() {
    let gen = small_gen(CellPreset::A, 3, 432);
    let run = run_cell_streaming(
        &gen,
        &SimConfig::default().with_series(),
        &[PredictorSpec::borg_default()],
        2,
    )
    .unwrap();
    for result in &run.results {
        let series = result.series.as_ref().unwrap();
        let recount = series.predictions[0]
            .iter()
            .zip(series.oracle.iter())
            .filter(|(p, po)| **p + VIOLATION_EPS < **po)
            .count() as u64;
        assert_eq!(recount, result.reports[0].violations);
    }
}

/// Materialized and streaming runs agree bit-for-bit; thread count is
/// irrelevant; the whole pipeline is deterministic across repetitions.
#[test]
fn pipeline_determinism() {
    let gen = small_gen(CellPreset::D, 4, 288);
    let specs = PredictorSpec::comparison_set();
    let cfg = SimConfig::default();
    let machines = gen.generate_cell().unwrap();
    let a = run_cell(gen.config().id.clone(), &machines, &cfg, &specs, 1).unwrap();
    let b = run_cell_streaming(&gen, &cfg, &specs, 4).unwrap();
    let c = run_cell_streaming(&gen, &cfg, &specs, 2).unwrap();
    for ((x, y), z) in a.results.iter().zip(b.results.iter()).zip(c.results.iter()) {
        for i in 0..specs.len() {
            assert_eq!(x.reports[i].violations, y.reports[i].violations);
            assert_eq!(y.reports[i].violations, z.reports[i].violations);
            assert_eq!(
                x.reports[i].prediction.mean(),
                y.reports[i].prediction.mean()
            );
        }
    }
}

/// Metric choice flows through the whole pipeline: judging against the
/// window max can only produce at least as many violations as judging
/// against the window average.
#[test]
fn stricter_metric_more_violations() {
    use overcommit_repro::trace::sample::UsageMetric;
    let gen = small_gen(CellPreset::A, 3, 288);
    let spec = [PredictorSpec::borg_default()];
    let avg = run_cell_streaming(
        &gen,
        &SimConfig::default().with_metric(UsageMetric::Avg),
        &spec,
        2,
    )
    .unwrap();
    let max = run_cell_streaming(
        &gen,
        &SimConfig::default().with_metric(UsageMetric::Max),
        &spec,
        2,
    )
    .unwrap();
    let total = |run: &overcommit_repro::core::CellRun| -> u64 {
        run.reports(0).map(|r| r.violations).sum()
    };
    assert!(total(&max) >= total(&avg));
}
