//! Integration tests for the live cluster and the A/B harness.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::scheduler::ab::{run_ab, AbConfig};
use overcommit_repro::scheduler::{
    run_cluster, run_cluster_assigned, ClusterConfig, PlacementPolicy,
};
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::time::Tick;

fn cluster_cfg(predictor: PredictorSpec, machines: usize, ticks: u64) -> ClusterConfig {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = machines;
    ClusterConfig {
        cell,
        jobs_per_tick: 0.8,
        duration_ticks: ticks,
        sim: SimConfig::default(),
        predictor,
        placement: PlacementPolicy::WorstFit,
        arrival_seed: 21,
    }
}

/// Physical throttling: realized machine usage never exceeds capacity,
/// whatever the overcommit policy admits.
#[test]
fn throttling_enforces_capacity() {
    // An aggressive policy that badly overcommits.
    let out = run_cluster(&cluster_cfg(
        PredictorSpec::BorgDefault { phi: 0.2 },
        3,
        400,
    ))
    .unwrap();
    for m in &out.traces {
        for &peak in &m.true_peak {
            assert!(
                peak <= m.capacity + 1e-9,
                "machine {} realized peak {peak} above capacity",
                m.machine
            );
        }
    }
    // Demand, in contrast, must have exceeded capacity somewhere for the
    // assertion above to be exercised.
    assert!(out
        .demand_peak
        .iter()
        .flatten()
        .any(|&d| d > out.traces[0].capacity));
}

/// The admission rule `P(J_s) + Σ pending + L ≤ M` holds at every
/// admission: with the no-overcommit policy this means Σ limits never
/// exceeds capacity.
#[test]
fn no_overcommit_never_exceeds_capacity() {
    let out = run_cluster(&cluster_cfg(PredictorSpec::LimitSum, 3, 400)).unwrap();
    for m in &out.traces {
        for t in (0..400).map(Tick) {
            assert!(
                m.total_limit_at(t) <= m.capacity + 1e-9,
                "machine {} allocated past capacity at {t}",
                m.machine
            );
        }
    }
}

/// Overcommit admits at least as many tasks as no-overcommit under the
/// same offered stream, and savings translate to higher allocations.
#[test]
fn overcommit_admits_more() {
    let base = run_cluster(&cluster_cfg(PredictorSpec::LimitSum, 4, 500)).unwrap();
    let over = run_cluster(&cluster_cfg(PredictorSpec::borg_default(), 4, 500)).unwrap();
    assert!(base.stats.rejected > 0, "stream must saturate the baseline");
    assert!(over.stats.admitted >= base.stats.admitted);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&over.stats.alloc_ratio) >= mean(&base.stats.alloc_ratio));
}

/// Placement policies all place onto feasible machines and are
/// deterministic given the seed.
#[test]
fn placement_policies_run_and_are_deterministic() {
    for placement in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::WorstFit,
        PlacementPolicy::RandomK(3),
    ] {
        let mut cfg = cluster_cfg(PredictorSpec::borg_default(), 3, 200);
        cfg.placement = placement;
        let a = run_cluster(&cfg).unwrap();
        let b = run_cluster(&cfg).unwrap();
        assert_eq!(a.stats.admitted, b.stats.admitted, "{placement:?}");
        assert_eq!(a.stats.usage_ratio, b.stats.usage_ratio, "{placement:?}");
    }
}

/// Mixed assignment really deploys different policies: with limit-sum on
/// even machines and deep overcommit on odd ones, only odd machines can
/// be allocated past capacity.
#[test]
fn mixed_assignment_respects_parity() {
    let cfg = cluster_cfg(PredictorSpec::LimitSum, 4, 300);
    let out = run_cluster_assigned(&cfg, |i| {
        if i % 2 == 0 {
            PredictorSpec::LimitSum
        } else {
            PredictorSpec::BorgDefault { phi: 0.5 }
        }
    })
    .unwrap();
    let mut odd_overcommitted = false;
    for (i, m) in out.traces.iter().enumerate() {
        let max_alloc = (0..300)
            .map(|t| m.total_limit_at(Tick(t)))
            .fold(0.0f64, f64::max);
        if i % 2 == 0 {
            assert!(
                max_alloc <= m.capacity + 1e-9,
                "control machine {i} overcommitted"
            );
        } else if max_alloc > m.capacity {
            odd_overcommitted = true;
        }
    }
    assert!(
        odd_overcommitted,
        "overcommit machines never exceeded capacity"
    );
}

/// The A/B harness: replaying a group's traces under its own policy gives
/// exactly the predictions the machines computed online.
#[test]
fn ab_replay_matches_online_predictions() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 4;
    let mut cfg = AbConfig::paper_default(cell, 0.5);
    cfg.duration_ticks = 250;
    cfg.replay_threads = 2;

    // Run the underlying mixed cluster manually to capture online data.
    let cluster_cfg = ClusterConfig {
        cell: cfg.cell.clone(),
        jobs_per_tick: cfg.jobs_per_tick,
        duration_ticks: cfg.duration_ticks,
        sim: cfg.sim.clone(),
        predictor: cfg.control.clone(),
        placement: cfg.placement,
        arrival_seed: cfg.arrival_seed,
    };
    let online = run_cluster_assigned(&cluster_cfg, |i| {
        if i % 2 == 0 {
            cfg.control.clone()
        } else {
            cfg.experiment.clone()
        }
    })
    .unwrap();

    // Replay machine 0 (control) and machine 1 (experiment).
    for (idx, spec) in [(0usize, &cfg.control), (1usize, &cfg.experiment)] {
        let replayed = overcommit_repro::core::sim::simulate_machine(
            &online.traces[idx],
            &cfg.sim.clone().with_series(),
            &[spec.build().unwrap()],
        )
        .unwrap();
        let series = replayed.series.unwrap();
        for (t, (a, b)) in online.machine_prediction[idx]
            .iter()
            .zip(series.predictions[0].iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-9,
                "machine {idx} tick {t}: online {a} vs replay {b}"
            );
        }
    }
}

/// The full A/B harness is deterministic and its groups partition the
/// cluster.
#[test]
fn ab_outcome_shape() {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 6;
    let mut cfg = AbConfig::paper_default(cell, 0.4);
    cfg.duration_ticks = 200;
    cfg.replay_threads = 2;
    let out = run_ab(&cfg).unwrap();
    assert_eq!(out.control.replay.results.len(), 3);
    assert_eq!(out.experiment.replay.results.len(), 3);
    assert_eq!(out.control.stats.alloc_ratio.len(), 200);
    assert!(out.admission_rate > 0.0);
}
