//! Property-based tests for the trace substrate: generator invariants and
//! CSV round-tripping.

use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::csv::{read_machines, write_machines};
use overcommit_repro::trace::gen::WorkloadGenerator;
use overcommit_repro::trace::ids::MachineId;
use overcommit_repro::trace::sample::{UsageMetric, UsageSample};
use overcommit_repro::trace::time::Tick;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every machine the generator emits validates, has per-task usage
    /// capped at the limit, and consistent sample summaries — across
    /// random seeds and durations.
    #[test]
    fn generated_machines_are_well_formed(
        seed in 0u64..1_000_000,
        ticks in 24u64..240,
        machine in 0u32..4,
    ) {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.seed = seed;
        cell.duration_ticks = ticks;
        cell.machines = 4;
        let gen = WorkloadGenerator::new(cell).unwrap();
        let m = gen.generate_machine(MachineId(machine)).unwrap();
        m.validate().unwrap();
        prop_assert!(m.task_count() > 0);
        for task in &m.tasks {
            for s in &task.samples {
                prop_assert!(s.is_consistent(), "inconsistent sample in {}", task.spec.id);
                prop_assert!(
                    s.max <= task.spec.limit + 1e-9,
                    "task {} usage {} above limit {}",
                    task.spec.id,
                    s.max,
                    task.spec.limit
                );
            }
        }
        // Ground truth: within-tick peak at least the per-tick average and
        // at most the sum of per-task maxima.
        for t in (0..ticks).map(Tick) {
            let i = t.index() as usize;
            let max_sum = m.total_usage_at(t, UsageMetric::Max);
            prop_assert!(m.true_peak[i] <= max_sum + 1e-9);
            prop_assert!(m.true_peak[i] + 1e-9 >= m.avg_usage[i]);
        }
    }

    /// CSV round-trips preserve generated machines exactly.
    #[test]
    fn csv_roundtrip_is_lossless(seed in 0u64..100_000, ticks in 12u64..60) {
        let mut cell = CellConfig::preset(CellPreset::C);
        cell.seed = seed;
        cell.duration_ticks = ticks;
        cell.machines = 2;
        let gen = WorkloadGenerator::new(cell).unwrap();
        let machines = gen.generate_cell().unwrap();
        let mut buf = Vec::new();
        write_machines(&mut buf, &machines).unwrap();
        let back = read_machines(buf.as_slice()).unwrap();
        prop_assert_eq!(machines.len(), back.len());
        for (a, b) in machines.iter().zip(back.iter()) {
            prop_assert_eq!(a.machine, b.machine);
            prop_assert_eq!(&a.true_peak, &b.true_peak);
            prop_assert_eq!(&a.avg_usage, &b.avg_usage);
            prop_assert_eq!(a.tasks.len(), b.tasks.len());
            for (x, y) in a.tasks.iter().zip(b.tasks.iter()) {
                prop_assert_eq!(&x.spec, &y.spec);
                prop_assert_eq!(&x.samples, &y.samples);
            }
        }
    }

    /// Usage summaries computed from arbitrary finite subsample windows
    /// are internally consistent.
    #[test]
    fn summaries_are_consistent(points in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let s = UsageSample::from_subsamples(&points).unwrap();
        prop_assert!(s.is_consistent());
        let max = points.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.max, max);
    }

    /// Percentile interpolation is monotone in the percentile and hits
    /// the stored anchors.
    #[test]
    fn interpolation_monotone(points in proptest::collection::vec(0.0f64..10.0, 2..40)) {
        let s = UsageSample::from_subsamples(&points).unwrap();
        let mut last = f64::NEG_INFINITY;
        for p in [50.0, 55.0, 60.0, 70.0, 80.0, 90.0, 95.0, 99.0, 100.0] {
            let v = UsageMetric::interpolate(&s, p);
            prop_assert!(v + 1e-12 >= last, "not monotone at p{p}");
            last = v;
        }
        prop_assert!((UsageMetric::interpolate(&s, 90.0) - s.p90).abs() < 1e-12);
        prop_assert!((UsageMetric::interpolate(&s, 100.0) - s.max).abs() < 1e-12);
    }
}

/// Every preset generates a valid, non-trivial workload (smoke over the
/// full preset matrix at short duration).
#[test]
fn all_presets_generate() {
    for preset in CellConfig::trace_cells()
        .into_iter()
        .chain(CellConfig::production_cells())
    {
        let mut cell = preset;
        cell.machines = 2;
        cell.duration_ticks = 48;
        let gen = WorkloadGenerator::new(cell).unwrap();
        let machines = gen.generate_cell().unwrap();
        assert_eq!(machines.len(), 2);
        for m in &machines {
            assert!(m.task_count() > 0, "{}: no tasks", gen.config().id);
        }
    }
}
