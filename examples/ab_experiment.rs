//! A small production-style A/B experiment.
//!
//! ```text
//! cargo run --release --example ab_experiment
//! ```
//!
//! One mixed cluster — even machines run the borg-default control policy,
//! odd machines the max-predictor experiment policy — serves one arrival
//! stream, exactly as in the paper's Section 6 deployment. The example
//! prints the side-by-side group metrics behind Figures 13 and 14.

use overcommit_repro::scheduler::ab::{run_ab, AbConfig};
use overcommit_repro::scheduler::GroupOutcome;
use overcommit_repro::trace::cell::{CellConfig, CellPreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cell = CellConfig::preset(CellPreset::Prod2);
    cell.machines = 16; // Total; groups split 8/8 by parity.
    cell.runtime.short_frac = 0.45;
    cell.runtime.long_median_hours = 60.0;
    let mut cfg = AbConfig::paper_default(cell, 0.07);
    cfg.duration_ticks = 4 * 288; // Four days.
    cfg.replay_threads = 4;
    // Risk-matched experiment arm (Section 6: the max predictor is tuned
    // in simulation to match borg-default's violation profile).
    cfg.experiment = overcommit_repro::core::predictor::PredictorSpec::paper_max();

    let out = run_ab(&cfg)?;
    println!(
        "cluster admission rate: {:.1}% of offered tasks\n",
        100.0 * out.admission_rate
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let row = |g: &GroupOutcome| {
        let rates = g.replay.violation_rates(0);
        println!(
            "{:>8}  savings {:.3}  alloc {:.3}  usage {:.3}  viol.rate {:.4}  p90 latency {:.2}",
            g.name,
            mean(&g.stats.savings),
            mean(&g.stats.alloc_ratio),
            mean(&g.stats.usage_ratio),
            mean(&rates),
            mean(&g.qos.iter().map(|q| q.p90).collect::<Vec<_>>()),
        );
    };
    row(&out.control);
    row(&out.experiment);

    println!(
        "\nThe experiment group advertises more capacity (higher savings), so\n\
         the shared scheduler routes it more workload; its usage-based\n\
         predictor keeps the violation profile at or below control's."
    );
    Ok(())
}
