//! Exploring and persisting generated traces.
//!
//! ```text
//! cargo run --release --example trace_explorer [cell] [out.csv]
//! ```
//!
//! Generates one cell, prints the distributional facts the paper's
//! motivation section leans on (usage-to-limit gap, pooling effect, task
//! runtime mix), saves the trace in the line-oriented CSV format, and
//! reloads it to demonstrate lossless round-tripping.

use overcommit_repro::core::oracle::machine_oracle;
use overcommit_repro::stats::Ecdf;
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::csv::{load_machines, save_machines};
use overcommit_repro::trace::gen::WorkloadGenerator;
use overcommit_repro::trace::sample::UsageMetric;
use overcommit_repro::trace::time::Tick;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let cell_name = args.next().unwrap_or_else(|| "a".to_string());
    let out = args
        .next()
        .unwrap_or_else(|| std::env::temp_dir().join("cell.csv").display().to_string());

    let mut cell = CellConfig::preset(CellPreset::from_name(&cell_name)?);
    cell.machines = 10;
    cell.duration_ticks = 2 * 288;
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell()?;

    // Motivation facts.
    let tasks: usize = machines.iter().map(|m| m.task_count()).sum();
    println!(
        "cell {cell_name}: {} machines, {tasks} tasks, 2 days",
        machines.len()
    );

    let mut gap = Vec::new();
    let mut runtimes = Vec::new();
    for m in &machines {
        for t in &m.tasks {
            gap.push(t.mean_usage() / t.spec.limit);
            runtimes.push(t.spec.runtime_hours());
        }
    }
    let gap_ecdf = Ecdf::new(gap)?;
    println!(
        "usage-to-limit: median {:.2}, p95 {:.2}  (the paper's 'relative slack' gap)",
        gap_ecdf.quantile(0.5)?,
        gap_ecdf.quantile(0.95)?
    );
    let rt = Ecdf::new(runtimes)?;
    println!(
        "task runtime: median {:.1}h, {:.0}% under 24h",
        rt.quantile(0.5)?,
        100.0 * rt.prob_le(24.0)
    );

    // Pooling effect on machine 0.
    let m = &machines[0];
    let sum_task_peaks: f64 = m.tasks.iter().map(|t| t.peak()).sum();
    let po = machine_oracle(m, UsageMetric::P90, m.horizon.len());
    println!(
        "machine 0 pooling: Σ task peaks {:.2} vs machine future peak {:.2} (×{:.2})",
        sum_task_peaks,
        po[0],
        sum_task_peaks / po[0]
    );
    println!(
        "machine 0 at t=0: Σ limits {:.2} on capacity {:.2} — overcommit headroom {:.0}%",
        m.total_limit_at(Tick(0)),
        m.capacity,
        100.0 * (1.0 - po[0] / m.total_limit_at(Tick(0)))
    );

    // Persist and reload.
    let path = std::path::Path::new(&out);
    save_machines(path, &machines)?;
    let reloaded = load_machines(path)?;
    let size = std::fs::metadata(path)?.len();
    println!(
        "\nsaved {} machines to {out} ({:.1} MiB); reload matches: {}",
        reloaded.len(),
        size as f64 / (1024.0 * 1024.0),
        reloaded.len() == machines.len()
            && reloaded
                .iter()
                .zip(machines.iter())
                .all(|(a, b)| a.true_peak == b.true_peak)
    );
    Ok(())
}
