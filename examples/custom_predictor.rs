//! Implementing a custom peak predictor.
//!
//! ```text
//! cargo run --release --example custom_predictor
//! ```
//!
//! The artifact's stated goal is to let users "add any data-driven,
//! machine learning-based predictors as long as they use the specified
//! interfaces". This example adds an exponentially-weighted predictor:
//! an EWMA of the machine aggregate plus a multiple of the EWM deviation —
//! a cheap cousin of N-sigma that reacts faster to level shifts — and
//! benchmarks it against the built-ins on a whole cell.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::{clamp_prediction, PeakPredictor, PredictorSpec};
use overcommit_repro::core::runner::run_cell;
use overcommit_repro::core::view::MachineView;
use overcommit_repro::core::MachineReport;
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::gen::WorkloadGenerator;

/// EWMA + k·EWM-deviation over the machine's warm aggregate window.
struct EwmaPredictor {
    /// Smoothing factor in `(0, 1]`; higher weights recent ticks more.
    alpha: f64,
    /// Deviation multiplier (plays the role of N in N-sigma).
    k: f64,
}

impl PeakPredictor for EwmaPredictor {
    fn name(&self) -> String {
        format!("ewma(a={},k={})", self.alpha, self.k)
    }

    fn predict(&self, view: &MachineView) -> f64 {
        let window = view.warm_aggregate();
        if window.is_empty() {
            return view.total_limit();
        }
        let mut level = 0.0;
        let mut dev = 0.0;
        let mut primed = false;
        for x in window.iter() {
            if !primed {
                level = x;
                primed = true;
            } else {
                dev = (1.0 - self.alpha) * dev + self.alpha * (x - level).abs();
                level = (1.0 - self.alpha) * level + self.alpha * x;
            }
        }
        clamp_prediction(level + self.k * dev + view.cold_limit_sum(), view)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cell = CellConfig::preset(CellPreset::A);
    cell.machines = 25;
    cell.duration_ticks = 3 * 288;
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell()?;

    // Built-ins run through the parallel runner...
    let cfg = SimConfig::default();
    let run = run_cell(
        gen.config().id.clone(),
        &machines,
        &cfg,
        &PredictorSpec::comparison_set(),
        4,
    )?;

    // ...while the custom predictor runs through `simulate_machine`
    // directly (the trait is all it needs to implement).
    let custom: Vec<Box<dyn PeakPredictor>> = vec![Box::new(EwmaPredictor { alpha: 0.1, k: 6.0 })];
    let mut custom_reports: Vec<MachineReport> = Vec::new();
    for m in &machines {
        let result = overcommit_repro::core::sim::simulate_machine(m, &cfg, &custom)?;
        custom_reports.extend(result.reports);
    }

    let summarize = |name: &str, rates: Vec<f64>, savings: Vec<f64>| {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:>30}  mean violation rate {:.4}  mean savings {:.4}",
            name,
            mean(&rates),
            mean(&savings)
        );
    };

    println!("cell a, {} machines, 3 days:\n", machines.len());
    for (i, name) in run.predictors.iter().enumerate() {
        summarize(name, run.violation_rates(i), run.machine_savings(i));
    }
    summarize(
        &custom[0].name(),
        custom_reports.iter().map(|r| r.violation_rate()).collect(),
        custom_reports.iter().map(|r| r.mean_savings()).collect(),
    );
    println!(
        "\nThe EWMA predictor slots into every harness in this workspace —\n\
         runner, A/B experiment, benches — through the PeakPredictor trait."
    );
    Ok(())
}
