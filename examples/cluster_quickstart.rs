//! Multi-process cluster quickstart: a 2-member ring, one logical client.
//!
//! ```text
//! cargo run --release --example cluster_quickstart
//! ```
//!
//! Boots two real `oc-serve` processes under the `oc-cluster` supervisor
//! (this binary re-execs itself as the members), routes a small fleet's
//! samples through a `ClusterClient` — consistent hashing picks each
//! machine's owner, and every `OBSERVE` is mirrored to its replica —
//! then SIGKILLs one member mid-service and shows that every prediction
//! survives bit-identically on the survivor. Along the way it reads each
//! member's `epoch` stamp (PROTOCOL.md §7.4) and the cluster-wide folded
//! `STATS`.

use overcommit_repro::client::{Client, ClientConfig, ClusterClient, ClusterClientConfig};
use overcommit_repro::cluster::{Cluster, ClusterConfig};
use overcommit_repro::serve::proto::epoch_ring_generation;
use overcommit_repro::trace::ids::{CellId, JobId, MachineId, TaskId};

const MACHINES: u32 = 8;
const TICKS: u64 = 30;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Must run before anything else: `Cluster::start` re-execs this
    // binary as its member processes, and this call diverts those
    // children into node-serving mode (it never returns for them).
    overcommit_repro::cluster::run_child_if_node();

    let mut cluster = Cluster::start(&ClusterConfig {
        nodes: 2,
        shards: 1,
        ..ClusterConfig::default()
    })?;
    let addrs = cluster.addrs();
    println!("2-process ring: {} and {}", addrs[0], addrs[1]);

    // Each member stamps STATS with its epoch: start time in the high
    // bits, ring generation in the low 16. Equal generations, distinct
    // processes.
    for (i, addr) in addrs.iter().enumerate() {
        let mut member = Client::connect(*addr, ClientConfig::default())?;
        let s = member.stats()?;
        println!(
            "member {i}: epoch {:#014x} (ring generation {})",
            s.epoch,
            epoch_ring_generation(s.epoch)
        );
    }

    // One client over the whole ring. Mirroring is on by default: every
    // acknowledged sample also reaches the key's replica, so losing a
    // whole process loses nothing.
    let mut client =
        ClusterClient::connect(cluster.spec(), &addrs, ClusterClientConfig::default())?;

    let cell = CellId::new("demo");
    let task = TaskId::new(JobId(1), 0);
    for t in 0..TICKS {
        for m in 0..MACHINES {
            let usage = 0.10 + 0.05 * ((u64::from(m) + t) % 5) as f64;
            client.observe(&cell, MachineId(m), task, usage, 0.6, t)?;
        }
    }

    let before: Vec<f64> = (0..MACHINES)
        .map(|m| client.predict(&cell, MachineId(m)))
        .collect::<Result<_, _>>()?;
    println!(
        "predicted peaks: machine 0 -> {:.3}, machine {} -> {:.3}",
        before[0],
        MACHINES - 1,
        before[MACHINES as usize - 1]
    );

    let s = client.stats()?;
    println!(
        "cluster-wide STATS (both members folded): {} observes, {} machine \
         copies (each machine counted at its owner and its replica)",
        s.observes, s.machines
    );

    // Kill a member the hard way — SIGKILL, no drain, mid-service. The
    // client discovers the death on the next request, fails over to the
    // replica, and replays any queued mirrors.
    cluster.kill(0)?;
    println!("SIGKILLed member 0");

    let after: Vec<f64> = (0..MACHINES)
        .map(|m| client.predict(&cell, MachineId(m)))
        .collect::<Result<_, _>>()?;
    for m in 0..MACHINES as usize {
        assert_eq!(
            before[m].to_bits(),
            after[m].to_bits(),
            "machine {m} prediction changed across the kill"
        );
    }
    let cm = client.metrics();
    println!(
        "all {MACHINES} predictions survived bit-identically \
         (failovers: {}, redirects: {}, replica replays: {})",
        cm.failovers, cm.redirects, cm.replica_replays
    );

    drop(client);
    let final_stats = cluster.shutdown()?;
    println!(
        "survivor drained: final snapshot has {} observes across {} machines",
        final_stats.observes, final_stats.machines
    );
    Ok(())
}
