//! Capacity planning: what overcommit savings mean in machines.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! The paper's savings ratio "directly translates into usable capacity,
//! which reduces the purchase of capacity in the future order, and hence
//! lowers CapEx" (Section 6.2). This example runs the deployed max
//! predictor over every trace cell and converts each cell's savings into
//! reclaimed machine equivalents, with the no-overcommit and borg-default
//! policies as reference points.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::runner::run_cell_streaming;
use overcommit_repro::trace::cell::CellConfig;
use overcommit_repro::trace::gen::WorkloadGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = [
        PredictorSpec::LimitSum,
        PredictorSpec::borg_default(),
        PredictorSpec::paper_max(),
    ];
    let cfg = SimConfig::default().with_series();

    println!(
        "{:>5}  {:>9}  {:>13}  {:>17}  {:>15}",
        "cell", "machines", "borg savings", "max-pred savings", "machines freed"
    );
    let mut total_machines = 0.0;
    let mut total_freed = 0.0;
    for preset in CellConfig::trace_cells() {
        let mut cell = preset;
        cell.machines = (cell.machines / 2).max(10);
        cell.duration_ticks = 3 * 288;
        let gen = WorkloadGenerator::new(cell)?;
        let run = run_cell_streaming(&gen, &cfg, &specs, 4)?;

        let mean_savings = |idx: usize| {
            let s = run.cell_savings_series(idx).expect("series enabled");
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        let borg = mean_savings(1);
        let max_pred = mean_savings(2);

        // Savings × allocated limit ≈ capacity that does not need to be
        // bought. Express it in whole machines of this cell.
        let machines = gen.config().machines as f64;
        let mean_alloc_ratio: f64 = {
            let mut limit = 0.0;
            let mut ticks = 0usize;
            for r in &run.results {
                let s = r.series.as_ref().expect("series enabled");
                limit += s.limit.iter().sum::<f64>();
                ticks += s.limit.len();
            }
            limit / ticks as f64 / gen.config().capacity
        };
        let freed = max_pred * mean_alloc_ratio * machines;
        total_machines += machines;
        total_freed += freed;
        println!(
            "{:>5}  {:>9}  {:>12.1}%  {:>16.1}%  {:>15.1}",
            run.cell,
            machines,
            100.0 * borg,
            100.0 * max_pred,
            freed
        );
    }
    println!(
        "\nFleet: {:.0} machines simulated; the max predictor frees ≈{:.1} machine\n\
         equivalents ({:.1}% of the fleet) relative to no overcommit — capacity\n\
         that capacity planning would otherwise have to buy.",
        total_machines,
        total_freed,
        100.0 * total_freed / total_machines
    );
    Ok(())
}
