//! Online serving quickstart: an in-process server and one client.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! Starts `oc-serve` on an ephemeral loopback port, streams a morning's
//! worth of usage samples for two tasks on one machine, and then asks the
//! questions a scheduler would ask: "what will this machine's peak be?"
//! and "does another 0.3-core task fit?". Finishes with the service-wide
//! `STATS` snapshot and a graceful drain.

use overcommit_repro::serve::proto::{Request, Response};
use overcommit_repro::serve::{ServeConfig, Server};
use overcommit_repro::trace::ids::{CellId, JobId, MachineId, TaskId};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-shard server with the paper's default predictor
    // (max(borg-default, n-sigma)) and node-agent parameters.
    let server = Server::start(ServeConfig::default().with_shards(2))?;
    println!("serving on {}", server.addr());

    let stream = TcpStream::connect(server.addr())?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut ask = |writer: &mut TcpStream,
                   reader: &mut BufReader<TcpStream>,
                   req: Request|
     -> Result<Response, Box<dyn std::error::Error>> {
        writer.write_all(req.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        line.clear();
        reader.read_line(&mut line)?;
        Ok(Response::parse(line.trim_end())?)
    };

    let cell = CellId::new("demo");
    let machine = MachineId(0);
    let web = TaskId::new(JobId(1), 0); // diurnal web serving task
    let batch = TaskId::new(JobId(2), 0); // flat batch task

    // Stream 48 five-minute ticks (four hours) of samples. The web task
    // ramps with the morning; the batch task hums along at a constant
    // rate. Both run far below their limits — the usage-to-limit gap the
    // paper's overcommit reclaims.
    for t in 0..48u64 {
        let ramp = 0.08 + 0.10 * (t as f64 / 48.0);
        for (task, usage, limit) in [(web, ramp, 0.6), (batch, 0.05, 0.3)] {
            let resp = ask(
                &mut writer,
                &mut reader,
                Request::Observe {
                    cell: cell.clone(),
                    machine,
                    task,
                    usage,
                    limit,
                    tick: t,
                },
            )?;
            assert_eq!(resp, Response::Ok, "observe rejected: {resp:?}");
        }
    }

    // The scheduler's first question: the machine's predicted peak.
    match ask(
        &mut writer,
        &mut reader,
        Request::Predict {
            cell: cell.clone(),
            machine,
        },
    )? {
        Response::Pred { peak } => {
            println!("predicted machine peak: {peak:.3} (Σ limits would say 0.900)");
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // The second question: does one more 0.3-core task fit?
    match ask(
        &mut writer,
        &mut reader,
        Request::Admit {
            cell: cell.clone(),
            machine,
            limit: 0.3,
        },
    )? {
        Response::Admitted { admit, projected } => {
            println!(
                "admit a 0.3-limit task? {} (projected peak {projected:.3} vs capacity 1.0)",
                if admit { "yes" } else { "no" }
            );
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    match ask(&mut writer, &mut reader, Request::Stats)? {
        Response::Stats(s) => println!(
            "server counters: {} observes, {} predicts, {} admits across {} machine(s), \
             p99 service latency {:.0} µs",
            s.observes, s.predicts, s.admits, s.machines, s.p99_us
        ),
        other => panic!("unexpected reply: {other:?}"),
    }

    drop((reader, writer));
    let final_stats = server.shutdown();
    println!(
        "drained: final snapshot has {} observes, {} busy rejects",
        final_stats.observes, final_stats.busy
    );
    Ok(())
}
