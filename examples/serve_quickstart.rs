//! Online serving quickstart: an in-process server and one typed client.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! Starts `oc-serve` on an ephemeral loopback port, streams a morning's
//! worth of usage samples for two tasks on one machine through the
//! retrying `oc-client` (which absorbs `BUSY` backpressure and transient
//! disconnects transparently), and then asks the questions a scheduler
//! would ask: "what will this machine's peak be?" and "does another
//! 0.3-core task fit?". Finishes with the service-wide `STATS` snapshot
//! and a graceful drain.

use overcommit_repro::client::{Client, ClientConfig};
use overcommit_repro::serve::{ServeConfig, Server};
use overcommit_repro::trace::ids::{CellId, JobId, MachineId, TaskId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-shard server with the paper's default predictor
    // (max(borg-default, n-sigma)) and node-agent parameters.
    let server = Server::start(ServeConfig::default().with_shards(2))?;
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr(), ClientConfig::default())?;

    let cell = CellId::new("demo");
    let machine = MachineId(0);
    let web = TaskId::new(JobId(1), 0); // diurnal web serving task
    let batch = TaskId::new(JobId(2), 0); // flat batch task

    // Stream 48 five-minute ticks (four hours) of samples. The web task
    // ramps with the morning; the batch task hums along at a constant
    // rate. Both run far below their limits — the usage-to-limit gap the
    // paper's overcommit reclaims.
    for t in 0..48u64 {
        let ramp = 0.08 + 0.10 * (t as f64 / 48.0);
        for (task, usage, limit) in [(web, ramp, 0.6), (batch, 0.05, 0.3)] {
            client.observe(&cell, machine, task, usage, limit, t)?;
        }
    }

    // The scheduler's first question: the machine's predicted peak.
    let peak = client.predict(&cell, machine)?;
    println!("predicted machine peak: {peak:.3} (Σ limits would say 0.900)");

    // The second question: does one more 0.3-core task fit?
    let (admit, projected) = client.admit(&cell, machine, 0.3)?;
    println!(
        "admit a 0.3-limit task? {} (projected peak {projected:.3} vs capacity 1.0)",
        if admit { "yes" } else { "no" }
    );

    let s = client.stats()?;
    println!(
        "server counters: {} observes, {} predicts, {} admits across {} machine(s), \
         p99 service latency {:.0} µs",
        s.observes, s.predicts, s.admits, s.machines, s.p99_us
    );

    drop(client);
    let final_stats = server.shutdown();
    println!(
        "drained: final snapshot has {} observes, {} busy rejects",
        final_stats.observes, final_stats.busy
    );
    Ok(())
}
