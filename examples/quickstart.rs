//! Quickstart: simulate one machine under the paper's predictors.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a trace-v3-shaped machine from the cell `a` preset, replays
//! it against the peak oracle, and prints the benefit/risk trade-off of
//! every built-in overcommit policy.

use overcommit_repro::core::config::SimConfig;
use overcommit_repro::core::predictor::PredictorSpec;
use overcommit_repro::core::sim::simulate_machine;
use overcommit_repro::trace::cell::{CellConfig, CellPreset};
use overcommit_repro::trace::gen::WorkloadGenerator;
use overcommit_repro::trace::ids::MachineId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One week of trace cell `a`, machine 0.
    let cell = CellConfig::preset(CellPreset::A);
    let gen = WorkloadGenerator::new(cell)?;
    let trace = gen.generate_machine(MachineId(0))?;
    println!(
        "machine 0 of cell a: {} tasks over {} ticks, lifetime peak {:.3} of capacity",
        trace.task_count(),
        trace.horizon.len(),
        trace.lifetime_peak() / trace.capacity
    );

    // The paper's four policies plus the no-overcommit baseline.
    let mut specs = vec![PredictorSpec::LimitSum];
    specs.extend(PredictorSpec::comparison_set());
    let predictors = specs
        .iter()
        .map(PredictorSpec::build)
        .collect::<Result<Vec<_>, _>>()?;

    // Replay: predictors see only history, the oracle sees the future.
    let result = simulate_machine(&trace, &SimConfig::default(), &predictors)?;

    println!(
        "\n{:>30}  {:>10}  {:>9}  {:>8}",
        "predictor", "violations", "severity", "savings"
    );
    for report in &result.reports {
        println!(
            "{:>30}  {:>10.4}  {:>9.4}  {:>8.4}",
            report.predictor,
            report.violation_rate(),
            report.mean_severity(),
            report.mean_savings()
        );
    }
    println!(
        "\nReading: savings is extra usable capacity relative to no overcommit;\n\
         violations are ticks where the policy promised more than the future\n\
         peak allows. borg-default saves a fixed 10% regardless of the machine;\n\
         the usage-based predictors adapt — on a hot machine like this one the\n\
         max predictor saves less but violates far less often."
    );
    Ok(())
}
