#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. CI and pre-merge both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast if any crates/* package is not a workspace member: a crate that
# silently drops out of the workspace (e.g. a members glob edit, or a
# missing path dependency) would otherwise skip build/test/clippy entirely
# and rot unnoticed.
metadata="$(cargo metadata --no-deps --format-version 1)"
missing=0
for manifest in crates/*/Cargo.toml; do
  name="$(sed -n 's/^name[[:space:]]*=[[:space:]]*"\(.*\)"/\1/p' "$manifest" | head -n 1)"
  if [ -z "$name" ]; then
    echo "tier1: cannot read package name from $manifest" >&2
    missing=1
    continue
  fi
  if ! printf '%s' "$metadata" | grep -q "\"name\"[[:space:]]*:[[:space:]]*\"$name\""; then
    echo "tier1: crate '$name' ($manifest) is NOT a workspace member" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "tier1: workspace membership check failed" >&2
  exit 1
fi

# Docs are part of the contract: every markdown link to a local file must
# point at something that exists (catches renamed/moved docs going stale),
# and rustdoc must be warning-free.
broken=0
for doc in README.md DESIGN.md EXPERIMENTS.md PAPER.md ROADMAP.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Inline markdown links: capture the (...) target, keep only local paths.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "tier1: $doc links to missing file '$target'" >&2
      broken=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](\(.*\))$/\1/')
done
if [ "$broken" -ne 0 ]; then
  echo "tier1: markdown link check failed" >&2
  exit 1
fi

cargo fmt --check
cargo build --release --workspace
cargo build --release --workspace --examples
cargo test -q --workspace

# The supervisor must never leak member processes when startup fails
# partway (a leaked child holds its port and survives the test run);
# pin the regression test by name so a filter or module rename cannot
# silently drop it.
leak_out="$(cargo test -q -p oc-cluster \
  supervisor::tests::start_failure_leaves_no_live_children -- --include-ignored)" \
  || { echo "tier1: supervisor leak regression test failed" >&2; exit 1; }
printf '%s' "$leak_out" | grep -q "1 passed" \
  || { echo "tier1: supervisor leak regression test did not run" >&2; exit 1; }

cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Multi-process cluster smoke test: boot a 3-member ring as real child
# processes, route through the consistent-hash ring, kill a member, and
# verify failover — the one behavior cargo test cannot cover, because
# test binaries cannot re-exec themselves as cluster nodes.
./target/release/oc-clusterd --smoke

# The powercap experiment is an acceptance artifact of the
# multi-resource refactor: a quick-scale run must emit its [claim]
# lines (cap frontier + worst-lane gating demo) and write the frontier
# CSV. Results go to a scratch dir so tier-1 never dirties results/.
powercap_dir="$(mktemp -d)"
trap 'rm -rf "$powercap_dir"' EXIT
powercap_out="$(./target/release/repro --results "$powercap_dir" powercap)" \
  || { echo "tier1: powercap experiment failed" >&2; exit 1; }
claims="$(printf '%s\n' "$powercap_out" | grep -c '\[claim\]' || true)"
if [ "$claims" -lt 4 ]; then
  echo "tier1: powercap emitted $claims [claim] lines (need >= 4)" >&2
  exit 1
fi
if [ ! -s "$powercap_dir/powercap_frontier.csv" ]; then
  echo "tier1: powercap wrote no frontier CSV" >&2
  exit 1
fi

# Benchmarks must at least keep compiling (running them is tier-2), and
# the checked-in BENCH_*.json result files must stay structurally sound.
cargo bench --workspace --no-run
scripts/check_bench_json.sh
