#!/usr/bin/env bash
# Validates the checked-in BENCH_*.json result files: every file must be
# well-formed JSON with the common envelope (bench, command), and
# BENCH_serve.json must additionally uphold the loadgen invariants the
# benchmark is meant to demonstrate — zero lost acknowledged samples in
# every phase, reject_rate a true rate in [0, 1], and the BATCH-framed
# phase actually beating the paced sustained phase (>= 1.5x throughput
# without a worse server-side p99) when both were measured in the same
# run.
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_json: no BENCH_*.json files found" >&2
  exit 1
fi

python3 - "${files[@]}" <<'PYEOF'
import json
import sys

failures = []


def fail(path, msg):
    failures.append(f"{path}: {msg}")


def check_serve(path, doc):
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(path, "'phases' must be a non-empty list")
        return
    by_label = {}
    numeric_keys = (
        "sent", "ok", "busy", "errors", "retries", "lost",
        "failed_connections", "wall_secs", "achieved_qps",
        "reject_rate", "retry_ratio",
        "client_p50_us", "client_p99_us",
        "server_p50_us", "server_p99_us", "server_observes",
    )
    for phase in phases:
        label = phase.get("label")
        if not isinstance(label, str) or not label:
            fail(path, f"phase without a label: {phase!r:.80}")
            continue
        by_label[label] = phase
        for key in numeric_keys:
            if not isinstance(phase.get(key), (int, float)):
                fail(path, f"phase '{label}': missing numeric '{key}'")
        lost = phase.get("lost")
        if isinstance(lost, (int, float)) and lost != 0:
            fail(path, f"phase '{label}': lost={lost} acknowledged samples")
        rate = phase.get("reject_rate")
        if isinstance(rate, (int, float)) and not 0.0 <= rate <= 1.0:
            fail(path, f"phase '{label}': reject_rate={rate} outside [0, 1]")
        failed = phase.get("failed_connections")
        if isinstance(failed, (int, float)) and failed != 0:
            fail(path, f"phase '{label}': {failed} failed connections")
    sustained = by_label.get("sustained")
    batched = by_label.get("serve_batched")
    if sustained and batched:
        base = sustained.get("achieved_qps") or 0
        got = batched.get("achieved_qps") or 0
        if base and got < 1.5 * base:
            fail(path, f"serve_batched achieved {got:.0f} qps < 1.5x "
                       f"sustained ({base:.0f} qps)")
        base_p99 = sustained.get("server_p99_us") or 0
        got_p99 = batched.get("server_p99_us") or 0
        if base_p99 and got_p99 > base_p99:
            fail(path, f"serve_batched server_p99_us {got_p99:.1f} worse "
                       f"than sustained ({base_p99:.1f})")
    chaos = by_label.get("batched-chaos")
    if chaos is not None and not chaos.get("faults"):
        fail(path, "batched-chaos phase injected no faults")


for path in sys.argv[1:]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(path, f"not valid JSON: {exc}")
        continue
    if not isinstance(doc, dict):
        fail(path, "top level must be a JSON object")
        continue
    for key in ("bench", "command"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(path, f"missing or empty string field '{key}'")
    if "phases" in doc:
        check_serve(path, doc)

if failures:
    for line in failures:
        print(f"check_bench_json: {line}", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: {len(sys.argv) - 1} file(s) OK")
PYEOF
