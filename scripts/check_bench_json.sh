#!/usr/bin/env bash
# Validates the checked-in BENCH_*.json result files: every file must be
# well-formed JSON with the common envelope (bench, command), and
# BENCH_serve.json must additionally uphold the loadgen invariants the
# benchmark is meant to demonstrate — zero lost acknowledged samples in
# every phase, reject_rate a true rate in [0, 1], the BATCH-framed
# phase actually beating the paced sustained phase (>= 1.5x throughput
# without a worse server-side p99) when both were measured in the same
# run, and a mandatory reactor-10k phase proving the event-loop frontend
# holds >= 10000 concurrent connections at >= 1M qps without losing an
# acknowledged sample.
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_json: no BENCH_*.json files found" >&2
  exit 1
fi

python3 - "${files[@]}" <<'PYEOF'
import json
import sys

failures = []


def fail(path, msg):
    failures.append(f"{path}: {msg}")


def check_serve(path, doc):
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(path, "'phases' must be a non-empty list")
        return
    by_label = {}
    numeric_keys = (
        "sent", "ok", "busy", "errors", "retries", "lost",
        "failed_connections", "connections", "wall_secs", "achieved_qps",
        "reject_rate", "retry_ratio",
        "client_p50_us", "client_p99_us",
        "setup_p50_us", "setup_p99_us", "setup_max_us",
        "server_p50_us", "server_p99_us", "server_observes",
    )
    for phase in phases:
        label = phase.get("label")
        if not isinstance(label, str) or not label:
            fail(path, f"phase without a label: {phase!r:.80}")
            continue
        by_label[label] = phase
        for key in numeric_keys:
            if not isinstance(phase.get(key), (int, float)):
                fail(path, f"phase '{label}': missing numeric '{key}'")
        lost = phase.get("lost")
        if isinstance(lost, (int, float)) and lost != 0:
            fail(path, f"phase '{label}': lost={lost} acknowledged samples")
        rate = phase.get("reject_rate")
        if isinstance(rate, (int, float)) and not 0.0 <= rate <= 1.0:
            fail(path, f"phase '{label}': reject_rate={rate} outside [0, 1]")
        failed = phase.get("failed_connections")
        if isinstance(failed, (int, float)) and failed != 0:
            fail(path, f"phase '{label}': {failed} failed connections")
    sustained = by_label.get("sustained")
    batched = by_label.get("serve_batched")
    if sustained and batched:
        base = sustained.get("achieved_qps") or 0
        got = batched.get("achieved_qps") or 0
        if base and got < 1.5 * base:
            fail(path, f"serve_batched achieved {got:.0f} qps < 1.5x "
                       f"sustained ({base:.0f} qps)")
        base_p99 = sustained.get("server_p99_us") or 0
        got_p99 = batched.get("server_p99_us") or 0
        if base_p99 and got_p99 > base_p99:
            fail(path, f"serve_batched server_p99_us {got_p99:.1f} worse "
                       f"than sustained ({base_p99:.1f})")
    chaos = by_label.get("batched-chaos")
    if chaos is not None and not chaos.get("faults"):
        fail(path, "batched-chaos phase injected no faults")

    # The reactor-10k phase is the point of the event-loop frontend; a
    # BENCH_serve.json without it (e.g. regenerated with a stale binary
    # or a truncated run) must not pass.
    reactor = by_label.get("reactor-10k")
    if reactor is None:
        fail(path, "mandatory 'reactor-10k' phase missing")
    else:
        conns = reactor.get("connections") or 0
        if conns < 10_000:
            fail(path, f"reactor-10k held only {conns} connections "
                       f"(need >= 10000)")
        qps = reactor.get("achieved_qps") or 0
        if qps < 1_000_000:
            fail(path, f"reactor-10k achieved {qps:.0f} qps "
                       f"(need >= 1000000)")
        # Server-side p99 gate, relative to the serve_batched phase of
        # the same run. The reactor phase runs ~40x the connection count
        # on the same cores, so an absolute bound would just encode one
        # host; instead require the event sweep not to *multiply* the
        # data-plane tail. The 4x allowance covers single-core
        # scheduling: on one core the reactor's sweep and the shard
        # workers time-share, so enqueued chunks age behind the sweep in
        # a way the low-fan-in batched phase never sees. (Before the
        # reactor yielded mid-sweep this ratio measured ~66x, so the
        # gate retains teeth against that regression class.)
        base_p99 = (batched or {}).get("server_p99_us") or 0
        got_p99 = reactor.get("server_p99_us") or 0
        if base_p99 and got_p99 > 4.0 * base_p99:
            fail(path, f"reactor-10k server_p99_us {got_p99:.1f} > 4x "
                       f"serve_batched ({base_p99:.1f})")


for path in sys.argv[1:]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(path, f"not valid JSON: {exc}")
        continue
    if not isinstance(doc, dict):
        fail(path, "top level must be a JSON object")
        continue
    for key in ("bench", "command"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(path, f"missing or empty string field '{key}'")
    if "phases" in doc:
        check_serve(path, doc)

if failures:
    for line in failures:
        print(f"check_bench_json: {line}", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: {len(sys.argv) - 1} file(s) OK")
PYEOF
