#!/usr/bin/env bash
# Validates the checked-in BENCH_*.json result files: every file must be
# well-formed JSON with the common envelope (bench, command), and
# BENCH_serve.json must additionally uphold the loadgen invariants the
# benchmark is meant to demonstrate — zero lost acknowledged samples in
# every phase, reject_rate a true rate in [0, 1], the BATCH-framed
# phase matching the sustained phase within run-to-run noise (framing
# must not cost throughput or worsen server-side p99) when both were
# measured in the same run, a mandatory reactor-10k phase proving the
# event-loop frontend
# holds >= 10000 concurrent connections at >= 1M qps without losing an
# acknowledged sample, and mandatory cluster phases proving multi-process
# serving: cluster-chaos (>= 3 processes, one SIGKILLed mid-run, served
# vs offline prediction identity as the lost figure), cluster-replace
# (a member SIGKILLed and replaced into its ring slot, a stale-spec
# client auto-adopting the pushed generation, mirror coverage restored
# to 100%), and cluster-1m (>= 1,000,000 simulated machines spread
# across the ring). BENCH_hot_path.json must uphold the hot-path
# envelope: the vectorized two-lane engine within 1.3x of the scalar
# engine, and the engine at least 3x faster than the naive replica —
# ratios taken within the same recorded run, so host speed cancels out.
set -euo pipefail
cd "$(dirname "$0")/.."

shopt -s nullglob
files=(BENCH_*.json)
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_bench_json: no BENCH_*.json files found" >&2
  exit 1
fi

python3 - "${files[@]}" <<'PYEOF'
import json
import sys

failures = []


def fail(path, msg):
    failures.append(f"{path}: {msg}")


def check_serve(path, doc):
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(path, "'phases' must be a non-empty list")
        return
    by_label = {}
    numeric_keys = (
        "sent", "ok", "busy", "errors", "retries", "lost",
        "failed_connections", "connections", "wall_secs", "achieved_qps",
        "reject_rate", "retry_ratio",
        "client_p50_us", "client_p99_us",
        "setup_p50_us", "setup_p99_us", "setup_max_us",
        "server_p50_us", "server_p99_us", "server_observes",
    )
    for phase in phases:
        label = phase.get("label")
        if not isinstance(label, str) or not label:
            fail(path, f"phase without a label: {phase!r:.80}")
            continue
        by_label[label] = phase
        for key in numeric_keys:
            if not isinstance(phase.get(key), (int, float)):
                fail(path, f"phase '{label}': missing numeric '{key}'")
        lost = phase.get("lost")
        if isinstance(lost, (int, float)) and lost != 0:
            fail(path, f"phase '{label}': lost={lost} acknowledged samples")
        rate = phase.get("reject_rate")
        if isinstance(rate, (int, float)) and not 0.0 <= rate <= 1.0:
            fail(path, f"phase '{label}': reject_rate={rate} outside [0, 1]")
        failed = phase.get("failed_connections")
        if isinstance(failed, (int, float)) and failed != 0:
            fail(path, f"phase '{label}': {failed} failed connections")
    sustained = by_label.get("sustained")
    batched = by_label.get("serve_batched")
    if sustained and batched:
        # BATCH framing must not *cost* performance. It used to be
        # required to win by 1.5x qps at a no-worse p99, but since the
        # fleet-scale ingest optimizations the shard worker, not
        # per-line framing, is the single-core ceiling: both phases
        # saturate the same ~400k lines/s, and framing's win shows up
        # as fewer syscalls per line (and in the reactor phase's
        # fan-in throughput), not as a higher unpaced ceiling. Both
        # serve phases finish in under a second, so back-to-back runs
        # on a shared host swing +/-20% in qps and p99; the 0.7x qps
        # floor and 1.5x p99 allowance cover that measured noise while
        # still tripping on a real framing regression (re-parsing or
        # allocating per line costs >= 2x).
        base = sustained.get("achieved_qps") or 0
        got = batched.get("achieved_qps") or 0
        if base and got < 0.7 * base:
            fail(path, f"serve_batched achieved {got:.0f} qps < 0.7x "
                       f"sustained ({base:.0f} qps)")
        base_p99 = sustained.get("server_p99_us") or 0
        got_p99 = batched.get("server_p99_us") or 0
        if base_p99 and got_p99 > 1.5 * base_p99:
            fail(path, f"serve_batched server_p99_us {got_p99:.1f} > 1.5x "
                       f"sustained ({base_p99:.1f})")
    chaos = by_label.get("batched-chaos")
    if chaos is not None and not chaos.get("faults"):
        fail(path, "batched-chaos phase injected no faults")

    # The reactor-10k phase is the point of the event-loop frontend; a
    # BENCH_serve.json without it (e.g. regenerated with a stale binary
    # or a truncated run) must not pass.
    reactor = by_label.get("reactor-10k")
    if reactor is None:
        fail(path, "mandatory 'reactor-10k' phase missing")
    else:
        conns = reactor.get("connections") or 0
        if conns < 10_000:
            fail(path, f"reactor-10k held only {conns} connections "
                       f"(need >= 10000)")
        qps = reactor.get("achieved_qps") or 0
        if qps < 1_000_000:
            fail(path, f"reactor-10k achieved {qps:.0f} qps "
                       f"(need >= 1000000)")
        # Server-side p99 gate. This used to be relative (<= 4x the
        # serve_batched p99 of the same run), but the fleet-scale ingest
        # optimizations dropped the data-plane p99 to tens of µs, and
        # the failure mode this gate exists to catch — the reactor not
        # yielding mid-sweep, so enqueued chunks age behind a full
        # 10k-connection sweep — costs tens of *milliseconds* no matter
        # how fast the data plane is (it measured ~46ms before the
        # mid-sweep yield landed). A small multiple of a ~50µs baseline
        # would reject every healthy run; an absolute 10ms ceiling
        # keeps >4x separation from the known regression while leaving
        # ~3x headroom over healthy measurements (~3ms on one core).
        got_p99 = reactor.get("server_p99_us") or 0
        if got_p99 > 10_000:
            fail(path, f"reactor-10k server_p99_us {got_p99:.1f} > "
                       f"10000 (sweep is starving enqueued chunks)")

    # The cluster phases prove multi-process serving end to end. Their
    # lost==0 / failed_connections==0 invariants ride the generic
    # per-phase checks above; here we pin the cluster-specific shape:
    # chaos must actually have killed a member of a real ring, and the
    # scale phase must actually have spread a million machines.
    chaos = by_label.get("cluster-chaos")
    if chaos is None:
        fail(path, "mandatory 'cluster-chaos' phase missing")
    else:
        procs = chaos.get("processes") or 0
        if procs < 3:
            fail(path, f"cluster-chaos ran {procs} processes (need >= 3)")
        killed = chaos.get("killed") or 0
        if killed < 1:
            fail(path, "cluster-chaos killed no member mid-run")
    replace = by_label.get("cluster-replace")
    if replace is None:
        fail(path, "mandatory 'cluster-replace' phase missing")
    else:
        # lost==0 / failed_connections==0 ride the generic checks; the
        # replacement-specific shape is: a real ring, a real kill, a
        # real same-slot replacement, the client adopting the pushed
        # generation without operator help, and redundancy restored
        # (every machine resident on exactly owner + replica).
        procs = replace.get("processes") or 0
        if procs < 3:
            fail(path, f"cluster-replace ran {procs} processes (need >= 3)")
        if (replace.get("killed") or 0) < 1:
            fail(path, "cluster-replace killed no member mid-run")
        if (replace.get("replaced") or 0) < 1:
            fail(path, "cluster-replace replaced no member")
        if (replace.get("adoptions") or 0) < 1:
            fail(path, "cluster-replace: client never auto-adopted the "
                       "pushed ring generation")
        coverage = replace.get("mirror_coverage_pct")
        if coverage != 100:
            fail(path, f"cluster-replace mirror_coverage_pct={coverage} "
                       f"(replacement must restore full redundancy)")
    one_m = by_label.get("cluster-1m")
    if one_m is None:
        fail(path, "mandatory 'cluster-1m' phase missing")
    else:
        procs = one_m.get("processes") or 0
        if procs < 3:
            fail(path, f"cluster-1m ran {procs} processes (need >= 3)")
        machines = one_m.get("server_machines") or 0
        if machines < 1_000_000:
            fail(path, f"cluster-1m tracked {machines} machines "
                       f"(need >= 1000000)")
        # Pipelined routed-ingest gate: the ring data plane must hold
        # >= 3x the recorded PR 9 sync-path baseline (194,914 qps). A
        # regression below this line means cluster ingest has fallen
        # back to per-line round-trips.
        qps = one_m.get("achieved_qps") or 0
        if qps < 584_742:
            fail(path, f"cluster-1m achieved {qps:.0f} qps (need >= "
                       f"584742 = 3x the 194914 sync-path baseline)")
        # Merged-histogram sanity: the aggregator once combined
        # count/sum wrong, reporting a mean 18x above p99.
        mean = one_m.get("server_mean_us")
        p99 = one_m.get("server_p99_us")
        if (isinstance(mean, (int, float)) and isinstance(p99, (int, float))
                and mean > p99):
            fail(path, f"cluster-1m server_mean_us {mean:.1f} > "
                       f"server_p99_us {p99:.1f} (merged mean must lie "
                       f"below merged p99)")


def check_hot_path(path, doc):
    results = doc.get("results")
    if not isinstance(results, dict):
        fail(path, "'results' must be an object")
        return
    medians = {}
    for variant in ("engine", "engine_vector", "engine_telemetry", "naive"):
        entry = results.get(variant)
        median = entry.get("median_ns_per_iter") if isinstance(entry, dict) else None
        if not isinstance(median, (int, float)) or median <= 0:
            fail(path, f"variant '{variant}': missing positive "
                       f"'median_ns_per_iter'")
            return
        medians[variant] = median
    # The vectorized engine runs both resource lanes; its envelope is
    # 1.3x the scalar engine measured in the same run (the memory lane
    # is a peak-only window, so two lanes must not cost two engines).
    ratio = medians["engine_vector"] / medians["engine"]
    if ratio > 1.3:
        fail(path, f"engine_vector is {ratio:.2f}x engine "
                   f"(envelope: <= 1.3x)")
    # The PR 1 acceptance figure: the incremental engine beats the
    # pre-rewrite replica by at least 3x.
    speedup = medians["naive"] / medians["engine"]
    if speedup < 3.0:
        fail(path, f"engine is only {speedup:.2f}x faster than naive "
                   f"(acceptance: >= 3x)")


for path in sys.argv[1:]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        fail(path, f"not valid JSON: {exc}")
        continue
    if not isinstance(doc, dict):
        fail(path, "top level must be a JSON object")
        continue
    for key in ("bench", "command"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            fail(path, f"missing or empty string field '{key}'")
    if "phases" in doc:
        check_serve(path, doc)
    if doc.get("bench") == "hot_path":
        check_hot_path(path, doc)

if failures:
    for line in failures:
        print(f"check_bench_json: {line}", file=sys.stderr)
    sys.exit(1)
print(f"check_bench_json: {len(sys.argv) - 1} file(s) OK")
PYEOF
