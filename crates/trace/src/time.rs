//! Discrete time model: 5-minute ticks.
//!
//! The Google trace reports task usage as one summarized window per
//! 5 minutes, so the whole reproduction runs on a discrete clock of
//! 5-minute ticks: 12 per hour, 288 per day, 2016 per week. Within a tick
//! the generator draws [`SUBSAMPLES_PER_TICK`] instantaneous usage points
//! per task, mirroring the within-window CPU histogram of trace v3.

/// Ticks per hour (5-minute ticks).
pub const TICKS_PER_HOUR: u64 = 12;

/// Ticks per day.
pub const TICKS_PER_DAY: u64 = 24 * TICKS_PER_HOUR;

/// Ticks per week.
pub const TICKS_PER_WEEK: u64 = 7 * TICKS_PER_DAY;

/// Instantaneous usage points drawn per task per tick. The within-tick
/// machine-level peak is the max over these instants of the *sum* of task
/// usage, which is what makes the pooling effect (Figure 1 / Figure 6)
/// observable.
pub const SUBSAMPLES_PER_TICK: usize = 15;

/// A point on the discrete 5-minute clock, measured from the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// The trace origin.
    pub const ZERO: Tick = Tick(0);

    /// Constructs a tick from whole hours.
    pub fn from_hours(h: u64) -> Tick {
        Tick(h * TICKS_PER_HOUR)
    }

    /// Constructs a tick from whole days.
    pub fn from_days(d: u64) -> Tick {
        Tick(d * TICKS_PER_DAY)
    }

    /// The raw tick index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// This tick expressed in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / TICKS_PER_HOUR as f64
    }

    /// This tick expressed in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / TICKS_PER_DAY as f64
    }

    /// Fraction of the day in `[0, 1)` this tick falls at (for diurnal
    /// patterns).
    pub fn day_fraction(self) -> f64 {
        (self.0 % TICKS_PER_DAY) as f64 / TICKS_PER_DAY as f64
    }

    /// Tick advanced by `n` ticks.
    pub fn plus(self, n: u64) -> Tick {
        Tick(self.0 + n)
    }

    /// Tick moved back by `n` ticks, saturating at zero.
    pub fn minus(self, n: u64) -> Tick {
        Tick(self.0.saturating_sub(n))
    }
}

impl std::fmt::Display for Tick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A half-open range of ticks `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TickRange {
    /// First tick in the range.
    pub start: Tick,
    /// One past the last tick in the range.
    pub end: Tick,
}

impl TickRange {
    /// Creates `[start, end)`; an inverted range collapses to empty.
    pub fn new(start: Tick, end: Tick) -> TickRange {
        if end < start {
            TickRange { start, end: start }
        } else {
            TickRange { start, end }
        }
    }

    /// Range covering `[0, n)`.
    pub fn from_len(n: u64) -> TickRange {
        TickRange::new(Tick::ZERO, Tick(n))
    }

    /// Number of ticks in the range.
    pub fn len(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Returns `true` for an empty range.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether `t` lies inside the half-open range.
    pub fn contains(self, t: Tick) -> bool {
        self.start <= t && t < self.end
    }

    /// Intersection of two ranges (possibly empty).
    pub fn intersect(self, other: TickRange) -> TickRange {
        TickRange::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Iterates over the ticks of the range in order.
    pub fn iter(self) -> impl Iterator<Item = Tick> {
        (self.start.0..self.end.0).map(Tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Tick::from_hours(2).index(), 24);
        assert_eq!(Tick::from_days(1).index(), 288);
        assert_eq!(Tick(24).as_hours(), 2.0);
        assert_eq!(Tick(288).as_days(), 1.0);
        assert_eq!(TICKS_PER_WEEK, 2016);
    }

    #[test]
    fn day_fraction_wraps() {
        assert_eq!(Tick(0).day_fraction(), 0.0);
        assert_eq!(Tick(144).day_fraction(), 0.5);
        assert_eq!(Tick(288).day_fraction(), 0.0);
        assert_eq!(Tick(288 + 72).day_fraction(), 0.25);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Tick(5).plus(3), Tick(8));
        assert_eq!(Tick(5).minus(3), Tick(2));
        assert_eq!(Tick(2).minus(10), Tick(0));
    }

    #[test]
    fn range_basics() {
        let r = TickRange::new(Tick(2), Tick(5));
        assert_eq!(r.len(), 3);
        assert!(r.contains(Tick(2)));
        assert!(r.contains(Tick(4)));
        assert!(!r.contains(Tick(5)));
        let ticks: Vec<_> = r.iter().collect();
        assert_eq!(ticks, vec![Tick(2), Tick(3), Tick(4)]);
    }

    #[test]
    fn inverted_range_is_empty() {
        let r = TickRange::new(Tick(5), Tick(2));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn intersection() {
        let a = TickRange::new(Tick(0), Tick(10));
        let b = TickRange::new(Tick(5), Tick(20));
        assert_eq!(a.intersect(b), TickRange::new(Tick(5), Tick(10)));
        let c = TickRange::new(Tick(12), Tick(15));
        assert!(a.intersect(c).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Tick(42).to_string(), "t42");
    }
}
