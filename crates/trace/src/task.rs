//! Task specifications and per-task usage series.

use crate::error::TraceError;
use crate::ids::TaskId;
use crate::sample::UsageSample;
use crate::time::{Tick, TickRange};

/// The trace's scheduling class: how latency-sensitive a task is.
///
/// Classes 2 and 3 are the latency-sensitive serving classes the paper's
/// simulations are restricted to ("we only consider latency sensitive tasks
/// from the trace, which corresponds to scheduling classes 2 and 3").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedulingClass {
    /// Most insensitive (best-effort batch).
    Class0,
    /// Batch with some sensitivity.
    Class1,
    /// Latency-sensitive serving.
    Class2,
    /// Most latency-sensitive serving.
    Class3,
}

impl SchedulingClass {
    /// Whether the paper's simulations include this class.
    pub fn is_latency_sensitive(self) -> bool {
        matches!(self, SchedulingClass::Class2 | SchedulingClass::Class3)
    }

    /// Numeric class (0..=3), matching the trace encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            SchedulingClass::Class0 => 0,
            SchedulingClass::Class1 => 1,
            SchedulingClass::Class2 => 2,
            SchedulingClass::Class3 => 3,
        }
    }

    /// Parses a trace encoding.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] for values above 3.
    pub fn from_u8(v: u8) -> Result<SchedulingClass, TraceError> {
        match v {
            0 => Ok(SchedulingClass::Class0),
            1 => Ok(SchedulingClass::Class1),
            2 => Ok(SchedulingClass::Class2),
            3 => Ok(SchedulingClass::Class3),
            _ => Err(TraceError::InvalidConfig {
                what: format!("scheduling class {v} out of range 0..=3"),
            }),
        }
    }
}

/// Static properties of a task: identity, lifetime, limit, class, priority.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task identity (job + instance index).
    pub id: TaskId,
    /// CPU limit in normalized machine-capacity units — the upper bound the
    /// machine-level infrastructure enforces.
    pub limit: f64,
    /// Memory limit (kept for schema fidelity; the paper's experiments
    /// overcommit CPU).
    pub memory_limit: f64,
    /// First tick the task runs in (inclusive).
    pub start: Tick,
    /// One past the last tick the task runs in.
    pub end: Tick,
    /// Latency sensitivity class.
    pub class: SchedulingClass,
    /// Priority (larger is more important), as in the trace.
    pub priority: u16,
}

impl TaskSpec {
    /// The task's lifetime as a half-open tick range.
    pub fn lifetime(&self) -> TickRange {
        TickRange::new(self.start, self.end)
    }

    /// Number of ticks the task runs for.
    pub fn runtime_ticks(&self) -> u64 {
        self.lifetime().len()
    }

    /// Runtime in fractional hours.
    pub fn runtime_hours(&self) -> f64 {
        self.runtime_ticks() as f64 / crate::time::TICKS_PER_HOUR as f64
    }

    /// Whether the task is running at tick `t`.
    pub fn alive_at(&self, t: Tick) -> bool {
        self.lifetime().contains(t)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] for an empty lifetime or a
    /// non-positive / non-finite limit.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.lifetime().is_empty() {
            return Err(TraceError::InvalidConfig {
                what: format!("task {} has empty lifetime", self.id),
            });
        }
        if !(self.limit > 0.0) || !self.limit.is_finite() {
            return Err(TraceError::InvalidConfig {
                what: format!("task {} has invalid limit {}", self.id, self.limit),
            });
        }
        Ok(())
    }
}

/// A task together with its usage series, one [`UsageSample`] per alive tick.
///
/// `samples[i]` covers tick `spec.start + i`; the series length always
/// equals the task's runtime in ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTrace {
    /// Static task properties.
    pub spec: TaskSpec,
    /// One usage summary per tick of the task's lifetime.
    pub samples: Vec<UsageSample>,
}

impl TaskTrace {
    /// Creates a task trace, checking series/lifetime consistency.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InconsistentTask`] if the sample count does not
    /// match the lifetime, plus any error from [`TaskSpec::validate`].
    pub fn new(spec: TaskSpec, samples: Vec<UsageSample>) -> Result<TaskTrace, TraceError> {
        spec.validate()?;
        if samples.len() as u64 != spec.runtime_ticks() {
            return Err(TraceError::InconsistentTask {
                what: format!(
                    "task {} runs {} ticks but has {} samples",
                    spec.id,
                    spec.runtime_ticks(),
                    samples.len()
                ),
            });
        }
        Ok(TaskTrace { spec, samples })
    }

    /// The usage summary at absolute tick `t`, or `None` outside the
    /// lifetime. (The paper treats completed tasks as zero usage; callers
    /// that want that convention can default to [`UsageSample::ZERO`].)
    pub fn sample_at(&self, t: Tick) -> Option<&UsageSample> {
        if !self.spec.alive_at(t) {
            return None;
        }
        let idx = (t.index() - self.spec.start.index()) as usize;
        self.samples.get(idx)
    }

    /// The task's peak usage (max over its lifetime of the window max).
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.max).fold(0.0, f64::max)
    }

    /// Mean of window averages over the lifetime.
    pub fn mean_usage(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.avg).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;

    fn spec(start: u64, end: u64, limit: f64) -> TaskSpec {
        TaskSpec {
            id: TaskId::new(JobId(1), 0),
            limit,
            memory_limit: 0.1,
            start: Tick(start),
            end: Tick(end),
            class: SchedulingClass::Class2,
            priority: 200,
        }
    }

    fn flat_sample(v: f64) -> UsageSample {
        UsageSample {
            avg: v,
            p50: v,
            p90: v,
            p95: v,
            p99: v,
            max: v,
        }
    }

    #[test]
    fn scheduling_class_roundtrip() {
        for v in 0..=3u8 {
            assert_eq!(SchedulingClass::from_u8(v).unwrap().as_u8(), v);
        }
        assert!(SchedulingClass::from_u8(4).is_err());
        assert!(SchedulingClass::Class2.is_latency_sensitive());
        assert!(!SchedulingClass::Class1.is_latency_sensitive());
    }

    #[test]
    fn lifetime_queries() {
        let s = spec(10, 14, 0.5);
        assert_eq!(s.runtime_ticks(), 4);
        assert!(s.alive_at(Tick(10)));
        assert!(s.alive_at(Tick(13)));
        assert!(!s.alive_at(Tick(14)));
        assert!(!s.alive_at(Tick(9)));
        assert!((s.runtime_hours() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(spec(5, 5, 0.5).validate().is_err());
        assert!(spec(5, 6, 0.0).validate().is_err());
        assert!(spec(5, 6, f64::NAN).validate().is_err());
        assert!(spec(5, 6, 0.5).validate().is_ok());
    }

    #[test]
    fn trace_requires_matching_lengths() {
        let s = spec(0, 3, 0.5);
        assert!(TaskTrace::new(s.clone(), vec![flat_sample(0.1); 2]).is_err());
        let t = TaskTrace::new(s, vec![flat_sample(0.1); 3]).unwrap();
        assert_eq!(t.samples.len(), 3);
    }

    #[test]
    fn sample_lookup_by_absolute_tick() {
        let s = spec(5, 8, 0.5);
        let t = TaskTrace::new(
            s,
            vec![flat_sample(0.1), flat_sample(0.2), flat_sample(0.3)],
        )
        .unwrap();
        assert_eq!(t.sample_at(Tick(5)).unwrap().avg, 0.1);
        assert_eq!(t.sample_at(Tick(7)).unwrap().avg, 0.3);
        assert!(t.sample_at(Tick(8)).is_none());
        assert!(t.sample_at(Tick(4)).is_none());
    }

    #[test]
    fn peak_and_mean() {
        let s = spec(0, 3, 1.0);
        let t = TaskTrace::new(
            s,
            vec![flat_sample(0.1), flat_sample(0.5), flat_sample(0.3)],
        )
        .unwrap();
        assert_eq!(t.peak(), 0.5);
        assert!((t.mean_usage() - 0.3).abs() < 1e-12);
    }
}
