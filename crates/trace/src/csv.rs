//! CSV-style serialization of machine traces.
//!
//! The paper's artifact stores preprocessed traces in BigQuery tables; the
//! equivalent here is a plain-text, line-oriented format so that generated
//! workloads can be cached on disk, inspected with standard tools, or fed to
//! external plotting scripts. One file holds any number of machines.
//!
//! The format is four record kinds, one record per line:
//!
//! ```text
//! machine,<id>,<capacity>,<horizon_start>,<horizon_end>
//! task,<job>,<index>,<limit>,<memory_limit>,<start>,<end>,<class>,<priority>
//! sample,<job>,<index>,<tick>,<avg>,<p50>,<p90>,<p95>,<p99>,<max>
//! peak,<tick>,<true_peak>,<avg_usage>
//! ```
//!
//! `task`, `sample` and `peak` records belong to the most recent `machine`
//! record. Lines starting with `#` are comments.

use crate::error::TraceError;
use crate::ids::{JobId, MachineId, TaskId};
use crate::machine::MachineTrace;
use crate::sample::UsageSample;
use crate::task::{SchedulingClass, TaskSpec, TaskTrace};
use crate::time::{Tick, TickRange};
use std::io::{BufRead, BufWriter, Write};

/// Writes machine traces in the line-oriented CSV format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure.
pub fn write_machines<W: Write>(out: W, machines: &[MachineTrace]) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# overcommit-repro machine trace v1")?;
    for m in machines {
        writeln!(
            w,
            "machine,{},{},{},{}",
            m.machine.0,
            m.capacity,
            m.horizon.start.index(),
            m.horizon.end.index()
        )?;
        for t in &m.tasks {
            let s = &t.spec;
            writeln!(
                w,
                "task,{},{},{},{},{},{},{},{}",
                s.id.job.0,
                s.id.index,
                s.limit,
                s.memory_limit,
                s.start.index(),
                s.end.index(),
                s.class.as_u8(),
                s.priority
            )?;
            for (i, u) in t.samples.iter().enumerate() {
                writeln!(
                    w,
                    "sample,{},{},{},{},{},{},{},{},{}",
                    s.id.job.0,
                    s.id.index,
                    s.start.index() + i as u64,
                    u.avg,
                    u.p50,
                    u.p90,
                    u.p95,
                    u.p99,
                    u.max
                )?;
            }
        }
        for (i, (&p, &a)) in m.true_peak.iter().zip(m.avg_usage.iter()).enumerate() {
            writeln!(w, "peak,{},{},{}", m.horizon.start.index() + i as u64, p, a)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// In-progress machine while parsing.
struct PartialMachine {
    machine: MachineId,
    capacity: f64,
    horizon: TickRange,
    tasks: Vec<(TaskSpec, Vec<UsageSample>)>,
    true_peak: Vec<f64>,
    avg_usage: Vec<f64>,
}

impl PartialMachine {
    fn finish(self) -> Result<MachineTrace, TraceError> {
        let tasks = self
            .tasks
            .into_iter()
            .map(|(spec, samples)| TaskTrace::new(spec, samples))
            .collect::<Result<Vec<_>, _>>()?;
        let m = MachineTrace {
            machine: self.machine,
            capacity: self.capacity,
            horizon: self.horizon,
            tasks,
            true_peak: self.true_peak,
            avg_usage: self.avg_usage,
        };
        m.validate()?;
        Ok(m)
    }
}

/// Reads machine traces written by [`write_machines`].
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a 1-based line number on malformed
/// input, or [`TraceError::Io`] on read failure.
pub fn read_machines<R: BufRead>(input: R) -> Result<Vec<MachineTrace>, TraceError> {
    let mut machines = Vec::new();
    let mut current: Option<PartialMachine> = None;

    for (line_idx, line) in input.lines().enumerate() {
        let line = line?;
        let lineno = line_idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: String| TraceError::Parse { line: lineno, what };
        let mut fields = line.split(',');
        let kind = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match kind {
            "machine" => {
                if let Some(m) = current.take() {
                    machines.push(m.finish()?);
                }
                let [id, cap, start, end] = rest[..] else {
                    return Err(err(format!(
                        "machine record needs 4 fields, got {}",
                        rest.len()
                    )));
                };
                current = Some(PartialMachine {
                    machine: MachineId(parse(id, "machine id", lineno)?),
                    capacity: parse(cap, "capacity", lineno)?,
                    horizon: TickRange::new(
                        Tick(parse(start, "horizon start", lineno)?),
                        Tick(parse(end, "horizon end", lineno)?),
                    ),
                    tasks: Vec::new(),
                    true_peak: Vec::new(),
                    avg_usage: Vec::new(),
                });
            }
            "task" => {
                let m = current
                    .as_mut()
                    .ok_or_else(|| err("task record before any machine record".into()))?;
                let [job, index, limit, mem, start, end, class, priority] = rest[..] else {
                    return Err(err(format!(
                        "task record needs 8 fields, got {}",
                        rest.len()
                    )));
                };
                let spec = TaskSpec {
                    id: TaskId::new(
                        JobId(parse(job, "job id", lineno)?),
                        parse(index, "task index", lineno)?,
                    ),
                    limit: parse(limit, "limit", lineno)?,
                    memory_limit: parse(mem, "memory limit", lineno)?,
                    start: Tick(parse(start, "start", lineno)?),
                    end: Tick(parse(end, "end", lineno)?),
                    class: SchedulingClass::from_u8(parse(class, "class", lineno)?)?,
                    priority: parse(priority, "priority", lineno)?,
                };
                m.tasks.push((spec, Vec::new()));
            }
            "sample" => {
                let m = current
                    .as_mut()
                    .ok_or_else(|| err("sample record before any machine record".into()))?;
                let [job, index, _tick, avg, p50, p90, p95, p99, max] = rest[..] else {
                    return Err(err(format!(
                        "sample record needs 9 fields, got {}",
                        rest.len()
                    )));
                };
                let id = TaskId::new(
                    JobId(parse(job, "job id", lineno)?),
                    parse(index, "task index", lineno)?,
                );
                let sample = UsageSample {
                    avg: parse(avg, "avg", lineno)?,
                    p50: parse(p50, "p50", lineno)?,
                    p90: parse(p90, "p90", lineno)?,
                    p95: parse(p95, "p95", lineno)?,
                    p99: parse(p99, "p99", lineno)?,
                    max: parse(max, "max", lineno)?,
                };
                // Samples follow their task record; look from the back.
                let slot = m
                    .tasks
                    .iter_mut()
                    .rev()
                    .find(|(spec, _)| spec.id == id)
                    .ok_or_else(|| err(format!("sample for unknown task {id}")))?;
                slot.1.push(sample);
            }
            "peak" => {
                let m = current
                    .as_mut()
                    .ok_or_else(|| err("peak record before any machine record".into()))?;
                let [_tick, peak, avg] = rest[..] else {
                    return Err(err(format!(
                        "peak record needs 3 fields, got {}",
                        rest.len()
                    )));
                };
                m.true_peak.push(parse(peak, "true peak", lineno)?);
                m.avg_usage.push(parse(avg, "avg usage", lineno)?);
            }
            other => {
                return Err(err(format!("unknown record kind '{other}'")));
            }
        }
    }
    if let Some(m) = current.take() {
        machines.push(m.finish()?);
    }
    Ok(machines)
}

/// Writes machines to a file path.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on failure to create or write the file.
pub fn save_machines(path: &std::path::Path, machines: &[MachineTrace]) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    write_machines(file, machines)
}

/// Reads machines from a file path.
///
/// # Errors
///
/// Returns [`TraceError::Io`] / [`TraceError::Parse`] as [`read_machines`].
pub fn load_machines(path: &std::path::Path) -> Result<Vec<MachineTrace>, TraceError> {
    let file = std::fs::File::open(path)?;
    read_machines(std::io::BufReader::new(file))
}

/// Parses one field, attaching the line number and field name on failure.
fn parse<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T, TraceError> {
    s.parse().map_err(|_| TraceError::Parse {
        line,
        what: format!("invalid {what}: '{s}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, CellPreset};
    use crate::gen::WorkloadGenerator;

    fn tiny_cell() -> Vec<MachineTrace> {
        let mut cfg = CellConfig::preset(CellPreset::A);
        cfg.machines = 2;
        cfg.duration_ticks = 48;
        WorkloadGenerator::new(cfg)
            .unwrap()
            .generate_cell()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cell = tiny_cell();
        let mut buf = Vec::new();
        write_machines(&mut buf, &cell).unwrap();
        let back = read_machines(buf.as_slice()).unwrap();
        assert_eq!(back.len(), cell.len());
        for (a, b) in cell.iter().zip(back.iter()) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.capacity, b.capacity);
            assert_eq!(a.horizon, b.horizon);
            assert_eq!(a.true_peak, b.true_peak);
            assert_eq!(a.avg_usage, b.avg_usage);
            assert_eq!(a.tasks.len(), b.tasks.len());
            for (x, y) in a.tasks.iter().zip(b.tasks.iter()) {
                assert_eq!(x.spec, y.spec);
                assert_eq!(x.samples, y.samples);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let cell = tiny_cell();
        let dir = std::env::temp_dir().join("oc-trace-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.csv");
        save_machines(&path, &cell).unwrap();
        let back = load_machines(&path).unwrap();
        assert_eq!(back.len(), cell.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_machines("bogus,1,2".as_bytes()).is_err());
        assert!(read_machines("task,1,2,0.5,0.1,0,4,2,200".as_bytes()).is_err());
        assert!(read_machines("machine,0,1.0".as_bytes()).is_err());
        let bad_number = "machine,0,abc,0,4";
        assert!(matches!(
            read_machines(bad_number.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let cell = tiny_cell();
        let mut buf = Vec::new();
        write_machines(&mut buf, &cell).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert_str(0, "\n# leading comment\n\n");
        let back = read_machines(text.as_bytes()).unwrap();
        assert_eq!(back.len(), cell.len());
    }

    #[test]
    fn sample_for_unknown_task_is_an_error() {
        let text = "machine,0,1.0,0,4\nsample,9,9,0,0.1,0.1,0.1,0.1,0.1,0.1";
        let err = read_machines(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown task"));
    }
}
