//! Per-machine traces: all tasks that ran on one machine plus ground truth.

use crate::error::TraceError;
use crate::ids::MachineId;
use crate::sample::{UsageMetric, UsageSample};
use crate::task::TaskTrace;
use crate::time::{Tick, TickRange};

/// Everything one machine saw over the simulated period.
///
/// This is the unit of work of the paper's simulator ("machines are
/// simulated independently"): the tasks placed on the machine with their
/// usage series, the machine's capacity, and — because our generator knows
/// the instantaneous series the summaries were derived from — the
/// ground-truth within-tick machine peak, which Borg records internally but
/// the public trace omits (Section 5.1.2).
#[derive(Debug, Clone)]
pub struct MachineTrace {
    /// Machine identity within its cell.
    pub machine: MachineId,
    /// Physical CPU capacity in normalized units (1.0 = whole machine).
    pub capacity: f64,
    /// Simulated period covered by `true_peak`.
    pub horizon: TickRange,
    /// Tasks placed on this machine, sorted by start tick.
    pub tasks: Vec<TaskTrace>,
    /// Ground truth: for each tick of `horizon`, the maximum over subsample
    /// instants of the *sum* of task usage (each task capped at its limit).
    pub true_peak: Vec<f64>,
    /// For each tick of `horizon`, the average total usage.
    pub avg_usage: Vec<f64>,
}

impl MachineTrace {
    /// Validates internal consistency (series lengths, task lifetimes inside
    /// the horizon, peaks at least as large as averages).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InconsistentTask`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), TraceError> {
        let n = self.horizon.len() as usize;
        if self.true_peak.len() != n || self.avg_usage.len() != n {
            return Err(TraceError::InconsistentTask {
                what: format!(
                    "machine {} series lengths ({}, {}) do not match horizon {}",
                    self.machine,
                    self.true_peak.len(),
                    self.avg_usage.len(),
                    n
                ),
            });
        }
        if !(self.capacity > 0.0) {
            return Err(TraceError::InconsistentTask {
                what: format!("machine {} has non-positive capacity", self.machine),
            });
        }
        for t in &self.tasks {
            if t.spec.start < self.horizon.start || t.spec.end > self.horizon.end {
                return Err(TraceError::InconsistentTask {
                    what: format!(
                        "task {} lifetime [{}, {}) escapes machine horizon",
                        t.spec.id, t.spec.start, t.spec.end
                    ),
                });
            }
        }
        for (i, (&p, &a)) in self.true_peak.iter().zip(self.avg_usage.iter()).enumerate() {
            if p + 1e-9 < a {
                return Err(TraceError::InconsistentTask {
                    what: format!(
                        "machine {} tick {i}: true peak {p} below average {a}",
                        self.machine
                    ),
                });
            }
        }
        Ok(())
    }

    /// Tasks alive at tick `t` (linear scan; machine task lists are small).
    pub fn tasks_at(&self, t: Tick) -> impl Iterator<Item = &TaskTrace> {
        self.tasks.iter().filter(move |task| task.spec.alive_at(t))
    }

    /// Sum of the limits of tasks alive at `t` — the no-overcommit
    /// "allocated" figure.
    pub fn total_limit_at(&self, t: Tick) -> f64 {
        self.tasks_at(t).map(|task| task.spec.limit).sum()
    }

    /// Sum over alive tasks of the chosen usage metric at `t`.
    pub fn total_usage_at(&self, t: Tick, metric: UsageMetric) -> f64 {
        self.tasks_at(t)
            .map(|task| {
                task.sample_at(t)
                    .map(|s| metric.of(s))
                    .unwrap_or(UsageSample::ZERO.max)
            })
            .sum()
    }

    /// Ground-truth within-tick machine peak at `t`, if `t` is in the
    /// horizon.
    pub fn true_peak_at(&self, t: Tick) -> Option<f64> {
        if !self.horizon.contains(t) {
            return None;
        }
        Some(self.true_peak[(t.index() - self.horizon.start.index()) as usize])
    }

    /// Number of tasks ever placed on this machine.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Maximum over the horizon of the ground-truth peak.
    pub fn lifetime_peak(&self) -> f64 {
        self.true_peak.iter().copied().fold(0.0, f64::max)
    }

    /// Mean machine utilization (average usage over capacity) across the
    /// horizon.
    pub fn mean_utilization(&self) -> f64 {
        if self.avg_usage.is_empty() {
            return 0.0;
        }
        self.avg_usage.iter().sum::<f64>() / self.avg_usage.len() as f64 / self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, TaskId};
    use crate::task::{SchedulingClass, TaskSpec};

    fn flat(v: f64) -> UsageSample {
        UsageSample {
            avg: v,
            p50: v,
            p90: v,
            p95: v,
            p99: v,
            max: v,
        }
    }

    fn task(job: u64, start: u64, end: u64, limit: f64, usage: f64) -> TaskTrace {
        let spec = TaskSpec {
            id: TaskId::new(JobId(job), 0),
            limit,
            memory_limit: 0.0,
            start: Tick(start),
            end: Tick(end),
            class: SchedulingClass::Class2,
            priority: 200,
        };
        let n = (end - start) as usize;
        TaskTrace::new(spec, vec![flat(usage); n]).unwrap()
    }

    fn machine() -> MachineTrace {
        MachineTrace {
            machine: MachineId(0),
            capacity: 1.0,
            horizon: TickRange::from_len(4),
            tasks: vec![task(1, 0, 4, 0.5, 0.2), task(2, 2, 4, 0.4, 0.1)],
            true_peak: vec![0.2, 0.2, 0.3, 0.3],
            avg_usage: vec![0.2, 0.2, 0.3, 0.3],
        }
    }

    #[test]
    fn valid_machine_passes() {
        machine().validate().unwrap();
    }

    #[test]
    fn length_mismatch_fails() {
        let mut m = machine();
        m.true_peak.pop();
        assert!(m.validate().is_err());
    }

    #[test]
    fn escaping_task_fails() {
        let mut m = machine();
        m.tasks.push(task(3, 2, 10, 0.1, 0.05));
        assert!(m.validate().is_err());
    }

    #[test]
    fn peak_below_average_fails() {
        let mut m = machine();
        m.true_peak[0] = 0.1; // Below avg_usage[0] = 0.2.
        assert!(m.validate().is_err());
    }

    #[test]
    fn aggregates() {
        let m = machine();
        assert_eq!(m.total_limit_at(Tick(0)), 0.5);
        assert_eq!(m.total_limit_at(Tick(3)), 0.9);
        assert!((m.total_usage_at(Tick(3), UsageMetric::Avg) - 0.3).abs() < 1e-12);
        assert_eq!(m.true_peak_at(Tick(2)), Some(0.3));
        assert_eq!(m.true_peak_at(Tick(9)), None);
        assert_eq!(m.task_count(), 2);
        assert_eq!(m.lifetime_peak(), 0.3);
        assert!((m.mean_utilization() - 0.25).abs() < 1e-12);
    }
}
