//! Deterministic per-task memory usage, derived from the CPU series.
//!
//! Trace v3 reports memory alongside CPU, and every task spec here already
//! carries a `memory_limit` drawn by the generator. Rather than storing a
//! second full [`crate::UsageSample`] series per task — which would double
//! trace memory and, worse, perturb the generator's RNG stream (breaking
//! the bit-exact goldens every downstream test pins) — the memory series
//! is a *pure function* of `(task spec, tick, CPU usage)`:
//!
//! * a per-task **resident floor** (heaps and caches do not drain when
//!   traffic does),
//! * a **CPU-coupled** component (serving more requests allocates more),
//!   which is what makes the generated CPU/memory series correlated,
//! * slow deterministic **drift** from hashing `(task seed, hour)`, so
//!   memory wanders on a much longer timescale than CPU noise.
//!
//! Zero RNG draws are consumed: the derivation uses the same
//! [`splitmix`]-hash technique as the generator's job-spike windows, so
//! every existing preset gains a correlated memory lane for free and all
//! CPU-lane goldens stay bit-identical.

use crate::gen::usage::splitmix;
use crate::task::TaskSpec;
use crate::time::Tick;

/// Parameters of the derived memory-usage model.
///
/// All components are expressed as fractions of the task's `memory_limit`;
/// the output is capped to the limit just as Borg's machine-level
/// enforcement caps CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Resident floor as a fraction of the memory limit.
    pub floor: f64,
    /// Weight of the CPU utilization fraction (usage / CPU limit) in the
    /// memory utilization — the CPU↔memory correlation knob.
    pub cpu_coupling: f64,
    /// Amplitude of the slow deterministic drift term.
    pub drift: f64,
}

/// Hours per drift window: the hashed drift term re-draws once per hour
/// of trace time (12 five-minute ticks).
const DRIFT_WINDOW_TICKS: u64 = 12;

impl Default for MemoryModel {
    /// The model used by every cell preset: ~35 % resident floor, about
    /// half of the CPU swing reflected into memory, ±8 % slow drift.
    fn default() -> MemoryModel {
        MemoryModel {
            floor: 0.35,
            cpu_coupling: 0.45,
            drift: 0.08,
        }
    }
}

/// Maps a hash to a uniform value in `[0, 1)`, same construction as the
/// generator's job-spike draw.
fn unit_hash(x: u64) -> f64 {
    (splitmix(x) >> 11) as f64 / (1u64 << 53) as f64
}

impl MemoryModel {
    /// Memory usage (in normalized machine-capacity units) of `spec` at
    /// tick `t`, given the task's CPU usage at that tick.
    ///
    /// Deterministic in its arguments — two calls always agree — and
    /// consumes no randomness, so deriving memory lanes cannot perturb
    /// generator streams or goldens. Returns `0.0` for tasks with no
    /// memory limit (e.g. synthetic scheduler placeholders).
    pub fn usage(&self, spec: &TaskSpec, t: Tick, cpu_usage: f64) -> f64 {
        self.usage_raw(
            spec.id.job.0,
            spec.id.index,
            spec.limit,
            spec.memory_limit,
            t,
            cpu_usage,
        )
    }

    /// [`usage`](MemoryModel::usage) without a [`TaskSpec`]: the model only
    /// reads task identity and limits, so callers that track tasks outside
    /// trace form (the live scheduler's machines) can derive the same
    /// series from parts.
    pub fn usage_raw(
        &self,
        job: u64,
        index: u32,
        limit: f64,
        memory_limit: f64,
        t: Tick,
        cpu_usage: f64,
    ) -> f64 {
        if !(memory_limit > 0.0) {
            return 0.0;
        }
        let cpu_util = if limit > 0.0 {
            (cpu_usage / limit).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let seed = splitmix(job ^ 0x4D45_4D5F_5553_4147) ^ u64::from(index);
        let window = t.index() / DRIFT_WINDOW_TICKS;
        let drift = (unit_hash(seed ^ splitmix(window)) - 0.5) * 2.0 * self.drift;
        let util = (self.floor + self.cpu_coupling * cpu_util + drift).clamp(0.0, 1.0);
        util * memory_limit
    }

    /// The worst-case memory usage the model can emit for `spec`
    /// (utilization saturated at 1): the task's memory limit.
    pub fn peak_bound(&self, spec: &TaskSpec) -> f64 {
        spec.memory_limit.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, TaskId};
    use crate::task::SchedulingClass;

    fn spec(job: u64, index: u32, limit: f64, mem_limit: f64) -> TaskSpec {
        TaskSpec {
            id: TaskId::new(JobId(job), index),
            limit,
            memory_limit: mem_limit,
            start: Tick(0),
            end: Tick(1000),
            class: SchedulingClass::Class2,
            priority: 200,
        }
    }

    #[test]
    fn deterministic_and_capped() {
        let m = MemoryModel::default();
        let s = spec(7, 2, 0.4, 0.1);
        for t in 0..500 {
            let a = m.usage(&s, Tick(t), 0.2);
            let b = m.usage(&s, Tick(t), 0.2);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!((0.0..=0.1 + 1e-12).contains(&a), "mem {a} out of range");
        }
    }

    #[test]
    fn correlated_with_cpu() {
        let m = MemoryModel::default();
        let s = spec(3, 0, 1.0, 0.2);
        let low = m.usage(&s, Tick(10), 0.1);
        let high = m.usage(&s, Tick(10), 0.9);
        assert!(high > low, "memory must rise with CPU: {low} vs {high}");
    }

    #[test]
    fn drift_varies_slowly() {
        let m = MemoryModel::default();
        let s = spec(11, 1, 1.0, 0.2);
        // Within one drift window memory at fixed CPU is constant...
        let a = m.usage(&s, Tick(0), 0.5);
        let b = m.usage(&s, Tick(DRIFT_WINDOW_TICKS - 1), 0.5);
        assert_eq!(a.to_bits(), b.to_bits());
        // ...and across many windows it actually moves.
        let later: Vec<u64> = (0..20)
            .map(|w| m.usage(&s, Tick(w * DRIFT_WINDOW_TICKS), 0.5).to_bits())
            .collect();
        assert!(later.iter().any(|&x| x != later[0]), "drift never moved");
    }

    #[test]
    fn zero_memory_limit_yields_zero() {
        let m = MemoryModel::default();
        let s = spec(1, 0, 0.5, 0.0);
        assert_eq!(m.usage(&s, Tick(3), 0.4), 0.0);
        assert_eq!(m.peak_bound(&s), 0.0);
    }
}
