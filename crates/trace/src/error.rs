//! Error type for trace construction and I/O.

use std::fmt;

/// Errors produced by trace construction, generation and I/O.
#[derive(Debug)]
pub enum TraceError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// A task's sample series does not match its lifetime.
    InconsistentTask {
        /// Description of the inconsistency.
        what: String,
    },
    /// Malformed CSV input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        what: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            TraceError::InconsistentTask { what } => write!(f, "inconsistent task: {what}"),
            TraceError::Parse { line, what } => write!(f, "parse error at line {line}: {what}"),
            TraceError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TraceError::InvalidConfig {
            what: "machines must be > 0".into(),
        };
        assert!(e.to_string().contains("machines must be > 0"));
        let e = TraceError::Parse {
            line: 7,
            what: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TraceError::from(inner);
        assert!(e.source().is_some());
    }
}
