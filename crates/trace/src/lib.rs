//! Cluster-trace substrate for the overcommit reproduction.
//!
//! The paper evaluates on the Google cluster trace v3 (tasks' 5-minute CPU
//! usage windows, limits, priorities, scheduling classes and machine
//! placements). That trace is ~100 GB of proprietary-adjacent BigQuery data,
//! so this crate replaces it with a *statistical workload generator* that
//! emits records of the same shape and with the same distributional features
//! the paper's results hinge on:
//!
//! * a large **usage-to-limit gap** (tasks run well below their limit;
//!   Autopilot-style relative slack ≈ 23 %),
//! * **statistical multiplexing** — tasks do not co-peak, so the sum of
//!   per-task peaks exceeds the machine-level peak (Figure 1 / Figure 6),
//! * **diurnal** serving load plus bursty noise and occasional spikes
//!   toward the limit ("a task that sometimes, e.g. 5 % of time, reaches
//!   its limit, but usually operates at much lower utilization"),
//! * **heavy-tailed runtimes** with strong per-cell heterogeneity
//!   (Figure 7(a): 75–98 % of tasks shorter than 24 h depending on cell),
//! * per-cell parameter presets for the trace cells `a..h` and five
//!   "production" cells used in Section 3.3.
//!
//! Everything is deterministic given a seed: machine `m` of cell `c` always
//! produces the same task series, which makes experiments, tests and benches
//! reproducible bit-for-bit.
//!
//! The central type is [`MachineTrace`]: every task that ever ran on one
//! machine, each with per-tick [`UsageSample`] summaries, plus the machine's
//! ground-truth within-tick peak series (information Borg has internally but
//! the public trace lacks — see Section 5.1.2 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cell;
pub mod csv;
pub mod error;
pub mod gen;
pub mod ids;
pub mod machine;
pub mod memory;
pub mod sample;
pub mod task;
pub mod time;

pub use analysis::CellProfile;
pub use cell::{CellConfig, CellPreset};
pub use error::TraceError;
pub use gen::WorkloadGenerator;
pub use ids::{CellId, JobId, MachineId, TaskId};
pub use machine::MachineTrace;
pub use memory::MemoryModel;
pub use sample::UsageSample;
pub use task::{SchedulingClass, TaskSpec, TaskTrace};
pub use time::{Tick, TickRange, SUBSAMPLES_PER_TICK, TICKS_PER_DAY, TICKS_PER_HOUR};
