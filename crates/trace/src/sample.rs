//! Per-tick usage summaries, mirroring the trace's within-window histogram.

use crate::error::TraceError;

/// Summary of one task's CPU usage within one 5-minute tick.
///
/// Trace v3 reports a distribution of instantaneous usage per window rather
/// than a single number; predictors and oracles pick which field of the
/// summary to consume (the paper uses the 90th percentile as a conservative
/// machine-peak estimator, Figure 6). All values are in normalized machine
/// capacity units and are already capped at the task's limit, as Borg's
/// machine-level enforcement would do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageSample {
    /// Mean usage over the window.
    pub avg: f64,
    /// Median instantaneous usage.
    pub p50: f64,
    /// 90th percentile instantaneous usage.
    pub p90: f64,
    /// 95th percentile instantaneous usage.
    pub p95: f64,
    /// 99th percentile instantaneous usage.
    pub p99: f64,
    /// Maximum instantaneous usage (the task-level within-window peak).
    pub max: f64,
}

/// Which field of a [`UsageSample`] a consumer reads.
///
/// The simulator's `metric` configuration (the artifact's "choose the metric
/// a user wants to use for predicting the peak resource usage").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UsageMetric {
    /// Window average.
    Avg,
    /// Median.
    P50,
    /// 90th percentile — the paper's default machine-peak estimator.
    #[default]
    P90,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Window maximum.
    Max,
}

impl UsageMetric {
    /// Reads the selected field from a sample.
    pub fn of(self, s: &UsageSample) -> f64 {
        match self {
            UsageMetric::Avg => s.avg,
            UsageMetric::P50 => s.p50,
            UsageMetric::P90 => s.p90,
            UsageMetric::P95 => s.p95,
            UsageMetric::P99 => s.p99,
            UsageMetric::Max => s.max,
        }
    }

    /// All metric variants, for sweeps.
    pub fn all() -> [UsageMetric; 6] {
        [
            UsageMetric::Avg,
            UsageMetric::P50,
            UsageMetric::P90,
            UsageMetric::P95,
            UsageMetric::P99,
            UsageMetric::Max,
        ]
    }

    /// A short stable name, used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            UsageMetric::Avg => "avg",
            UsageMetric::P50 => "p50",
            UsageMetric::P90 => "p90",
            UsageMetric::P95 => "p95",
            UsageMetric::P99 => "p99",
            UsageMetric::Max => "max",
        }
    }

    /// Reads an arbitrary percentile `p in [0, 100]` by interpolating the
    /// stored summary points (0→min treated as p50 floor, 50, 90, 95, 99,
    /// 100→max). The RC-like predictor sweeps percentiles that may fall
    /// between stored points.
    pub fn interpolate(s: &UsageSample, p: f64) -> f64 {
        // Piecewise-linear through the stored quantiles. Below the median we
        // only know avg/p50; clamp to p50 which is conservative enough for
        // the sweeps the paper runs (80..=100).
        let pts = [
            (50.0, s.p50),
            (90.0, s.p90),
            (95.0, s.p95),
            (99.0, s.p99),
            (100.0, s.max),
        ];
        if p <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if p <= x1 {
                let f = (p - x0) / (x1 - x0);
                return y0 + (y1 - y0) * f;
            }
        }
        s.max
    }
}

impl UsageSample {
    /// A zero sample (task absent or idle).
    pub const ZERO: UsageSample = UsageSample {
        avg: 0.0,
        p50: 0.0,
        p90: 0.0,
        p95: 0.0,
        p99: 0.0,
        max: 0.0,
    };

    /// Summarizes a window of instantaneous usage points.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InconsistentTask`] if `points` is empty or
    /// contains a non-finite value.
    pub fn from_subsamples(points: &[f64]) -> Result<UsageSample, TraceError> {
        if points.is_empty() {
            return Err(TraceError::InconsistentTask {
                what: "usage window has no subsamples".into(),
            });
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(TraceError::InconsistentTask {
                what: "usage window contains a non-finite subsample".into(),
            });
        }
        let mut sorted = points.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite checked above"));
        let pct = |p: f64| -> f64 {
            oc_stats::percentile_of_sorted(&sorted, p).expect("non-empty, valid percentile")
        };
        Ok(UsageSample {
            avg: points.iter().sum::<f64>() / points.len() as f64,
            p50: pct(50.0),
            p90: pct(90.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Whether the summary is internally consistent
    /// (`0 <= avg <= max`, percentiles monotone).
    pub fn is_consistent(&self) -> bool {
        0.0 <= self.avg
            && self.avg <= self.max
            && self.p50 <= self.p90
            && self.p90 <= self.p95
            && self.p95 <= self.p99
            && self.p99 <= self.max
            && self.p50 >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_window() {
        let pts: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = UsageSample::from_subsamples(&pts).unwrap();
        assert_eq!(s.max, 100.0);
        assert_eq!(s.avg, 50.5);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!(s.is_consistent());
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(UsageSample::from_subsamples(&[]).is_err());
        assert!(UsageSample::from_subsamples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn metric_selection() {
        let s = UsageSample {
            avg: 1.0,
            p50: 2.0,
            p90: 3.0,
            p95: 4.0,
            p99: 5.0,
            max: 6.0,
        };
        assert_eq!(UsageMetric::Avg.of(&s), 1.0);
        assert_eq!(UsageMetric::P90.of(&s), 3.0);
        assert_eq!(UsageMetric::Max.of(&s), 6.0);
        assert_eq!(UsageMetric::default(), UsageMetric::P90);
    }

    #[test]
    fn interpolation_hits_anchors_and_midpoints() {
        let s = UsageSample {
            avg: 0.0,
            p50: 10.0,
            p90: 20.0,
            p95: 30.0,
            p99: 40.0,
            max: 50.0,
        };
        assert_eq!(UsageMetric::interpolate(&s, 50.0), 10.0);
        assert_eq!(UsageMetric::interpolate(&s, 90.0), 20.0);
        assert_eq!(UsageMetric::interpolate(&s, 100.0), 50.0);
        assert!((UsageMetric::interpolate(&s, 70.0) - 15.0).abs() < 1e-12);
        assert!((UsageMetric::interpolate(&s, 97.0) - 35.0).abs() < 1e-12);
        // Below the median clamps to p50.
        assert_eq!(UsageMetric::interpolate(&s, 10.0), 10.0);
    }

    #[test]
    fn zero_sample_is_consistent() {
        assert!(UsageSample::ZERO.is_consistent());
    }

    #[test]
    fn metric_names_unique() {
        let names: std::collections::HashSet<_> =
            UsageMetric::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
