//! Cell configurations and per-cell presets.
//!
//! A *cell* is a cluster of machines managed by one scheduler. The paper
//! uses two groups: the public trace's cells `a..h` (Section 5) and five
//! anonymous production cells (Section 3.3 / Table 1). Each preset below
//! encodes the qualitative characteristics the paper reports for that cell
//! (task runtime mix, utilization level, usage variance, size), scaled down
//! by roughly 400× in machine count so that whole experiments run on one
//! workstation — a scale explicitly anticipated by the artifact appendix.

use crate::error::TraceError;
use crate::ids::CellId;
use crate::time::{TICKS_PER_DAY, TICKS_PER_HOUR};

/// Task runtime model: a two-component lognormal mixture with a hard cap.
///
/// `short_frac` of tasks come from the "short" component; the remainder
/// from the heavy "long" component. This reproduces the Figure 7(a) shape —
/// most tasks finish within hours, a cell-dependent tail runs for days.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeModel {
    /// Fraction of tasks drawn from the short component.
    pub short_frac: f64,
    /// Median runtime of the short component, hours.
    pub short_median_hours: f64,
    /// Log-space sigma of the short component.
    pub short_sigma: f64,
    /// Median runtime of the long component, hours.
    pub long_median_hours: f64,
    /// Log-space sigma of the long component.
    pub long_sigma: f64,
    /// Hard cap on runtime, hours (tasks also end at the trace horizon).
    pub max_hours: f64,
}

/// Task limit model: lognormal, clamped to `[min, max]`, in normalized
/// machine-capacity units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitModel {
    /// Log-space mean of the CPU limit.
    pub log_mean: f64,
    /// Log-space sigma of the CPU limit.
    pub log_sigma: f64,
    /// Smallest allowed limit.
    pub min: f64,
    /// Largest allowed limit.
    pub max: f64,
}

/// Per-task usage process parameters.
///
/// Each task's instantaneous usage is
/// `limit · clamp(base + diurnal + OU + spike, floor, 1)` where `base` is a
/// per-task Beta draw, `diurnal` a sinusoid with per-job phase, `OU` an
/// Ornstein-Uhlenbeck noise term and `spike` an occasional excursion toward
/// the limit. Subsample jitter within a tick provides the within-window
/// distribution that trace v3 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageModel {
    /// Beta `alpha` for the per-task mean utilization fraction.
    pub util_alpha: f64,
    /// Beta `beta` for the per-task mean utilization fraction.
    pub util_beta: f64,
    /// Scale of the mean utilization: base = lo + draw · (hi − lo). The
    /// draw is made once per *job* — sibling tasks behind one load
    /// balancer run at similar utilization, and because siblings cluster
    /// on machines this is the main source of machine-level heterogeneity
    /// (some machines host hot mixes, most host cool ones).
    pub util_range: (f64, f64),
    /// σ of the per-task jitter around the job's base utilization.
    pub util_task_jitter: f64,
    /// Diurnal amplitude range for serving tasks (uniform per task).
    pub diurnal_amp: (f64, f64),
    /// σ of per-job phase jitter around the cell's diurnal phase, in day
    /// fractions. End-user traffic drives every serving job of a cell
    /// roughly in phase; this jitter is what keeps jobs from being
    /// perfectly synchronized.
    pub diurnal_phase_jitter: f64,
    /// Multiplier on the diurnal amplitude for batch (class 0–1) tasks,
    /// which do not follow end-user traffic.
    pub batch_diurnal_scale: f64,
    /// Per-window probability that a *job-level* spike starts: all sibling
    /// tasks of the job surge together (a load balancer shifting traffic),
    /// which is what produces machine-level co-peaks.
    pub job_spike_prob: f64,
    /// Usage level during a job spike, as a fraction of limit.
    pub job_spike_level: f64,
    /// Length of a job-spike window in ticks.
    pub job_spike_ticks: u64,
    /// OU mean-reversion rate per tick.
    pub ou_theta: f64,
    /// OU stationary std range (uniform per task), as a fraction of limit.
    pub ou_sigma: (f64, f64),
    /// Per-tick probability a spike starts.
    pub spike_prob: f64,
    /// Mean spike duration in ticks (geometric).
    pub spike_mean_ticks: f64,
    /// Usage level during a spike, as a fraction of limit.
    pub spike_level: f64,
    /// Weight of the shared per-job factor in `[0, 1]` (pooling-effect
    /// knob: higher couples tasks of one job more tightly).
    pub job_coupling: f64,
    /// Within-tick subsample jitter std, as a fraction of limit.
    pub subsample_sigma: f64,
    /// Ramp-up ticks over which a fresh task reaches its base usage.
    pub warmup_ticks: u64,
}

/// Full configuration of one simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Cell name.
    pub id: CellId,
    /// Master seed; every machine derives its own stream from this.
    pub seed: u64,
    /// Base phase of the cell's diurnal load, in day fractions. Serving
    /// jobs draw their phase near this value (see
    /// [`UsageModel::diurnal_phase_jitter`]).
    pub diurnal_phase: f64,
    /// Number of machines.
    pub machines: usize,
    /// Per-machine CPU capacity in normalized units.
    pub capacity: f64,
    /// Simulated length in ticks.
    pub duration_ticks: u64,
    /// Per-machine target of `Σ limits / capacity`, drawn uniformly.
    pub target_limit_ratio: (f64, f64),
    /// Base per-tick probability of admitting a replacement task when the
    /// machine is below its target.
    pub refill_prob: f64,
    /// Diurnal amplitude of the admission probability in `[0, 1)`.
    pub arrival_diurnal_amp: f64,
    /// Maximum tasks admitted to one machine in one tick.
    pub max_arrivals_per_tick: u32,
    /// Runtime distribution.
    pub runtime: RuntimeModel,
    /// Limit distribution.
    pub limits: LimitModel,
    /// Usage process parameters.
    pub usage: UsageModel,
    /// Fraction of tasks in latency-sensitive classes 2–3.
    pub serving_fraction: f64,
    /// Tasks per job range (uniform, inclusive).
    pub tasks_per_job: (u32, u32),
}

impl CellConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), TraceError> {
        let fail = |what: &str| {
            Err(TraceError::InvalidConfig {
                what: format!("cell {}: {what}", self.id),
            })
        };
        if self.machines == 0 {
            return fail("machines must be > 0");
        }
        if !(self.capacity > 0.0) {
            return fail("capacity must be > 0");
        }
        if self.duration_ticks == 0 {
            return fail("duration must be > 0 ticks");
        }
        if self.target_limit_ratio.0 > self.target_limit_ratio.1 || self.target_limit_ratio.0 <= 0.0
        {
            return fail("target limit ratio range must be positive and ordered");
        }
        if !(0.0..=1.0).contains(&self.refill_prob) {
            return fail("refill probability must be in [0, 1]");
        }
        if !(0.0..1.0).contains(&self.arrival_diurnal_amp) {
            return fail("arrival diurnal amplitude must be in [0, 1)");
        }
        if self.max_arrivals_per_tick == 0 {
            return fail("max arrivals per tick must be > 0");
        }
        if !(0.0..=1.0).contains(&self.runtime.short_frac) {
            return fail("runtime short fraction must be in [0, 1]");
        }
        if self.limits.min <= 0.0 || self.limits.min > self.limits.max {
            return fail("limit bounds must satisfy 0 < min <= max");
        }
        if self.limits.max > self.capacity {
            return fail("limit max must not exceed machine capacity");
        }
        if !(0.0..=1.0).contains(&self.serving_fraction) {
            return fail("serving fraction must be in [0, 1]");
        }
        if self.tasks_per_job.0 == 0 || self.tasks_per_job.0 > self.tasks_per_job.1 {
            return fail("tasks per job range must be positive and ordered");
        }
        let u = &self.usage;
        if u.util_alpha <= 0.0 || u.util_beta <= 0.0 {
            return fail("utilization Beta parameters must be positive");
        }
        if !(0.0 < u.util_range.0 && u.util_range.0 <= u.util_range.1 && u.util_range.1 < 1.0) {
            return fail("utilization range must satisfy 0 < lo <= hi < 1");
        }
        if u.util_task_jitter < 0.0 {
            return fail("per-task utilization jitter must be non-negative");
        }
        if !(0.0..=1.0).contains(&u.job_coupling) {
            return fail("job coupling must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&u.spike_prob) {
            return fail("spike probability must be in [0, 1]");
        }
        if u.spike_level <= 0.0 || u.spike_level > 1.0 {
            return fail("spike level must be in (0, 1]");
        }
        if !(0.0..=1.0).contains(&u.job_spike_prob) {
            return fail("job spike probability must be in [0, 1]");
        }
        if u.job_spike_level <= 0.0 || u.job_spike_level > 1.0 {
            return fail("job spike level must be in (0, 1]");
        }
        if u.job_spike_ticks == 0 {
            return fail("job spike window must be > 0 ticks");
        }
        if u.diurnal_phase_jitter < 0.0 {
            return fail("diurnal phase jitter must be non-negative");
        }
        if !(0.0..=1.0).contains(&u.batch_diurnal_scale) {
            return fail("batch diurnal scale must be in [0, 1]");
        }
        Ok(())
    }

    /// The baseline preset every cell preset is derived from.
    fn base(id: &str, seed: u64, machines: usize, duration_ticks: u64) -> CellConfig {
        CellConfig {
            id: CellId::new(id),
            seed,
            diurnal_phase: 0.25,
            machines,
            capacity: 1.0,
            duration_ticks,
            target_limit_ratio: (0.85, 1.10),
            refill_prob: 0.55,
            arrival_diurnal_amp: 0.35,
            max_arrivals_per_tick: 3,
            runtime: RuntimeModel {
                short_frac: 0.80,
                short_median_hours: 2.0,
                short_sigma: 1.0,
                long_median_hours: 30.0,
                long_sigma: 0.8,
                max_hours: 7.0 * 24.0,
            },
            limits: LimitModel {
                log_mean: (0.06f64).ln(),
                log_sigma: 0.7,
                min: 0.01,
                max: 0.35,
            },
            usage: UsageModel {
                util_alpha: 1.8,
                util_beta: 2.9,
                util_range: (0.15, 0.85),
                util_task_jitter: 0.04,
                diurnal_amp: (0.10, 0.35),
                diurnal_phase_jitter: 0.03,
                batch_diurnal_scale: 0.3,
                ou_theta: 0.15,
                ou_sigma: (0.03, 0.10),
                spike_prob: 0.003,
                spike_mean_ticks: 3.0,
                spike_level: 1.0,
                job_spike_prob: 0.01,
                job_spike_level: 0.95,
                job_spike_ticks: 12,
                job_coupling: 0.35,
                subsample_sigma: 0.04,
                warmup_ticks: 6,
            },
            serving_fraction: 0.75,
            tasks_per_job: (2, 16),
        }
    }

    /// Builds the preset for one of the paper's cells.
    ///
    /// Machine counts are scaled down ≈400× from the paper's; each preset
    /// perturbs the baseline along the axes the paper highlights for that
    /// cell.
    pub fn preset(which: CellPreset) -> CellConfig {
        let week = 7 * TICKS_PER_DAY;
        let month = 30 * TICKS_PER_DAY;
        match which {
            // Trace cells (Section 5). Durations default to one week, the
            // granularity of the paper's per-week evaluation.
            CellPreset::A => {
                // The workhorse cell for most figures: large, mixed.
                CellConfig::base("a", 0xA0001, 100, week)
            }
            CellPreset::B => {
                // Lowest per-machine utilization variance (Fig. 11 text):
                // calm usage, weak diurnal swings.
                let mut c = CellConfig::base("b", 0xB0002, 40, week);
                c.usage.ou_sigma = (0.01, 0.03);
                c.usage.diurnal_amp = (0.02, 0.06);
                c.usage.spike_prob = 0.001;
                c
            }
            CellPreset::C => {
                // 98 % of tasks shorter than 24 h (Fig. 7a).
                let mut c = CellConfig::base("c", 0xC0003, 40, week);
                c.runtime.short_frac = 0.92;
                c.runtime.short_median_hours = 1.0;
                c.runtime.long_median_hours = 12.0;
                c.runtime.long_sigma = 0.6;
                c
            }
            CellPreset::D => {
                let mut c = CellConfig::base("d", 0xD0004, 40, week);
                c.runtime.short_frac = 0.85;
                c.usage.util_range = (0.20, 0.82);
                c
            }
            CellPreset::E => {
                let mut c = CellConfig::base("e", 0xE0005, 30, week);
                c.usage.diurnal_amp = (0.10, 0.25);
                c
            }
            CellPreset::F => {
                let mut c = CellConfig::base("f", 0xF0006, 35, week);
                c.target_limit_ratio = (0.90, 1.15);
                c
            }
            CellPreset::G => {
                // Long-running tail: only ~75 % of tasks under 24 h.
                let mut c = CellConfig::base("g", 0x70007, 35, week);
                c.runtime.short_frac = 0.55;
                c.runtime.short_median_hours = 4.0;
                c.runtime.long_median_hours = 48.0;
                c
            }
            CellPreset::H => {
                let mut c = CellConfig::base("h", 0x80008, 30, week);
                c.usage.ou_sigma = (0.05, 0.13);
                c.usage.spike_prob = 0.005;
                c
            }
            // Production cells (Section 3.3, Table 1), one simulated month.
            CellPreset::Prod1 => {
                // Largest cell, low utilization (Fig. 3c), middling QoS.
                let mut c = CellConfig::base("prod1", 0x9101, 100, month);
                c.runtime.short_frac = 0.55;
                c.runtime.long_median_hours = 72.0;
                c.runtime.max_hours = 30.0 * 24.0;
                c.target_limit_ratio = (0.80, 1.05);
                c.usage.util_range = (0.12, 0.78);
                c.usage.diurnal_amp = (0.15, 0.40);
                c.usage.job_spike_prob = 0.03;
                c.usage.job_spike_level = 0.97;
                c
            }
            CellPreset::Prod2 => {
                // High utilization, best QoS: calm usage.
                let mut c = CellConfig::base("prod2", 0x9102, 28, month);
                c.runtime.short_frac = 0.60;
                c.runtime.long_median_hours = 72.0;
                c.runtime.max_hours = 30.0 * 24.0;
                c.target_limit_ratio = (1.00, 1.20);
                c.usage.util_range = (0.38, 0.90);
                c.usage.ou_sigma = (0.02, 0.05);
                c.usage.spike_prob = 0.002;
                c.usage.diurnal_amp = (0.05, 0.15);
                c.usage.job_spike_prob = 0.005;
                c
            }
            CellPreset::Prod3 => {
                let mut c = CellConfig::base("prod3", 0x9103, 26, month);
                c.runtime.short_frac = 0.60;
                c.runtime.long_median_hours = 72.0;
                c.runtime.max_hours = 30.0 * 24.0;
                c.target_limit_ratio = (1.00, 1.20);
                c.usage.util_range = (0.38, 0.90);
                c.usage.ou_sigma = (0.02, 0.06);
                c.usage.spike_prob = 0.002;
                c.usage.diurnal_amp = (0.05, 0.15);
                c.usage.job_spike_prob = 0.005;
                c
            }
            CellPreset::Prod4 => {
                // Many short tasks (81 M/month in the paper), higher
                // utilization than prod1 but noisier.
                let mut c = CellConfig::base("prod4", 0x9104, 28, month);
                c.runtime.short_frac = 0.92;
                c.runtime.short_median_hours = 1.5;
                c.runtime.long_median_hours = 48.0;
                c.target_limit_ratio = (0.95, 1.20);
                c.usage.util_range = (0.28, 0.87);
                c.usage.ou_sigma = (0.05, 0.12);
                c.usage.job_spike_prob = 0.04;
                c
            }
            CellPreset::Prod5 => {
                // Smallest and noisiest: worst violation rate and QoS.
                let mut c = CellConfig::base("prod5", 0x9105, 10, month);
                c.runtime.short_frac = 0.50;
                c.runtime.long_median_hours = 96.0;
                c.runtime.max_hours = 30.0 * 24.0;
                c.usage.util_range = (0.32, 0.90);
                c.usage.ou_sigma = (0.08, 0.16);
                c.usage.spike_prob = 0.008;
                c.usage.job_spike_prob = 0.04;
                c.target_limit_ratio = (1.00, 1.30);
                c
            }
        }
    }

    /// All eight trace-cell presets `a..h`, in order.
    pub fn trace_cells() -> Vec<CellConfig> {
        use CellPreset::*;
        [A, B, C, D, E, F, G, H]
            .into_iter()
            .map(CellConfig::preset)
            .collect()
    }

    /// All five production-cell presets, in order.
    pub fn production_cells() -> Vec<CellConfig> {
        use CellPreset::*;
        [Prod1, Prod2, Prod3, Prod4, Prod5]
            .into_iter()
            .map(CellConfig::preset)
            .collect()
    }

    /// Returns a copy simulating `weeks` weeks instead of the preset length.
    pub fn with_weeks(mut self, weeks: u64) -> CellConfig {
        self.duration_ticks = weeks * 7 * TICKS_PER_DAY;
        self
    }

    /// Returns a copy with a different machine count.
    pub fn with_machines(mut self, machines: usize) -> CellConfig {
        self.machines = machines;
        self
    }

    /// Returns a copy with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> CellConfig {
        self.seed = seed;
        self
    }

    /// Duration in hours.
    pub fn duration_hours(&self) -> f64 {
        self.duration_ticks as f64 / TICKS_PER_HOUR as f64
    }
}

/// The named cell presets from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellPreset {
    /// Trace cell `a` — the default evaluation cell.
    A,
    /// Trace cell `b` — lowest usage variance.
    B,
    /// Trace cell `c` — almost entirely short tasks.
    C,
    /// Trace cell `d`.
    D,
    /// Trace cell `e`.
    E,
    /// Trace cell `f`.
    F,
    /// Trace cell `g` — heaviest long-task tail.
    G,
    /// Trace cell `h`.
    H,
    /// Production cell 1 (largest, lowest utilization).
    Prod1,
    /// Production cell 2 (high utilization, calm).
    Prod2,
    /// Production cell 3 (high utilization, calm).
    Prod3,
    /// Production cell 4 (many short tasks).
    Prod4,
    /// Production cell 5 (small, noisy).
    Prod5,
}

impl CellPreset {
    /// Parses a preset name (`"a"`..`"h"`, `"prod1"`..`"prod5"`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] for unknown names.
    pub fn from_name(name: &str) -> Result<CellPreset, TraceError> {
        use CellPreset::*;
        Ok(match name {
            "a" => A,
            "b" => B,
            "c" => C,
            "d" => D,
            "e" => E,
            "f" => F,
            "g" => G,
            "h" => H,
            "prod1" => Prod1,
            "prod2" => Prod2,
            "prod3" => Prod3,
            "prod4" => Prod4,
            "prod5" => Prod5,
            other => {
                return Err(TraceError::InvalidConfig {
                    what: format!("unknown cell preset '{other}'"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for c in CellConfig::trace_cells()
            .into_iter()
            .chain(CellConfig::production_cells())
        {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.id));
        }
    }

    #[test]
    fn preset_names_roundtrip() {
        for name in ["a", "b", "c", "d", "e", "f", "g", "h", "prod1", "prod5"] {
            let p = CellPreset::from_name(name).unwrap();
            assert_eq!(CellConfig::preset(p).id.name(), name);
        }
        assert!(CellPreset::from_name("zzz").is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = CellConfig::preset(CellPreset::A);
        c.machines = 0;
        assert!(c.validate().is_err());

        let mut c = CellConfig::preset(CellPreset::A);
        c.limits.max = 2.0; // Above capacity.
        assert!(c.validate().is_err());

        let mut c = CellConfig::preset(CellPreset::A);
        c.usage.util_range = (0.9, 0.5);
        assert!(c.validate().is_err());

        let mut c = CellConfig::preset(CellPreset::A);
        c.refill_prob = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_modify_copies() {
        let c = CellConfig::preset(CellPreset::A)
            .with_weeks(4)
            .with_machines(7)
            .with_seed(99);
        assert_eq!(c.duration_ticks, 4 * 7 * TICKS_PER_DAY);
        assert_eq!(c.machines, 7);
        assert_eq!(c.seed, 99);
        assert!((c.duration_hours() - 4.0 * 7.0 * 24.0).abs() < 1e-9);
    }

    #[test]
    fn cell_heterogeneity_is_encoded() {
        let c = CellConfig::preset(CellPreset::C);
        let g = CellConfig::preset(CellPreset::G);
        assert!(c.runtime.short_frac > g.runtime.short_frac);
        let b = CellConfig::preset(CellPreset::B);
        let a = CellConfig::preset(CellPreset::A);
        assert!(b.usage.ou_sigma.1 < a.usage.ou_sigma.1);
    }
}
