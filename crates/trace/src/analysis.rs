//! Workload characterization.
//!
//! The substitution this crate makes — a statistical generator in place of
//! the 100 GB public trace — stands or falls on distributional properties.
//! This module computes the characterization a user needs to check that
//! claim against the real trace (or against their own workload): size
//! inventory, utilization and slack distributions, job structure, diurnal
//! strength, and the temporal autocorrelation of machine load.

use crate::ids::JobId;
use crate::machine::MachineTrace;
use crate::sample::UsageMetric;
use crate::time::{Tick, TICKS_PER_DAY};
use std::collections::BTreeMap;

/// Distribution summary of a cell's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CellProfile {
    /// Machines in the cell.
    pub machines: usize,
    /// Tasks across all machines.
    pub tasks: usize,
    /// Distinct jobs.
    pub jobs: usize,
    /// Mean tasks per job.
    pub tasks_per_job: f64,
    /// Mean task runtime in hours.
    pub mean_runtime_hours: f64,
    /// Fraction of tasks shorter than 24 h.
    pub frac_under_24h: f64,
    /// Mean of per-task mean usage-to-limit ratios (1 − relative slack).
    pub mean_usage_to_limit: f64,
    /// Mean machine utilization (usage / capacity).
    pub mean_utilization: f64,
    /// Mean over machines of `Σ limits / capacity` at the midpoint tick.
    pub mean_limit_ratio: f64,
    /// Strength of the daily cycle in cell-level usage, in `[0, 1]`:
    /// the lag-one-day autocorrelation of the aggregate usage series.
    pub diurnal_strength: f64,
    /// Lag-1h autocorrelation of machine-level usage (burstiness memory).
    pub hourly_autocorrelation: f64,
}

/// Computes the profile of a set of machines (one cell).
///
/// Returns `None` for an empty cell or an empty horizon.
pub fn profile(machines: &[MachineTrace]) -> Option<CellProfile> {
    let first = machines.first()?;
    let n_ticks = first.horizon.len() as usize;
    if n_ticks == 0 {
        return None;
    }

    let mut tasks = 0usize;
    let mut jobs: BTreeMap<JobId, u32> = BTreeMap::new();
    let mut runtime_sum = 0.0;
    let mut under_24 = 0usize;
    let mut ratio_sum = 0.0;
    for m in machines {
        for t in &m.tasks {
            tasks += 1;
            *jobs.entry(t.spec.id.job).or_insert(0) += 1;
            let hours = t.spec.runtime_hours();
            runtime_sum += hours;
            if hours < 24.0 {
                under_24 += 1;
            }
            ratio_sum += t.mean_usage() / t.spec.limit;
        }
    }
    if tasks == 0 {
        return None;
    }

    // Aggregate cell usage per tick (for the diurnal strength) and mean
    // machine utilization.
    let mut cell_usage = vec![0.0f64; n_ticks];
    let mut capacity = 0.0;
    for m in machines {
        capacity += m.capacity;
        for (i, &u) in m.avg_usage.iter().enumerate() {
            cell_usage[i] += u;
        }
    }
    let mean_utilization = cell_usage.iter().sum::<f64>() / n_ticks as f64 / capacity;

    let mid = Tick((n_ticks / 2) as u64);
    let mean_limit_ratio = machines
        .iter()
        .map(|m| m.total_limit_at(mid) / m.capacity)
        .sum::<f64>()
        / machines.len() as f64;

    let diurnal_strength = autocorrelation(&cell_usage, TICKS_PER_DAY as usize)
        .unwrap_or(0.0)
        .max(0.0);
    // Mean over machines of the lag-1h autocorrelation.
    let mut hour_ac = 0.0;
    let mut hour_n = 0usize;
    for m in machines {
        if let Some(ac) = autocorrelation(&m.avg_usage, 12) {
            hour_ac += ac;
            hour_n += 1;
        }
    }

    Some(CellProfile {
        machines: machines.len(),
        tasks,
        jobs: jobs.len(),
        tasks_per_job: tasks as f64 / jobs.len().max(1) as f64,
        mean_runtime_hours: runtime_sum / tasks as f64,
        frac_under_24h: under_24 as f64 / tasks as f64,
        mean_usage_to_limit: ratio_sum / tasks as f64,
        mean_utilization,
        mean_limit_ratio,
        diurnal_strength,
        hourly_autocorrelation: if hour_n > 0 {
            hour_ac / hour_n as f64
        } else {
            0.0
        },
    })
}

/// Sample autocorrelation of `series` at `lag`; `None` when the series is
/// too short or has no variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || series.len() <= lag + 1 {
        return None;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    if var <= 0.0 {
        return None;
    }
    let cov: f64 = series
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    Some(cov / var)
}

/// The pooling-effect ratio of one machine: Σ per-task lifetime peaks over
/// the machine's lifetime peak (by the chosen metric). Larger means more
/// statistical multiplexing headroom.
pub fn pooling_ratio(machine: &MachineTrace, metric: UsageMetric) -> f64 {
    let task_sum: f64 = machine
        .tasks
        .iter()
        .map(|t| t.samples.iter().map(|s| metric.of(s)).fold(0.0, f64::max))
        .sum();
    let mut machine_peak = 0.0f64;
    for t in machine.horizon.iter() {
        machine_peak = machine_peak.max(machine.total_usage_at(t, metric));
    }
    if machine_peak > 0.0 {
        task_sum / machine_peak
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, CellPreset};
    use crate::gen::WorkloadGenerator;

    fn small_cell() -> Vec<MachineTrace> {
        let mut cfg = CellConfig::preset(CellPreset::A);
        cfg.machines = 4;
        cfg.duration_ticks = 3 * TICKS_PER_DAY;
        WorkloadGenerator::new(cfg)
            .unwrap()
            .generate_cell()
            .unwrap()
    }

    #[test]
    fn profile_matches_design_targets() {
        let machines = small_cell();
        let p = profile(&machines).unwrap();
        assert_eq!(p.machines, 4);
        assert!(p.tasks > 50);
        assert!(p.jobs > 5);
        assert!(p.tasks_per_job > 1.0);
        // The usage-to-limit gap the paper's opportunity rests on.
        assert!(
            (0.25..0.80).contains(&p.mean_usage_to_limit),
            "usage/limit {}",
            p.mean_usage_to_limit
        );
        // Machines are allocated near their target ratio.
        assert!(
            (0.75..1.25).contains(&p.mean_limit_ratio),
            "limit ratio {}",
            p.mean_limit_ratio
        );
        // Serving workloads have visible daily structure and short-term
        // memory.
        assert!(p.diurnal_strength > 0.1, "diurnal {}", p.diurnal_strength);
        assert!(
            p.hourly_autocorrelation > 0.3,
            "hourly ac {}",
            p.hourly_autocorrelation
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(profile(&[]).is_none());
    }

    #[test]
    fn autocorrelation_of_sine_and_noise() {
        let sine: Vec<f64> = (0..2000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 288.0).sin())
            .collect();
        // Perfectly periodic: lag-288 autocorrelation near 1 (the
        // standard biased ACF estimator shrinks by (n − lag)/n ≈ 0.86).
        assert!(autocorrelation(&sine, 288).unwrap() > 0.8);
        // Alternating series: lag-1 autocorrelation near −1.
        let alt: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1).unwrap() < -0.9);
        // Degenerate cases.
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_none()); // No variance.
        assert!(autocorrelation(&[1.0], 5).is_none()); // Too short.
        assert!(autocorrelation(&[1.0, 2.0], 0).is_none()); // Zero lag.
    }

    #[test]
    fn pooling_ratio_exceeds_one_on_generated_machines() {
        let machines = small_cell();
        for m in &machines {
            let r = pooling_ratio(m, UsageMetric::P90);
            assert!(r > 1.0, "machine {}: pooling ratio {r}", m.machine);
        }
    }
}
