//! Random-variate samplers built on top of a uniform RNG.
//!
//! The workspace deliberately avoids `rand_distr`, so the handful of
//! distributions the workload generator needs are implemented here:
//! normal (Box-Muller), lognormal, gamma (Marsaglia-Tsang), beta (via two
//! gammas) and Poisson (Knuth's product method with a normal approximation
//! for large means).

use rand::Rng;

/// Draws a standard normal variate via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0) by flooring the first uniform.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `N(mean, std^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Draws a lognormal variate: `exp(N(log_mean, log_std^2))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, log_mean: f64, log_std: f64) -> f64 {
    normal(rng, log_mean, log_std).exp()
}

/// Draws `Gamma(shape, 1)` for `shape > 0` using Marsaglia & Tsang's
/// squeeze method (with the standard boost for `shape < 1`).
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws `Beta(alpha, beta)` via two gamma variates.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, b: f64) -> f64 {
    let x = gamma(rng, alpha);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Draws `Poisson(mean)`; Knuth's method for small means, a clamped normal
/// approximation above 30 (adequate for arrival counts).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws a uniform variate in `[lo, hi)`, tolerating `lo == hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    lo + (hi - lo) * rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_stats::Welford;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut w = Welford::new();
        for _ in 0..50_000 {
            w.push(normal(&mut r, 3.0, 2.0));
        }
        assert!((w.mean() - 3.0).abs() < 0.05, "mean {}", w.mean());
        assert!(
            (w.population_std() - 2.0).abs() < 0.05,
            "std {}",
            w.population_std()
        );
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut r = rng();
        let mut vals: Vec<f64> = (0..20_000).map(|_| lognormal(&mut r, 1.0, 0.5)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        // Median of lognormal is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn gamma_moments() {
        let mut r = rng();
        for shape in [0.5, 1.0, 2.5, 9.0] {
            let mut w = Welford::new();
            for _ in 0..50_000 {
                w.push(gamma(&mut r, shape));
            }
            // Gamma(shape, 1): mean = shape, var = shape.
            assert!(
                (w.mean() - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape} mean {}",
                w.mean()
            );
            assert!(
                (w.population_variance() - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} var {}",
                w.population_variance()
            );
        }
    }

    #[test]
    fn beta_moments_and_support() {
        let mut r = rng();
        let (a, b) = (2.0, 5.0);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            let x = beta(&mut r, a, b);
            assert!((0.0..=1.0).contains(&x));
            w.push(x);
        }
        let expected_mean = a / (a + b);
        assert!((w.mean() - expected_mean).abs() < 0.01, "mean {}", w.mean());
    }

    #[test]
    fn poisson_moments() {
        let mut r = rng();
        for mean in [0.5, 4.0, 50.0] {
            let mut w = Welford::new();
            for _ in 0..30_000 {
                w.push(poisson(&mut r, mean) as f64);
            }
            assert!(
                (w.mean() - mean).abs() < 0.1 * mean.max(1.0),
                "mean {mean}: got {}",
                w.mean()
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, 2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(uniform(&mut r, 5.0, 5.0), 5.0);
        assert_eq!(uniform(&mut r, 5.0, 4.0), 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
