//! Per-task stochastic usage processes.
//!
//! Each task's instantaneous usage is built from four components, mirroring
//! what the paper reports about production workloads:
//!
//! * a per-task **base** utilization fraction well below 1 (the
//!   usage-to-limit gap / relative slack),
//! * a **diurnal** sinusoid whose phase is shared across tasks of one job
//!   (the load balancer drives sibling tasks together → intra-job
//!   correlation, the reason the pooling effect is *statistical*, not
//!   total),
//! * an **Ornstein-Uhlenbeck** (discrete AR(1)) noise term,
//! * rare **spikes** toward the limit ("a task that sometimes, e.g. 5 % of
//!   time, reaches its limit, but usually operates at much lower
//!   utilization" — the exact behaviour peak predictors must survive).
//!
//! Within each 5-minute tick the process emits [`SUBSAMPLES_PER_TICK`]
//! jittered instantaneous points, giving every tick a usage *distribution*
//! like trace v3's within-window CPU histogram.

use crate::cell::UsageModel;
use crate::gen::dist;
use crate::time::{Tick, SUBSAMPLES_PER_TICK};
use rand::Rng;

/// Lowest utilization fraction a live task can report (idle overhead).
const UTIL_FLOOR: f64 = 0.01;

/// State of one task's usage process.
#[derive(Debug, Clone)]
pub struct UsageProcess {
    limit: f64,
    base: f64,
    diurnal_amp: f64,
    phase: f64,
    ou_decay: f64,
    ou_innov_std: f64,
    ou_state: f64,
    spike_prob: f64,
    spike_mean_ticks: f64,
    spike_level: f64,
    spike_remaining: u64,
    job_spike_prob: f64,
    job_spike_level: f64,
    job_spike_ticks: u64,
    coupling: f64,
    subsample_sigma: f64,
    warmup_ticks: u64,
    age_ticks: u64,
    job_seed: u64,
}

impl UsageProcess {
    /// Draws a fresh process for a task with the given `limit`, coupling it
    /// to `job_seed`/`job_phase`/`job_base` (shared by sibling tasks of the
    /// same job — see [`draw_job_base`]). Batch tasks (`serving == false`)
    /// carry a damped diurnal component and no job spikes — they do not
    /// follow end-user traffic.
    pub fn sample_new<R: Rng + ?Sized>(
        rng: &mut R,
        model: &UsageModel,
        limit: f64,
        job_seed: u64,
        job_phase: f64,
        serving: bool,
        job_base: f64,
    ) -> UsageProcess {
        let base = (job_base + dist::normal(rng, 0.0, model.util_task_jitter))
            .clamp(0.05, model.util_range.1.max(0.05));
        let amp_scale = if serving {
            1.0
        } else {
            model.batch_diurnal_scale
        };
        let diurnal_amp = amp_scale * dist::uniform(rng, model.diurnal_amp.0, model.diurnal_amp.1);
        let ou_sigma = dist::uniform(rng, model.ou_sigma.0, model.ou_sigma.1);
        let theta = model.ou_theta.clamp(0.01, 1.0);
        let decay = 1.0 - theta;
        // Innovation std giving the requested stationary std for AR(1).
        let innov_std = ou_sigma * (1.0 - decay * decay).sqrt();
        // Small per-task phase jitter on top of the shared job phase keeps
        // siblings correlated but not identical.
        let phase = job_phase + dist::normal(rng, 0.0, 0.02);
        UsageProcess {
            limit,
            base,
            diurnal_amp,
            phase,
            ou_decay: decay,
            ou_innov_std: innov_std,
            ou_state: dist::normal(rng, 0.0, ou_sigma),
            spike_prob: model.spike_prob,
            spike_mean_ticks: model.spike_mean_ticks.max(1.0),
            spike_level: model.spike_level,
            spike_remaining: 0,
            job_spike_prob: if serving { model.job_spike_prob } else { 0.0 },
            job_spike_level: model.job_spike_level,
            job_spike_ticks: model.job_spike_ticks.max(1),
            coupling: model.job_coupling,
            subsample_sigma: model.subsample_sigma,
            warmup_ticks: model.warmup_ticks,
            age_ticks: 0,
            job_seed,
        }
    }

    /// The task's CPU limit.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Deterministic slowly-varying shared factor for a job: two
    /// incommensurate sinusoids with phases and periods derived by hashing
    /// the job seed. Sibling tasks (same `job_seed`) see the same factor at
    /// the same tick, with no shared mutable state.
    fn job_factor(&self, t: Tick) -> f64 {
        let h1 = splitmix(self.job_seed);
        let h2 = splitmix(h1);
        let phase1 = (h1 % 10_000) as f64 / 10_000.0;
        let phase2 = (h2 % 10_000) as f64 / 10_000.0;
        // Periods between ~4 h and ~16 h.
        let p1 = 48.0 + (h1 >> 16 & 0x7F) as f64;
        let p2 = 96.0 + (h2 >> 16 & 0x7F) as f64;
        let x = t.index() as f64;
        0.5 * (std::f64::consts::TAU * (x / p1 + phase1)).sin()
            + 0.5 * (std::f64::consts::TAU * (x / p2 + phase2)).sin()
    }

    /// Whether a job-level spike covers tick `t`. Deterministic in
    /// `(job_seed, t)`: sibling tasks of a job surge in the *same* windows
    /// without any shared mutable state — the mechanism behind machine-
    /// level co-peaks.
    fn job_spike_active(&self, t: Tick) -> bool {
        if self.job_spike_prob <= 0.0 {
            return false;
        }
        let w = t.index() / self.job_spike_ticks;
        let h = splitmix(self.job_seed ^ splitmix(0x10B5_91CE ^ w));
        let uniform = (h >> 11) as f64 / (1u64 << 53) as f64;
        uniform < self.job_spike_prob
    }

    /// Advances the process one tick and writes the within-tick
    /// instantaneous usage (already capped at the limit) into `out`.
    pub fn tick<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        t: Tick,
        out: &mut [f64; SUBSAMPLES_PER_TICK],
    ) {
        // AR(1) update.
        self.ou_state = self.ou_decay * self.ou_state + dist::normal(rng, 0.0, self.ou_innov_std);

        // Spike bookkeeping.
        if self.spike_remaining > 0 {
            self.spike_remaining -= 1;
        } else if rng.random::<f64>() < self.spike_prob {
            // Geometric duration with the configured mean.
            let p = 1.0 / self.spike_mean_ticks;
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            self.spike_remaining = 1 + (u.ln() / (1.0 - p).ln()).floor().max(0.0) as u64;
        }

        let diurnal =
            self.diurnal_amp * (std::f64::consts::TAU * (t.day_fraction() + self.phase)).sin();
        let shared = self.coupling * 0.08 * self.job_factor(t);
        let level = if self.spike_remaining > 0 {
            self.spike_level
        } else if self.job_spike_active(t) {
            self.job_spike_level
        } else {
            self.base + diurnal + shared + self.ou_state
        };

        // Fresh tasks ramp up to their level over the warm-up period.
        let ramp = if self.warmup_ticks == 0 {
            1.0
        } else {
            ((self.age_ticks + 1) as f64 / self.warmup_ticks as f64).min(1.0)
        };
        self.age_ticks += 1;

        let util = (level * ramp).clamp(UTIL_FLOOR, 1.0);
        for slot in out.iter_mut() {
            let jitter = dist::normal(rng, 0.0, self.subsample_sigma);
            *slot = ((util + jitter).clamp(0.0, 1.0)) * self.limit;
        }
    }
}

/// Draws a job's shared base-utilization level from the cell's Beta model.
pub fn draw_job_base<R: Rng + ?Sized>(rng: &mut R, model: &UsageModel) -> f64 {
    let draw = dist::beta(rng, model.util_alpha, model.util_beta);
    model.util_range.0 + draw * (model.util_range.1 - model.util_range.0)
}

/// SplitMix64 hash step, used to derive independent per-job constants.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, CellPreset};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> UsageModel {
        CellConfig::preset(CellPreset::A).usage
    }

    fn process(seed: u64) -> (UsageProcess, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = UsageProcess::sample_new(&mut rng, &model(), 0.2, 7, 0.25, true, 0.5);
        (p, rng)
    }

    #[test]
    fn usage_is_capped_at_limit_and_nonnegative() {
        let (mut p, mut rng) = process(1);
        let mut out = [0.0; SUBSAMPLES_PER_TICK];
        for i in 0..5000 {
            p.tick(&mut rng, Tick(i), &mut out);
            for &v in &out {
                assert!((0.0..=0.2 + 1e-12).contains(&v), "usage {v} out of range");
            }
        }
    }

    #[test]
    fn mean_usage_is_well_below_limit() {
        // The usage-to-limit gap must exist for overcommit to have room.
        let mut total = 0.0;
        let mut n = 0usize;
        for seed in 0..20 {
            let (mut p, mut rng) = process(seed);
            let mut out = [0.0; SUBSAMPLES_PER_TICK];
            for i in 0..2000 {
                p.tick(&mut rng, Tick(i), &mut out);
                total += out.iter().sum::<f64>();
                n += out.len();
            }
        }
        let mean_ratio = total / n as f64 / 0.2;
        assert!(
            (0.15..0.85).contains(&mean_ratio),
            "mean usage/limit ratio {mean_ratio}"
        );
    }

    #[test]
    fn spikes_reach_near_limit() {
        // With spike_prob boosted, the process must occasionally hit the
        // spike level.
        let mut m = model();
        m.spike_prob = 0.2;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = UsageProcess::sample_new(&mut rng, &m, 0.5, 1, 0.0, true, 0.5);
        let mut out = [0.0; SUBSAMPLES_PER_TICK];
        let mut peak = 0.0f64;
        for i in 0..500 {
            p.tick(&mut rng, Tick(i), &mut out);
            peak = peak.max(out.iter().copied().fold(0.0, f64::max));
        }
        assert!(peak > 0.4, "peak {peak} never approached the limit");
    }

    #[test]
    fn warmup_ramps_usage() {
        let mut m = model();
        m.warmup_ticks = 10;
        m.ou_sigma = (0.0001, 0.0002);
        m.subsample_sigma = 0.0001;
        m.spike_prob = 0.0;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut p = UsageProcess::sample_new(&mut rng, &m, 1.0, 1, 0.0, true, 0.5);
        let mut out = [0.0; SUBSAMPLES_PER_TICK];
        p.tick(&mut rng, Tick(0), &mut out);
        let first = out[0];
        for i in 1..10 {
            p.tick(&mut rng, Tick(i), &mut out);
        }
        let later = out[0];
        assert!(later > first * 2.0, "no ramp: first {first}, later {later}");
    }

    #[test]
    fn sibling_tasks_are_correlated_strangers_less_so() {
        // Two tasks of the same job (same seed+phase) vs. different jobs.
        let m = UsageModel {
            job_coupling: 1.0,
            ou_sigma: (0.001, 0.002),
            subsample_sigma: 0.001,
            spike_prob: 0.0,
            diurnal_amp: (0.2, 0.2001),
            ..model()
        };
        let run = |job_seed: u64, phase: f64, rng_seed: u64| -> Vec<f64> {
            let mut rng = SmallRng::seed_from_u64(rng_seed);
            let mut p = UsageProcess::sample_new(&mut rng, &m, 1.0, job_seed, phase, true, 0.5);
            let mut out = [0.0; SUBSAMPLES_PER_TICK];
            (0..600)
                .map(|i| {
                    p.tick(&mut rng, Tick(i), &mut out);
                    out.iter().sum::<f64>() / out.len() as f64
                })
                .collect()
        };
        let a = run(7, 0.3, 1);
        let b = run(7, 0.3, 2);
        let c = run(999, 0.8, 3);
        let sib = oc_stats::pearson(&a, &b).unwrap();
        let stranger = oc_stats::pearson(&a, &c).unwrap();
        assert!(
            sib > stranger + 0.2,
            "siblings {sib} vs strangers {stranger}"
        );
    }

    #[test]
    fn splitmix_spreads_bits() {
        let a = splitmix(1);
        let b = splitmix(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
    }
}
