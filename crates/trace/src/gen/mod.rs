//! The synthetic workload generator.
//!
//! [`WorkloadGenerator`] turns a [`CellConfig`] into per-machine traces with
//! the same shape as the Google cluster trace v3. Machines are generated
//! independently and deterministically: machine `m` of a cell with seed `s`
//! always produces the same tasks and usage series, regardless of the order
//! machines are generated in or how many threads are used.
//!
//! The generation loop per machine:
//!
//! 1. Each tick, while the machine's `Σ limits / capacity` is below its
//!    target ratio, new tasks arrive with a diurnally modulated probability
//!    (tick 0 fills the machine to its target immediately so experiments do
//!    not start from an empty cell).
//! 2. Tasks are grouped into jobs. A job's tasks share a limit, class,
//!    priority, diurnal phase and a slowly varying "load balancer" factor —
//!    the intra-job correlation that makes the pooling effect statistical
//!    rather than total.
//! 3. Each live task advances its [`UsageProcess`] one tick, emitting
//!    [`SUBSAMPLES_PER_TICK`] instantaneous usage points. The ground-truth
//!    machine peak of the tick is the max over those instants of the *sum*
//!    across tasks, which is strictly smaller than the sum of per-task peaks
//!    whenever tasks do not co-peak.

pub mod dist;
pub mod usage;

pub use usage::{splitmix, UsageProcess};

use crate::cell::CellConfig;
use crate::error::TraceError;
use crate::ids::{JobId, MachineId, TaskId};
use crate::machine::MachineTrace;
use crate::sample::UsageSample;
use crate::task::{SchedulingClass, TaskSpec, TaskTrace};
use crate::time::{Tick, TickRange, SUBSAMPLES_PER_TICK, TICKS_PER_HOUR};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic synthetic workload generator for one cell.
///
/// # Examples
///
/// ```
/// use oc_trace::cell::{CellConfig, CellPreset};
/// use oc_trace::gen::WorkloadGenerator;
///
/// let cfg = CellConfig::preset(CellPreset::A).with_machines(2);
/// let gen = WorkloadGenerator::new(cfg).unwrap();
/// let machines = gen.generate_cell().unwrap();
/// assert_eq!(machines.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    cfg: CellConfig,
}

/// A job template shared by sibling tasks placed on one machine.
#[derive(Debug, Clone)]
struct JobTemplate {
    id: JobId,
    remaining: u32,
    next_index: u32,
    limit: f64,
    memory_limit: f64,
    class: SchedulingClass,
    priority: u16,
    phase: f64,
    seed: u64,
    util_base: f64,
}

/// A task currently running during generation.
#[derive(Debug)]
struct LiveTask {
    spec: TaskSpec,
    process: UsageProcess,
    samples: Vec<UsageSample>,
}

impl WorkloadGenerator {
    /// Creates a generator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] if the cell config is invalid.
    pub fn new(cfg: CellConfig) -> Result<WorkloadGenerator, TraceError> {
        cfg.validate()?;
        Ok(WorkloadGenerator { cfg })
    }

    /// The cell configuration this generator was built from.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Generates every machine of the cell sequentially.
    ///
    /// # Errors
    ///
    /// Propagates any internal consistency error (which would indicate a
    /// generator bug; the output is validated before being returned).
    pub fn generate_cell(&self) -> Result<Vec<MachineTrace>, TraceError> {
        (0..self.cfg.machines)
            .map(|m| self.generate_machine(MachineId(m as u32)))
            .collect()
    }

    /// Generates every machine of the cell in parallel using scoped threads.
    ///
    /// The output is identical to [`WorkloadGenerator::generate_cell`]
    /// (machines are seeded independently), just faster on multicore hosts.
    ///
    /// # Errors
    ///
    /// Propagates the first per-machine error, as in `generate_cell`.
    pub fn generate_cell_parallel(&self, threads: usize) -> Result<Vec<MachineTrace>, TraceError> {
        let threads = threads.max(1);
        let n = self.cfg.machines;
        let mut results: Vec<Option<Result<MachineTrace, TraceError>>> = Vec::new();
        results.resize_with(n, || None);
        let chunk = n.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (i, slot_chunk) in results.chunks_mut(chunk).enumerate() {
                let first = i * chunk;
                scope.spawn(move || {
                    for (j, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(self.generate_machine(MachineId((first + j) as u32)));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every chunk slot filled by its thread"))
            .collect()
    }

    /// Generates the full trace of a single machine.
    ///
    /// Deterministic: depends only on the cell config and the machine id.
    ///
    /// # Errors
    ///
    /// Returns an error only if the generated trace fails its own validation
    /// (a generator bug, not a user error).
    pub fn generate_machine(&self, machine: MachineId) -> Result<MachineTrace, TraceError> {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(splitmix(
            cfg.seed ^ splitmix(0x6D61_6368 ^ u64::from(machine.0).wrapping_add(1)),
        ));

        let duration = cfg.duration_ticks;
        let target_ratio =
            dist::uniform(&mut rng, cfg.target_limit_ratio.0, cfg.target_limit_ratio.1);
        let target_limit = target_ratio * cfg.capacity;

        let mut live: Vec<LiveTask> = Vec::new();
        let mut done: Vec<TaskTrace> = Vec::new();
        let mut job: Option<JobTemplate> = None;
        let mut job_counter: u64 = 0;
        let mut true_peak = Vec::with_capacity(duration as usize);
        let mut avg_usage = Vec::with_capacity(duration as usize);
        let mut instant = [0.0f64; SUBSAMPLES_PER_TICK];
        let mut buf = [0.0f64; SUBSAMPLES_PER_TICK];

        for ti in 0..duration {
            let t = Tick(ti);

            // --- Arrivals -------------------------------------------------
            let diurnal =
                1.0 + cfg.arrival_diurnal_amp * (std::f64::consts::TAU * t.day_fraction()).sin();
            let p_admit = (cfg.refill_prob * diurnal).clamp(0.0, 1.0);
            // Tick 0 fills the machine to its target so the trace starts hot,
            // as a steady-state cluster would be.
            let max_arrivals = if ti == 0 {
                u32::MAX
            } else {
                cfg.max_arrivals_per_tick
            };
            let mut admitted = 0u32;
            while admitted < max_arrivals {
                let total_limit: f64 = live.iter().map(|l| l.spec.limit).sum();
                if total_limit >= target_limit {
                    break;
                }
                if ti != 0 && rng.random::<f64>() >= p_admit {
                    break;
                }
                let task = self.admit_task(&mut rng, machine, &mut job, &mut job_counter, t);
                live.push(task);
                admitted += 1;
            }

            // --- Usage ----------------------------------------------------
            instant.fill(0.0);
            for task in live.iter_mut() {
                task.process.tick(&mut rng, t, &mut buf);
                for (acc, &v) in instant.iter_mut().zip(buf.iter()) {
                    *acc += v;
                }
                task.samples.push(
                    UsageSample::from_subsamples(&buf)
                        .expect("generator emits non-empty finite windows"),
                );
            }
            true_peak.push(instant.iter().copied().fold(0.0, f64::max));
            avg_usage.push(instant.iter().sum::<f64>() / SUBSAMPLES_PER_TICK as f64);

            // --- Departures -----------------------------------------------
            let next = t.plus(1);
            let mut i = 0;
            while i < live.len() {
                if !live[i].spec.alive_at(next) {
                    let LiveTask { spec, samples, .. } = live.swap_remove(i);
                    done.push(TaskTrace::new(spec, samples)?);
                } else {
                    i += 1;
                }
            }
        }
        // Flush tasks still running at the horizon.
        for task in live {
            let LiveTask {
                mut spec,
                mut samples,
                ..
            } = task;
            // The spec may extend past the horizon; truncate to what ran.
            spec.end = Tick(duration);
            samples.truncate(spec.runtime_ticks() as usize);
            done.push(TaskTrace::new(spec, samples)?);
        }
        done.sort_by_key(|t| (t.spec.start, t.spec.id));

        let trace = MachineTrace {
            machine,
            capacity: cfg.capacity,
            horizon: TickRange::from_len(duration),
            tasks: done,
            true_peak,
            avg_usage,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Draws a new task, starting a fresh job when the current one is
    /// exhausted.
    fn admit_task(
        &self,
        rng: &mut SmallRng,
        machine: MachineId,
        job: &mut Option<JobTemplate>,
        job_counter: &mut u64,
        now: Tick,
    ) -> LiveTask {
        let cfg = &self.cfg;
        if job.as_ref().is_none_or(|j| j.remaining == 0) {
            *job = Some(self.new_job(rng, machine, job_counter));
        }
        let tpl = job.as_mut().expect("job template refreshed above");
        tpl.remaining -= 1;
        let index = tpl.next_index;
        tpl.next_index += 1;

        let runtime_ticks = self.draw_runtime_ticks(rng);
        let spec = TaskSpec {
            id: TaskId::new(tpl.id, index),
            limit: tpl.limit,
            memory_limit: tpl.memory_limit,
            start: now,
            end: now.plus(runtime_ticks),
            class: tpl.class,
            priority: tpl.priority,
        };
        let process = UsageProcess::sample_new(
            rng,
            &cfg.usage,
            tpl.limit,
            tpl.seed,
            tpl.phase,
            tpl.class.is_latency_sensitive(),
            tpl.util_base,
        );
        LiveTask {
            spec,
            process,
            samples: Vec::with_capacity(runtime_ticks.min(4096) as usize),
        }
    }

    /// Draws a fresh job template.
    fn new_job(
        &self,
        rng: &mut SmallRng,
        machine: MachineId,
        job_counter: &mut u64,
    ) -> JobTemplate {
        let cfg = &self.cfg;
        *job_counter += 1;
        // Job ids are unique cell-wide: the machine index occupies the high
        // bits, the per-machine counter the low bits.
        let id = JobId((u64::from(machine.0) << 32) | *job_counter);
        let count = rng.random_range(cfg.tasks_per_job.0..=cfg.tasks_per_job.1);
        let limit = dist::lognormal(rng, cfg.limits.log_mean, cfg.limits.log_sigma)
            .clamp(cfg.limits.min, cfg.limits.max);
        let serving = rng.random::<f64>() < cfg.serving_fraction;
        let (class, priority) = if serving {
            if rng.random::<f64>() < 0.5 {
                (SchedulingClass::Class2, 200)
            } else {
                (SchedulingClass::Class3, 360)
            }
        } else if rng.random::<f64>() < 0.5 {
            (SchedulingClass::Class0, 25)
        } else {
            (SchedulingClass::Class1, 100)
        };
        JobTemplate {
            id,
            remaining: count,
            next_index: 0,
            limit,
            memory_limit: dist::lognormal(rng, (0.04f64).ln(), 0.8).clamp(0.005, 0.5),
            class,
            priority,
            phase: cfg.diurnal_phase + dist::normal(rng, 0.0, cfg.usage.diurnal_phase_jitter),
            seed: splitmix(cfg.seed ^ splitmix(id.0)),
            util_base: usage::draw_job_base(rng, &cfg.usage),
        }
    }

    /// Draws a runtime in ticks from the two-component lognormal mixture.
    fn draw_runtime_ticks(&self, rng: &mut SmallRng) -> u64 {
        let m = &self.cfg.runtime;
        let hours = if rng.random::<f64>() < m.short_frac {
            dist::lognormal(rng, m.short_median_hours.ln(), m.short_sigma)
        } else {
            dist::lognormal(rng, m.long_median_hours.ln(), m.long_sigma)
        };
        let hours = hours.min(m.max_hours);
        ((hours * TICKS_PER_HOUR as f64).round() as u64).max(1)
    }
}

/// Per-tick cell-level task submission counts (Figure 4's series).
///
/// Counts, for each tick of the cell horizon, how many tasks across all
/// `machines` have that tick as their start.
pub fn submission_counts(machines: &[MachineTrace], duration_ticks: u64) -> Vec<u64> {
    let mut counts = vec![0u64; duration_ticks as usize];
    for m in machines {
        for t in &m.tasks {
            let idx = t.spec.start.index();
            if idx < duration_ticks {
                counts[idx as usize] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellPreset;
    use crate::sample::UsageMetric;

    fn small_cfg() -> CellConfig {
        let mut c = CellConfig::preset(CellPreset::A);
        c.machines = 3;
        c.duration_ticks = 3 * 24 * TICKS_PER_HOUR; // 3 days
        c
    }

    #[test]
    fn generates_requested_machine_count() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let cell = g.generate_cell().unwrap();
        assert_eq!(cell.len(), 3);
        for m in &cell {
            m.validate().unwrap();
            assert!(m.task_count() > 0, "machine {} has no tasks", m.machine);
        }
    }

    #[test]
    fn deterministic_per_machine() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let a = g.generate_machine(MachineId(1)).unwrap();
        let b = g.generate_machine(MachineId(1)).unwrap();
        assert_eq!(a.tasks.len(), b.tasks.len());
        assert_eq!(a.true_peak, b.true_peak);
        for (x, y) in a.tasks.iter().zip(b.tasks.iter()) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let seq = g.generate_cell().unwrap();
        let par = g.generate_cell_parallel(4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.true_peak, b.true_peak);
        }
    }

    #[test]
    fn different_machines_differ() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let a = g.generate_machine(MachineId(0)).unwrap();
        let b = g.generate_machine(MachineId(1)).unwrap();
        assert_ne!(a.true_peak, b.true_peak);
    }

    #[test]
    fn machine_starts_hot() {
        // Tick 0 must already carry a workload near the target ratio.
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let m = g.generate_machine(MachineId(0)).unwrap();
        let ratio = m.total_limit_at(Tick(0)) / m.capacity;
        assert!(
            ratio >= g.config().target_limit_ratio.0 * 0.9,
            "limit ratio at t0 is only {ratio}"
        );
    }

    #[test]
    fn pooling_effect_exists() {
        // Sum of per-task peaks must exceed the machine-level true peak.
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let m = g.generate_machine(MachineId(0)).unwrap();
        let sum_task_peaks: f64 = m.tasks.iter().map(|t| t.peak()).sum();
        // Compare against max over ticks of machine peak; per-task peaks
        // happen at different times so their sum is far larger.
        assert!(
            sum_task_peaks > 1.2 * m.lifetime_peak(),
            "sum of task peaks {sum_task_peaks} vs machine peak {}",
            m.lifetime_peak()
        );
    }

    #[test]
    fn true_peak_bounds_metric_sums() {
        // The ground-truth within-tick peak is at most the sum of per-task
        // window maxima and at least the sum of window averages (up to
        // subsample noise on the average side).
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let m = g.generate_machine(MachineId(2)).unwrap();
        for ti in (0..m.horizon.len()).step_by(7) {
            let t = Tick(ti);
            let max_sum = m.total_usage_at(t, UsageMetric::Max);
            let peak = m.true_peak_at(t).unwrap();
            assert!(
                peak <= max_sum + 1e-9,
                "tick {t}: true peak {peak} above sum of maxima {max_sum}"
            );
        }
    }

    #[test]
    fn usage_to_limit_gap_exists() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let cell = g.generate_cell().unwrap();
        let mut usage = 0.0;
        let mut limit = 0.0;
        for m in &cell {
            for t in (0..m.horizon.len()).map(Tick) {
                usage += m.total_usage_at(t, UsageMetric::Avg);
                limit += m.total_limit_at(t);
            }
        }
        let ratio = usage / limit;
        assert!(
            (0.2..0.85).contains(&ratio),
            "cell usage-to-limit ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn submission_counts_cover_all_tasks() {
        let g = WorkloadGenerator::new(small_cfg()).unwrap();
        let cell = g.generate_cell().unwrap();
        let counts = submission_counts(&cell, g.config().duration_ticks);
        let total: u64 = counts.iter().sum();
        let tasks: usize = cell.iter().map(|m| m.task_count()).sum();
        assert_eq!(total as usize, tasks);
        // Tick 0 carries the initial fill.
        assert!(counts[0] > 0);
    }

    #[test]
    fn serving_fraction_is_respected() {
        let mut cfg = small_cfg();
        cfg.serving_fraction = 1.0;
        let g = WorkloadGenerator::new(cfg).unwrap();
        let m = g.generate_machine(MachineId(0)).unwrap();
        assert!(m.tasks.iter().all(|t| t.spec.class.is_latency_sensitive()));
    }

    #[test]
    fn runtimes_respect_cap() {
        let mut cfg = small_cfg();
        cfg.runtime.max_hours = 5.0;
        let g = WorkloadGenerator::new(cfg).unwrap();
        let m = g.generate_machine(MachineId(0)).unwrap();
        for t in &m.tasks {
            // Tasks may also be truncated by the horizon; the cap applies to
            // the drawn runtime either way.
            assert!(
                t.spec.runtime_hours() <= 5.0 + 1e-9,
                "task {} runs {} h",
                t.spec.id,
                t.spec.runtime_hours()
            );
        }
    }
}
