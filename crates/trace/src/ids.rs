//! Identifier newtypes for cells, machines, jobs and tasks.

use std::fmt;
use std::sync::Arc;

/// Identifies a cell (a cluster of machines managed by one scheduler).
///
/// The paper uses trace cells `a..h` and five anonymous production cells;
/// both kinds are just short names here.
///
/// The name is reference-counted (`Arc<str>`), so cloning a `CellId` —
/// which the serving data plane does once per routed sample — is a
/// refcount bump, never a heap allocation. Equality, ordering, and
/// hashing all delegate to the string contents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(Arc<str>);

impl CellId {
    /// Creates a cell id from a name.
    pub fn new(name: impl AsRef<str>) -> CellId {
        CellId(Arc::from(name.as_ref()))
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl Default for CellId {
    /// The empty cell name.
    fn default() -> CellId {
        CellId(Arc::from(""))
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies one physical machine within a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifies a job (the trace's "collection"): a batch run or a
/// continuously-running service composed of tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Identifies one task: an instance index within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId {
    /// The owning job.
    pub job: JobId,
    /// Instance index within the job.
    pub index: u32,
}

impl TaskId {
    /// Creates a task id.
    pub fn new(job: JobId, index: u32) -> TaskId {
        TaskId { job, index }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.job, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CellId::new("a").to_string(), "a");
        assert_eq!(MachineId(3).to_string(), "m3");
        assert_eq!(JobId(9).to_string(), "j9");
        assert_eq!(TaskId::new(JobId(9), 2).to_string(), "j9/2");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(TaskId::new(JobId(1), 5) < TaskId::new(JobId(2), 0));
        assert!(TaskId::new(JobId(1), 1) < TaskId::new(JobId(1), 2));
    }

    #[test]
    fn cell_name_access() {
        let c = CellId::new("prod1");
        assert_eq!(c.name(), "prod1");
    }
}
