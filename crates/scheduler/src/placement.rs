//! Placement policies: picking one machine among the feasible candidates.
//!
//! The paper's contribution sits in the *feasibility* step — deciding
//! which machines have room, via the peak predictor — and is explicitly
//! orthogonal to the bin-packing step. These policies implement the
//! bin-packing side so the A/B harness has a realistic scheduler around
//! the predictor: classic first/best/worst-fit plus Borg-style relaxed
//! randomized scoring over a bounded candidate sample.

use rand::rngs::SmallRng;
use rand::Rng;

/// How the scheduler picks among machines that pass the feasibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest machine index first (deterministic, packs the head).
    FirstFit,
    /// Least remaining free capacity (tight packing).
    BestFit,
    /// Most remaining free capacity (load spreading).
    WorstFit,
    /// Examine a random sample of up to `k` feasible machines and take the
    /// best fit among them (Borg's relaxed randomization).
    RandomK(
        /// Sample size.
        usize,
    ),
}

impl PlacementPolicy {
    /// Chooses among `(machine index, free capacity)` candidates.
    ///
    /// Returns `None` when `candidates` is empty. Ties resolve to the
    /// lower machine index, making every policy deterministic given the
    /// RNG state.
    pub fn choose(&self, candidates: &[(usize, f64)], rng: &mut SmallRng) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::FirstFit => candidates.iter().map(|&(i, _)| i).min(),
            PlacementPolicy::BestFit => pick(candidates, |a, b| a < b),
            PlacementPolicy::WorstFit => pick(candidates, |a, b| a > b),
            PlacementPolicy::RandomK(k) => {
                let k = (*k).max(1).min(candidates.len());
                // Sample k distinct candidate positions via partial
                // Fisher-Yates on an index vector.
                let mut idx: Vec<usize> = (0..candidates.len()).collect();
                for i in 0..k {
                    let j = rng.random_range(i..idx.len());
                    idx.swap(i, j);
                }
                let sample: Vec<(usize, f64)> = idx[..k].iter().map(|&p| candidates[p]).collect();
                pick(&sample, |a, b| a < b)
            }
        }
    }

    /// A short stable name for tables.
    pub fn name(&self) -> String {
        match self {
            PlacementPolicy::FirstFit => "first-fit".into(),
            PlacementPolicy::BestFit => "best-fit".into(),
            PlacementPolicy::WorstFit => "worst-fit".into(),
            PlacementPolicy::RandomK(k) => format!("random-{k}"),
        }
    }
}

/// Picks the candidate whose free capacity wins under `better`, breaking
/// ties toward the lower machine index.
fn pick(candidates: &[(usize, f64)], better: impl Fn(f64, f64) -> bool) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &(i, free) in candidates {
        match best {
            None => best = Some((i, free)),
            Some((bi, bf)) => {
                if better(free, bf) || (free == bf && i < bi) {
                    best = Some((i, free));
                }
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    const CANDS: &[(usize, f64)] = &[(2, 0.5), (5, 0.1), (7, 0.9), (9, 0.1)];

    #[test]
    fn empty_candidates() {
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::RandomK(3),
        ] {
            assert_eq!(p.choose(&[], &mut rng()), None);
        }
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        assert_eq!(PlacementPolicy::FirstFit.choose(CANDS, &mut rng()), Some(2));
    }

    #[test]
    fn best_fit_takes_least_free_breaking_ties_low() {
        assert_eq!(PlacementPolicy::BestFit.choose(CANDS, &mut rng()), Some(5));
    }

    #[test]
    fn worst_fit_takes_most_free() {
        assert_eq!(PlacementPolicy::WorstFit.choose(CANDS, &mut rng()), Some(7));
    }

    #[test]
    fn random_k_picks_a_feasible_machine() {
        let mut r = rng();
        for _ in 0..100 {
            let c = PlacementPolicy::RandomK(2).choose(CANDS, &mut r).unwrap();
            assert!(CANDS.iter().any(|&(i, _)| i == c));
        }
    }

    #[test]
    fn random_full_sample_equals_best_fit() {
        let mut r = rng();
        assert_eq!(
            PlacementPolicy::RandomK(CANDS.len()).choose(CANDS, &mut r),
            Some(5)
        );
    }

    #[test]
    fn names() {
        assert_eq!(PlacementPolicy::RandomK(5).name(), "random-5");
        assert_eq!(PlacementPolicy::WorstFit.name(), "worst-fit");
    }
}
