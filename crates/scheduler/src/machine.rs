//! A live machine: running tasks, node-agent state, and an on-board
//! peak predictor.

use crate::arrival::TaskRequest;
use oc_core::config::SimConfig;
use oc_core::predictor::{clamp_prediction, clamp_prediction_lane, PeakPredictor};
use oc_core::view::MachineView;
use oc_stats::resource::{Res2, MEM};
use oc_trace::cell::UsageModel;
use oc_trace::gen::UsageProcess;
use oc_trace::ids::{MachineId, TaskId};
use oc_trace::memory::MemoryModel;
use oc_trace::sample::UsageSample;
use oc_trace::task::{SchedulingClass, TaskSpec, TaskTrace};
use oc_trace::time::{Tick, TickRange, SUBSAMPLES_PER_TICK};
use oc_trace::{MachineTrace, TraceError};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One running task.
#[derive(Debug)]
struct LiveTask {
    id: TaskId,
    limit: f64,
    memory_limit: f64,
    start: Tick,
    end: Tick,
    class: SchedulingClass,
    priority: u16,
    process: UsageProcess,
    /// Realized per-tick metric values (for post-hoc replay).
    recorded: Vec<f64>,
}

/// Normalized machine memory capacity: one machine-memory unit, the same
/// normalization the trace generator uses for `memory_limit`.
pub const MEM_CAPACITY: f64 = 1.0;

/// A finished (or horizon-truncated) task with its realized usage.
#[derive(Debug, Clone)]
pub struct RecordedTask {
    /// Static task properties as they ran.
    pub spec: TaskSpec,
    /// Realized per-tick usage (by the configured metric), throttled.
    pub usage: Vec<f64>,
}

/// A machine in the live cluster.
///
/// Each tick the machine advances every task's usage process, throttles
/// demand that exceeds physical capacity (proportionally across tasks, as
/// the CPU scheduler's fair shares would), feeds the node-agent view, and
/// records the series the experiment needs: uncapped demand peak (drives
/// the QoS model), realized usage, Σ limits, and the on-board predictor's
/// estimate.
pub struct SimMachine {
    id: MachineId,
    capacity: f64,
    metric: oc_trace::sample::UsageMetric,
    usage_model: UsageModel,
    view: MachineView,
    predictor: Box<dyn PeakPredictor>,
    live: Vec<LiveTask>,
    finished: Vec<RecordedTask>,
    rng: SmallRng,
    /// Derived memory-usage model (deterministic; consumes no RNG).
    mem_model: MemoryModel,
    /// Σ limits of tasks admitted this tick but not yet observed.
    pending_limit: f64,
    /// Σ memory limits of tasks admitted this tick but not yet observed.
    pending_mem_limit: f64,
    /// Cached prediction from the end of the previous tick.
    cached_prediction: f64,
    /// Cached memory-lane prediction from the end of the previous tick.
    cached_mem_prediction: f64,
    // --- Recorded series, one entry per advanced tick. ------------------
    /// Uncapped within-tick peak demand.
    pub demand_peak: Vec<f64>,
    /// Realized (throttled) within-tick peak usage.
    pub realized_peak: Vec<f64>,
    /// Realized average usage.
    pub realized_avg: Vec<f64>,
    /// Σ limits of running tasks.
    pub limit_sum: Vec<f64>,
    /// The predictor's estimate after observing the tick.
    pub predictions: Vec<f64>,
    /// The predictor's memory-lane estimate after observing the tick.
    pub mem_predictions: Vec<f64>,
}

impl std::fmt::Debug for SimMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMachine")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("live_tasks", &self.live.len())
            .finish()
    }
}

impl SimMachine {
    /// Creates an idle machine.
    pub fn new(
        id: MachineId,
        capacity: f64,
        usage_model: UsageModel,
        sim: &SimConfig,
        predictor: Box<dyn PeakPredictor>,
        seed: u64,
    ) -> SimMachine {
        SimMachine {
            id,
            capacity,
            metric: sim.metric,
            usage_model,
            view: MachineView::new(capacity, sim),
            predictor,
            live: Vec::new(),
            finished: Vec::new(),
            rng: SmallRng::seed_from_u64(oc_trace::gen::splitmix(
                seed ^ oc_trace::gen::splitmix(0x5EED ^ u64::from(id.0)),
            )),
            mem_model: MemoryModel::default(),
            pending_limit: 0.0,
            pending_mem_limit: 0.0,
            cached_prediction: 0.0,
            cached_mem_prediction: 0.0,
            demand_peak: Vec::new(),
            realized_peak: Vec::new(),
            realized_avg: Vec::new(),
            limit_sum: Vec::new(),
            predictions: Vec::new(),
            mem_predictions: Vec::new(),
        }
    }

    /// The machine id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Physical capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of running tasks.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Σ limits over running tasks (including this tick's admissions).
    pub fn total_limit(&self) -> f64 {
        self.live.iter().map(|t| t.limit).sum()
    }

    /// The free capacity advertised to the scheduler: capacity minus the
    /// predicted peak minus limits pending from this tick's admissions.
    pub fn advertised_free(&self) -> f64 {
        self.capacity - self.cached_prediction - self.pending_limit
    }

    /// Feasibility check for a new task: the paper's admission rule
    /// `P(J_s, t) + L_J ≤ M`, applied to *every* resource lane. A machine
    /// fits a task only if both its CPU and its memory projections stay
    /// within the respective capacities — worst-lane gating, so a
    /// memory-bound machine with plenty of CPU headroom still rejects.
    pub fn fits(&self, limit: f64, memory_limit: f64) -> bool {
        self.cached_prediction + self.pending_limit + limit <= self.capacity + 1e-9
            && self.cached_mem_prediction + self.pending_mem_limit + memory_limit
                <= MEM_CAPACITY + 1e-9
    }

    /// Admits a task; it starts producing usage this tick.
    pub fn admit(&mut self, req: &TaskRequest, now: Tick) {
        let process = UsageProcess::sample_new(
            &mut self.rng,
            &self.usage_model,
            req.limit,
            req.job_seed,
            req.job_phase,
            req.class.is_latency_sensitive(),
            req.job_util_base,
        );
        self.pending_limit += req.limit;
        self.pending_mem_limit += req.memory_limit;
        self.live.push(LiveTask {
            id: req.id,
            limit: req.limit,
            memory_limit: req.memory_limit,
            start: now,
            end: now.plus(req.runtime_ticks),
            class: req.class,
            priority: req.priority,
            process,
            recorded: Vec::new(),
        });
    }

    /// Advances one tick: usage, throttling, observation, prediction.
    ///
    /// Throttling honours scheduling classes the way CPU shares do: when
    /// instantaneous demand exceeds capacity, batch tasks (classes 0–1)
    /// are squeezed first; serving tasks (classes 2–3) are scaled down
    /// only when their demand alone exceeds capacity. This is the paper's
    /// "limits are soft, enforced only in the case of resource
    /// contention" plus the SLO asymmetry between the two job classes.
    pub fn advance(&mut self, t: Tick) {
        // Draw every task's demand, split by class.
        let mut serving_demand = [0.0f64; SUBSAMPLES_PER_TICK];
        let mut batch_demand = [0.0f64; SUBSAMPLES_PER_TICK];
        let mut bufs: Vec<[f64; SUBSAMPLES_PER_TICK]> =
            vec![[0.0; SUBSAMPLES_PER_TICK]; self.live.len()];
        for (task, buf) in self.live.iter_mut().zip(bufs.iter_mut()) {
            task.process.tick(&mut self.rng, t, buf);
            let acc = if task.class.is_latency_sensitive() {
                &mut serving_demand
            } else {
                &mut batch_demand
            };
            for (a, &v) in acc.iter_mut().zip(buf.iter()) {
                *a += v;
            }
        }

        // Per-instant scales for each class.
        let mut serving_scale = [1.0f64; SUBSAMPLES_PER_TICK];
        let mut batch_scale = [1.0f64; SUBSAMPLES_PER_TICK];
        let mut demand = [0.0f64; SUBSAMPLES_PER_TICK];
        let mut realized_sum = [0.0f64; SUBSAMPLES_PER_TICK];
        for k in 0..SUBSAMPLES_PER_TICK {
            demand[k] = serving_demand[k] + batch_demand[k];
            if demand[k] > self.capacity {
                if serving_demand[k] >= self.capacity {
                    serving_scale[k] = self.capacity / serving_demand[k];
                    batch_scale[k] = 0.0;
                } else {
                    let room = self.capacity - serving_demand[k];
                    batch_scale[k] = if batch_demand[k] > 0.0 {
                        room / batch_demand[k]
                    } else {
                        1.0
                    };
                }
            }
            realized_sum[k] =
                serving_demand[k] * serving_scale[k] + batch_demand[k] * batch_scale[k];
        }

        // Record per-task realized usage and feed the node-agent view.
        // Observations go through the vector path: the CPU lane is
        // bit-identical to a scalar observe, and the memory lane carries
        // the deterministic derived series.
        let metric = self.metric;
        let mem_model = self.mem_model;
        let mut observations: Vec<(TaskId, Res2, Res2)> = Vec::with_capacity(self.live.len());
        for (task, buf) in self.live.iter_mut().zip(bufs.iter()) {
            let scale = if task.class.is_latency_sensitive() {
                &serving_scale
            } else {
                &batch_scale
            };
            let realized: Vec<f64> = buf.iter().zip(scale.iter()).map(|(&v, &s)| v * s).collect();
            let sample = UsageSample::from_subsamples(&realized)
                .expect("realized window is non-empty and finite");
            let value = metric.of(&sample);
            task.recorded.push(value);
            let mem = mem_model.usage_raw(
                task.id.job.0,
                task.id.index,
                task.limit,
                task.memory_limit,
                t,
                value,
            );
            observations.push((
                task.id,
                Res2::from_lanes([task.limit, task.memory_limit]),
                Res2::from_lanes([value, mem]),
            ));
        }
        self.view.observe_vec(t, observations);

        // Per-tick records.
        self.demand_peak
            .push(demand.iter().copied().fold(0.0, f64::max));
        self.realized_peak
            .push(realized_sum.iter().copied().fold(0.0, f64::max));
        self.realized_avg
            .push(realized_sum.iter().sum::<f64>() / SUBSAMPLES_PER_TICK as f64);
        self.limit_sum.push(self.total_limit());
        self.cached_prediction = clamp_prediction(self.predictor.predict(&self.view), &self.view);
        self.cached_mem_prediction = clamp_prediction_lane(
            self.predictor.predict_lane(&self.view, MEM),
            &self.view,
            MEM,
        );
        self.predictions.push(self.cached_prediction);
        self.mem_predictions.push(self.cached_mem_prediction);
        self.pending_limit = 0.0;
        self.pending_mem_limit = 0.0;

        // Retire tasks whose lifetime ends before the next tick.
        let next = t.plus(1);
        let mut i = 0;
        while i < self.live.len() {
            if self.live[i].end <= next {
                let task = self.live.swap_remove(i);
                self.finished.push(finish(task, None));
            } else {
                i += 1;
            }
        }
    }

    /// Ends the simulation at `horizon_end`, truncating still-running
    /// tasks, and returns every recorded task.
    pub fn finish(mut self, horizon_end: Tick) -> Vec<RecordedTask> {
        for task in self.live.drain(..) {
            self.finished.push(finish(task, Some(horizon_end)));
        }
        self.finished
    }

    /// Converts the machine's realized run into a [`MachineTrace`] suitable
    /// for post-hoc replay (oracle computation, violation accounting). Task
    /// samples are "flat" — every summary field carries the realized metric
    /// value — so any replay metric reads the same number.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the assembled trace is inconsistent
    /// (which would indicate a simulation bug).
    pub fn into_trace(self, horizon: TickRange) -> Result<MachineTrace, TraceError> {
        let capacity = self.capacity;
        let id = self.id;
        let true_peak = self.realized_peak.clone();
        let avg_usage = self.realized_avg.clone();
        let recorded = self.finish(horizon.end);
        let mut tasks = Vec::with_capacity(recorded.len());
        for r in recorded {
            let samples: Vec<UsageSample> = r
                .usage
                .iter()
                .map(|&v| UsageSample {
                    avg: v,
                    p50: v,
                    p90: v,
                    p95: v,
                    p99: v,
                    max: v,
                })
                .collect();
            tasks.push(TaskTrace::new(r.spec, samples)?);
        }
        tasks.sort_by_key(|t| (t.spec.start, t.spec.id));
        let trace = MachineTrace {
            machine: id,
            capacity,
            horizon,
            tasks,
            true_peak,
            avg_usage,
        };
        trace.validate()?;
        Ok(trace)
    }
}

/// Seals one live task into a [`RecordedTask`], truncating at the horizon
/// if given.
fn finish(task: LiveTask, horizon_end: Option<Tick>) -> RecordedTask {
    let mut end = task.end;
    let mut usage = task.recorded;
    if let Some(h) = horizon_end {
        end = Tick(end.index().min(h.index()));
    }
    // The recorded length is authoritative: the task ran exactly that many
    // ticks (admission mid-simulation means fewer than the nominal
    // runtime).
    let ran = usage.len() as u64;
    end = Tick(end.index().min(task.start.index() + ran));
    usage.truncate((end.index() - task.start.index()) as usize);
    RecordedTask {
        spec: TaskSpec {
            id: task.id,
            limit: task.limit,
            memory_limit: task.memory_limit,
            start: task.start,
            end,
            class: task.class,
            priority: task.priority,
        },
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_core::predictor::PredictorSpec;
    use oc_trace::cell::{CellConfig, CellPreset};
    use oc_trace::ids::JobId;

    fn request(job: u64, limit: f64, runtime: u64) -> TaskRequest {
        TaskRequest {
            id: TaskId::new(JobId(job), 0),
            limit,
            memory_limit: 0.05,
            runtime_ticks: runtime,
            class: SchedulingClass::Class2,
            priority: 200,
            job_seed: job,
            job_phase: 0.3,
            job_util_base: 0.5,
        }
    }

    fn machine(spec: &PredictorSpec) -> SimMachine {
        let cell = CellConfig::preset(CellPreset::A);
        SimMachine::new(
            MachineId(0),
            1.0,
            cell.usage,
            &SimConfig::default(),
            spec.build().unwrap(),
            42,
        )
    }

    #[test]
    fn admission_and_retirement() {
        let mut m = machine(&PredictorSpec::LimitSum);
        m.admit(&request(1, 0.3, 5), Tick(0));
        m.admit(&request(2, 0.2, 10), Tick(0));
        assert_eq!(m.live_count(), 2);
        assert!((m.total_limit() - 0.5).abs() < 1e-12);
        for t in 0..5u64 {
            m.advance(Tick(t));
        }
        assert_eq!(m.live_count(), 1, "5-tick task must have retired");
        for t in 5..10u64 {
            m.advance(Tick(t));
        }
        assert_eq!(m.live_count(), 0);
        let recorded = m.finish(Tick(10));
        assert_eq!(recorded.len(), 2);
        assert_eq!(recorded.iter().map(|r| r.usage.len()).sum::<usize>(), 15);
    }

    #[test]
    fn pending_limits_gate_admission() {
        let mut m = machine(&PredictorSpec::LimitSum);
        assert!(m.fits(0.6, 0.05));
        m.admit(&request(1, 0.6, 5), Tick(0));
        // Before any observation the prediction is stale (0) but the
        // pending limit already counts.
        assert!(!m.fits(0.6, 0.05));
        assert!(m.fits(0.4, 0.05));
    }

    #[test]
    fn memory_lane_gates_admission() {
        let mut m = machine(&PredictorSpec::LimitSum);
        // Plenty of CPU headroom, but a memory hog fills the memory lane.
        let mut hog = request(1, 0.1, 5);
        hog.memory_limit = 0.9;
        m.admit(&hog, Tick(0));
        // CPU alone would fit easily; the memory lane must reject.
        assert!(!m.fits(0.1, 0.2));
        assert!(m.fits(0.1, 0.05));
        // After observation, limit-sum predicts Σ memory limits too.
        m.advance(Tick(0));
        assert!((m.mem_predictions[0] - 0.9).abs() < 1e-12);
        assert!(!m.fits(0.1, 0.2));
    }

    #[test]
    fn throttling_caps_realized_usage() {
        // Grossly overcommit a tiny machine so demand exceeds capacity.
        let cell = CellConfig::preset(CellPreset::A);
        let mut m2 = SimMachine::new(
            MachineId(1),
            0.1,
            cell.usage,
            &SimConfig::default(),
            PredictorSpec::LimitSum.build().unwrap(),
            7,
        );
        for j in 0..10 {
            m2.admit(&request(j, 0.1, 50), Tick(0));
        }
        for t in 0..50u64 {
            m2.advance(Tick(t));
        }
        for (&peak, &demand) in m2.realized_peak.iter().zip(m2.demand_peak.iter()) {
            assert!(peak <= 0.1 + 1e-9, "realized peak {peak} above capacity");
            assert!(demand + 1e-12 >= peak);
        }
        // The uncapped demand must actually have exceeded capacity at
        // least once for this test to mean anything.
        assert!(m2.demand_peak.iter().any(|&d| d > 0.1));
    }

    #[test]
    fn batch_is_throttled_before_serving() {
        // A tiny machine hosting one serving and one batch task, both
        // demanding ~the whole capacity: the batch task must be squeezed
        // while the serving task keeps (almost) its demand.
        let cell = CellConfig::preset(CellPreset::A);
        let mut usage = cell.usage;
        usage.util_range = (0.85, 0.9);
        usage.spike_prob = 0.0;
        usage.job_spike_prob = 0.0;
        usage.subsample_sigma = 0.001;
        usage.warmup_ticks = 0;
        usage.diurnal_amp = (0.0, 0.001);
        usage.ou_sigma = (0.0001, 0.0002);
        let mut m = SimMachine::new(
            MachineId(0),
            1.0,
            usage,
            &SimConfig::default(),
            PredictorSpec::LimitSum.build().unwrap(),
            3,
        );
        let mut serving = request(1, 0.9, 30); // Class2 via the helper.
        serving.job_util_base = 0.88;
        let mut batch = request(2, 0.9, 30);
        batch.class = SchedulingClass::Class0;
        batch.job_util_base = 0.88;
        m.admit(&serving, Tick(0));
        m.admit(&batch, Tick(0));
        for t in 0..30u64 {
            m.advance(Tick(t));
        }
        let recorded = m.finish(Tick(30));
        let serving_mean: f64 = recorded[0].usage.iter().sum::<f64>() / 30.0;
        let batch_mean: f64 = recorded[1].usage.iter().sum::<f64>() / 30.0;
        let (serving_mean, batch_mean) = if recorded[0].spec.class.is_latency_sensitive() {
            (serving_mean, batch_mean)
        } else {
            (batch_mean, serving_mean)
        };
        // Serving keeps ~0.77 of limit demand (≈0.9 × 0.86 util); batch is
        // squeezed into the leftover ~0.3.
        assert!(
            serving_mean > 2.0 * batch_mean,
            "serving {serving_mean} vs batch {batch_mean}"
        );
    }

    #[test]
    fn prediction_updates_after_observation() {
        let mut m = machine(&PredictorSpec::borg_default());
        m.admit(&request(1, 0.5, 100), Tick(0));
        m.advance(Tick(0));
        // borg-default(0.9): prediction = 0.9 * 0.5.
        assert!((m.predictions[0] - 0.45).abs() < 1e-12);
        assert!((m.advertised_free() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn into_trace_roundtrips_validation() {
        let mut m = machine(&PredictorSpec::paper_max());
        m.admit(&request(1, 0.3, 30), Tick(0));
        for t in 0..20u64 {
            if t == 5 {
                m.admit(&request(2, 0.2, 8), Tick(5));
            }
            m.advance(Tick(t));
        }
        let trace = m.into_trace(TickRange::from_len(20)).unwrap();
        assert_eq!(trace.tasks.len(), 2);
        assert_eq!(trace.true_peak.len(), 20);
        // Task 1 was truncated at the horizon.
        assert_eq!(trace.tasks[0].spec.end, Tick(20));
        // Task 2 ran its full 8 ticks.
        assert_eq!(trace.tasks[1].spec.end, Tick(13));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut m = machine(&PredictorSpec::paper_max());
            m.admit(&request(1, 0.4, 40), Tick(0));
            for t in 0..40u64 {
                m.advance(Tick(t));
            }
            m.realized_avg.clone()
        };
        assert_eq!(run(), run());
    }
}
