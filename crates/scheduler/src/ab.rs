//! The production A/B experiment harness (Section 6 of the paper).
//!
//! The paper samples ≈24,000 machines *within shared production cells*,
//! deploys `max(N-sigma, RC-like)` to half (the experiment group) and
//! leaves the tuned borg-default policy on the other half (the control
//! group). Both groups serve the same task stream under the same
//! scheduler; only the machines' advertised free capacity differs. The
//! harness reproduces that design exactly: one cluster, one arrival
//! stream, predictors assigned to machines by parity. Every downstream
//! difference — how much workload a group attracts, how balanced it is,
//! how contended its machines get — is attributable to the policy.

use crate::cluster::{run_cluster_assigned, ClusterConfig, ClusterOutcome};
use crate::error::SchedulerError;
use crate::placement::PlacementPolicy;
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::{run_cell, CellRun};
use oc_qos::{LatencyModel, QosReport};
use oc_stats::percentile_slice;
use oc_trace::cell::CellConfig;
use oc_trace::ids::CellId;
use oc_trace::MachineTrace;

/// Configuration of one A/B experiment.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// Workload models and *total* machine count (both groups combined).
    pub cell: CellConfig,
    /// Mean job submissions per tick offered to the shared cluster.
    pub jobs_per_tick: f64,
    /// Experiment length in ticks (the paper runs 32 days).
    pub duration_ticks: u64,
    /// Node-agent configuration.
    pub sim: SimConfig,
    /// Policy of the control group (the paper: tuned borg-default).
    pub control: PredictorSpec,
    /// Policy of the experiment group (the paper: max(3σ, p80)).
    pub experiment: PredictorSpec,
    /// Bin-packing step, shared by the whole cluster.
    pub placement: PlacementPolicy,
    /// Arrival-stream seed.
    pub arrival_seed: u64,
    /// The contention → latency model.
    pub latency: LatencyModel,
    /// Worker threads for the post-hoc oracle replay.
    pub replay_threads: usize,
}

impl AbConfig {
    /// The paper's production setup, scaled down: borg-default(0.9) control
    /// vs max(N-sigma(3), RC-like(p80)) experiment, 32 simulated days.
    pub fn paper_default(cell: CellConfig, jobs_per_tick: f64) -> AbConfig {
        AbConfig {
            cell,
            jobs_per_tick,
            duration_ticks: 32 * oc_trace::time::TICKS_PER_DAY,
            sim: SimConfig::default(),
            control: PredictorSpec::borg_default(),
            experiment: PredictorSpec::production_max(),
            placement: PlacementPolicy::WorstFit,
            arrival_seed: 0xAB_2021,
            latency: LatencyModel::default(),
            replay_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Per-tick group aggregates extracted from the mixed cluster.
#[derive(Debug, Clone, Default)]
pub struct GroupStats {
    /// Per tick: Σ limits / Σ capacity over the group (Figure 13(d)).
    pub alloc_ratio: Vec<f64>,
    /// Per tick: Σ realized usage / Σ capacity (Figure 13(e)).
    pub usage_ratio: Vec<f64>,
    /// Per tick: relative savings `(ΣL − ΣP)/ΣL` (Figure 13(c)).
    pub savings: Vec<f64>,
}

/// Everything measured for one group.
#[derive(Debug)]
pub struct GroupOutcome {
    /// Group label (`"control"` / `"exp"`).
    pub name: String,
    /// Per-tick group aggregates.
    pub stats: GroupStats,
    /// Post-hoc oracle replay: per-machine violation rates, severities and
    /// savings under the group's own policy.
    pub replay: CellRun,
    /// Per-machine CPU scheduling latency series.
    pub latency: Vec<Vec<f64>>,
    /// Per-machine latency summaries.
    pub qos: Vec<QosReport>,
    /// Per-task mean latency over each task's lifetime (Figure 14(a)).
    pub task_latency: Vec<f64>,
    /// Per-machine median utilization (Figure 14(c)).
    pub util_p50: Vec<f64>,
    /// Per-machine mean utilization (Figure 14(d)).
    pub util_avg: Vec<f64>,
    /// Per-machine 99th-percentile utilization (Figure 14(e)).
    pub util_p99: Vec<f64>,
}

/// Control and experiment outcomes side by side.
#[derive(Debug)]
pub struct AbOutcome {
    /// The control group (even machine indices).
    pub control: GroupOutcome,
    /// The experiment group (odd machine indices).
    pub experiment: GroupOutcome,
    /// Fraction of offered tasks the shared cluster admitted.
    pub admission_rate: f64,
}

/// Runs the A/B experiment: one mixed cluster, groups split by machine
/// parity (even = control, odd = experiment).
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn run_ab(cfg: &AbConfig) -> Result<AbOutcome, SchedulerError> {
    let cluster_cfg = ClusterConfig {
        cell: cfg.cell.clone(),
        jobs_per_tick: cfg.jobs_per_tick,
        duration_ticks: cfg.duration_ticks,
        sim: cfg.sim.clone(),
        predictor: cfg.control.clone(),
        placement: cfg.placement,
        arrival_seed: cfg.arrival_seed,
    };
    let outcome = run_cluster_assigned(&cluster_cfg, |i| {
        if i % 2 == 0 {
            cfg.control.clone()
        } else {
            cfg.experiment.clone()
        }
    })?;
    let admission_rate = outcome.stats.admission_rate();
    let control = extract_group(cfg, &outcome, "control", &cfg.control, 0)?;
    let experiment = extract_group(cfg, &outcome, "exp", &cfg.experiment, 1)?;
    Ok(AbOutcome {
        control,
        experiment,
        admission_rate,
    })
}

/// Derives one group's metrics from the mixed-cluster outcome.
fn extract_group(
    cfg: &AbConfig,
    outcome: &ClusterOutcome,
    name: &str,
    predictor: &PredictorSpec,
    parity: usize,
) -> Result<GroupOutcome, SchedulerError> {
    let idx: Vec<usize> = (0..outcome.traces.len())
        .filter(|i| i % 2 == parity)
        .collect();
    let traces: Vec<MachineTrace> = idx.iter().map(|&i| outcome.traces[i].clone()).collect();
    let capacity: f64 = traces.iter().map(|m| m.capacity).sum();
    let n_ticks = cfg.duration_ticks as usize;

    // Per-tick group aggregates.
    let mut stats = GroupStats {
        alloc_ratio: vec![0.0; n_ticks],
        usage_ratio: vec![0.0; n_ticks],
        savings: vec![0.0; n_ticks],
    };
    let mut pred_sum = vec![0.0; n_ticks];
    let mut limit_sum = vec![0.0; n_ticks];
    for &i in &idx {
        for t in 0..n_ticks {
            limit_sum[t] += outcome.machine_limit[i][t];
            pred_sum[t] += outcome.machine_prediction[i][t];
            stats.usage_ratio[t] += outcome.machine_usage[i][t];
        }
    }
    for t in 0..n_ticks {
        stats.alloc_ratio[t] = limit_sum[t] / capacity;
        stats.usage_ratio[t] /= capacity;
        stats.savings[t] = if limit_sum[t] > 0.0 {
            (limit_sum[t] - pred_sum[t]) / limit_sum[t]
        } else {
            0.0
        };
    }

    // Post-hoc oracle replay for violation metrics.
    let replay = run_cell(
        CellId::new(name),
        &traces,
        &cfg.sim,
        std::slice::from_ref(predictor),
        cfg.replay_threads,
    )?;

    // QoS from uncapped demand.
    let mut latency = Vec::with_capacity(traces.len());
    let mut qos = Vec::with_capacity(traces.len());
    for (&i, m) in idx.iter().zip(traces.iter()) {
        let series =
            cfg.latency
                .machine_series(&outcome.demand_peak[i], m.capacity, u64::from(m.machine.0));
        qos.push(QosReport::from_series(&series).map_err(oc_core::CoreError::Stats)?);
        latency.push(series);
    }

    // Per-task mean latency over each task's lifetime. As in the paper's
    // production evaluation, only latency-sensitive serving tasks count —
    // batch tasks have no CPU-latency SLO.
    let mut task_latency = Vec::new();
    for (m, lat) in traces.iter().zip(latency.iter()) {
        for task in &m.tasks {
            if !task.spec.class.is_latency_sensitive() {
                continue;
            }
            let s = task.spec.start.index() as usize;
            let e = (task.spec.end.index() as usize).min(lat.len());
            if s < e {
                task_latency.push(lat[s..e].iter().sum::<f64>() / (e - s) as f64);
            }
        }
    }

    // Per-machine utilization percentiles.
    let mut util_p50 = Vec::with_capacity(traces.len());
    let mut util_avg = Vec::with_capacity(traces.len());
    let mut util_p99 = Vec::with_capacity(traces.len());
    for m in &traces {
        let util: Vec<f64> = m.avg_usage.iter().map(|&u| u / m.capacity).collect();
        util_p50.push(percentile_slice(&util, 50.0).map_err(oc_core::CoreError::Stats)?);
        util_avg.push(util.iter().sum::<f64>() / util.len().max(1) as f64);
        util_p99.push(percentile_slice(&util, 99.0).map_err(oc_core::CoreError::Stats)?);
    }

    Ok(GroupOutcome {
        name: name.into(),
        stats,
        replay,
        latency,
        qos,
        task_latency,
        util_p50,
        util_avg,
        util_p99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::CellPreset;

    fn tiny_ab() -> AbConfig {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.machines = 6;
        let mut cfg = AbConfig::paper_default(cell, 0.5);
        cfg.duration_ticks = 240;
        cfg.replay_threads = 2;
        cfg
    }

    #[test]
    fn ab_runs_and_reports() {
        let out = run_ab(&tiny_ab()).unwrap();
        assert_eq!(out.control.name, "control");
        assert_eq!(out.experiment.name, "exp");
        assert!((0.0..=1.0).contains(&out.admission_rate));
        for g in [&out.control, &out.experiment] {
            assert_eq!(g.qos.len(), 3);
            assert_eq!(g.util_p50.len(), 3);
            assert_eq!(g.replay.results.len(), 3);
            assert!(!g.task_latency.is_empty());
            assert_eq!(g.stats.alloc_ratio.len(), 240);
            assert_eq!(g.stats.savings.len(), 240);
            for (p50, (avg, p99)) in g
                .util_p50
                .iter()
                .zip(g.util_avg.iter().zip(g.util_p99.iter()))
            {
                assert!(p50 <= p99, "median utilization above p99");
                assert!(*avg >= 0.0 && *avg <= 1.0);
            }
        }
    }

    #[test]
    fn groups_partition_the_cluster() {
        let out = run_ab(&tiny_ab()).unwrap();
        // Machines split by parity: ids 0,2,4 control; 1,3,5 experiment.
        let c: Vec<u32> = out
            .control
            .replay
            .results
            .iter()
            .map(|r| r.machine.0)
            .collect();
        let e: Vec<u32> = out
            .experiment
            .replay
            .results
            .iter()
            .map(|r| r.machine.0)
            .collect();
        assert_eq!(c, vec![0, 2, 4]);
        assert_eq!(e, vec![1, 3, 5]);
    }

    #[test]
    fn control_savings_are_borg_shaped() {
        // Once loaded, the control group's savings sit at exactly 10 %
        // (borg-default 0.9): its predictions are always 0.9 ΣL.
        let out = run_ab(&tiny_ab()).unwrap();
        let s = &out.control.stats.savings;
        for (i, v) in s.iter().enumerate().skip(10) {
            assert!((v - 0.1).abs() < 1e-9, "tick {i}: control savings {v}");
        }
    }

    #[test]
    fn deterministic() {
        let a = run_ab(&tiny_ab()).unwrap();
        let b = run_ab(&tiny_ab()).unwrap();
        assert_eq!(
            a.experiment.stats.usage_ratio,
            b.experiment.stats.usage_ratio
        );
        assert_eq!(a.admission_rate, b.admission_rate);
    }
}
