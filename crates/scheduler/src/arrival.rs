//! Cell-wide task arrival stream for the live scheduler.
//!
//! Unlike the trace generator (which refills each machine independently to
//! a target, replaying fixed placements), the live scheduler receives a
//! single cluster-wide stream of job submissions and must *place* them.
//! The stream reuses the trace substrate's workload models — runtime
//! mixture, limit distribution, usage-process parameters, job structure —
//! so that both evaluation modes see the same kind of workload.
//!
//! The stream is deterministic given its seed and is independent of what
//! the scheduler admits, which is what makes A/B experiments fair: the
//! control and experiment clusters are offered byte-identical submissions.

use oc_trace::cell::CellConfig;
use oc_trace::gen::{dist, splitmix};
use oc_trace::ids::{JobId, TaskId};
use oc_trace::task::SchedulingClass;
use oc_trace::time::{Tick, TICKS_PER_HOUR};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One task submission offered to the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRequest {
    /// Task identity.
    pub id: TaskId,
    /// CPU limit in normalized machine-capacity units.
    pub limit: f64,
    /// Memory limit in normalized machine-memory units.
    pub memory_limit: f64,
    /// Requested runtime in ticks (the scheduler learns this only by the
    /// task finishing; it is carried here for bookkeeping).
    pub runtime_ticks: u64,
    /// Latency-sensitivity class.
    pub class: SchedulingClass,
    /// Priority.
    pub priority: u16,
    /// Shared per-job seed for the usage process (sibling correlation).
    pub job_seed: u64,
    /// Shared per-job diurnal phase.
    pub job_phase: f64,
    /// Shared per-job base utilization level.
    pub job_util_base: f64,
}

/// Deterministic cluster-wide arrival stream.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    cfg: CellConfig,
    /// Mean job submissions per tick.
    jobs_per_tick: f64,
    rng: SmallRng,
    next_job: u64,
}

impl ArrivalStream {
    /// Creates a stream drawing workload models from `cfg`, offering on
    /// average `jobs_per_tick` job submissions per tick.
    pub fn new(cfg: CellConfig, jobs_per_tick: f64, seed: u64) -> ArrivalStream {
        ArrivalStream {
            rng: SmallRng::seed_from_u64(splitmix(seed ^ 0x0A88_14A1)),
            cfg,
            jobs_per_tick: jobs_per_tick.max(0.0),
            next_job: 0,
        }
    }

    /// The mean job submissions per tick.
    pub fn jobs_per_tick(&self) -> f64 {
        self.jobs_per_tick
    }

    /// Draws the submissions for tick `t` (possibly empty). The arrival
    /// intensity follows the cell's diurnal amplitude, as in Figure 4.
    pub fn tick(&mut self, t: Tick) -> Vec<TaskRequest> {
        let diurnal =
            1.0 + self.cfg.arrival_diurnal_amp * (std::f64::consts::TAU * t.day_fraction()).sin();
        let mean = self.jobs_per_tick * diurnal;
        let jobs = dist::poisson(&mut self.rng, mean);
        let mut out = Vec::new();
        for _ in 0..jobs {
            self.draw_job(&mut out);
        }
        out
    }

    /// Draws one job's task submissions into `out`.
    fn draw_job(&mut self, out: &mut Vec<TaskRequest>) {
        let cfg = &self.cfg;
        self.next_job += 1;
        let id = JobId(self.next_job);
        let count = self
            .rng
            .random_range(cfg.tasks_per_job.0..=cfg.tasks_per_job.1);
        let limit = dist::lognormal(&mut self.rng, cfg.limits.log_mean, cfg.limits.log_sigma)
            .clamp(cfg.limits.min, cfg.limits.max);
        // Same distribution the trace generator uses for job templates.
        let memory_limit = dist::lognormal(&mut self.rng, (0.04f64).ln(), 0.8).clamp(0.005, 0.5);
        let serving = self.rng.random::<f64>() < cfg.serving_fraction;
        let (class, priority) = if serving {
            if self.rng.random::<f64>() < 0.5 {
                (SchedulingClass::Class2, 200)
            } else {
                (SchedulingClass::Class3, 360)
            }
        } else if self.rng.random::<f64>() < 0.5 {
            (SchedulingClass::Class0, 25)
        } else {
            (SchedulingClass::Class1, 100)
        };
        let job_seed = splitmix(cfg.seed ^ splitmix(id.0));
        let job_phase =
            cfg.diurnal_phase + dist::normal(&mut self.rng, 0.0, cfg.usage.diurnal_phase_jitter);
        let job_util_base = oc_trace::gen::usage::draw_job_base(&mut self.rng, &cfg.usage);
        for index in 0..count {
            let runtime = self.draw_runtime_ticks();
            out.push(TaskRequest {
                id: TaskId::new(id, index),
                limit,
                memory_limit,
                runtime_ticks: runtime,
                class,
                priority,
                job_seed,
                job_phase,
                job_util_base,
            });
        }
    }

    /// Draws a runtime from the cell's two-component lognormal mixture.
    fn draw_runtime_ticks(&mut self) -> u64 {
        let m = &self.cfg.runtime;
        let hours = if self.rng.random::<f64>() < m.short_frac {
            dist::lognormal(&mut self.rng, m.short_median_hours.ln(), m.short_sigma)
        } else {
            dist::lognormal(&mut self.rng, m.long_median_hours.ln(), m.long_sigma)
        };
        let hours = hours.min(m.max_hours);
        ((hours * TICKS_PER_HOUR as f64).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::CellPreset;

    fn stream(jobs_per_tick: f64, seed: u64) -> ArrivalStream {
        ArrivalStream::new(CellConfig::preset(CellPreset::A), jobs_per_tick, seed)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = stream(2.0, 7);
        let mut b = stream(2.0, 7);
        for t in 0..50u64 {
            assert_eq!(a.tick(Tick(t)), b.tick(Tick(t)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream(2.0, 7);
        let mut b = stream(2.0, 8);
        let all_a: Vec<_> = (0..50).flat_map(|t| a.tick(Tick(t))).collect();
        let all_b: Vec<_> = (0..50).flat_map(|t| b.tick(Tick(t))).collect();
        assert_ne!(all_a, all_b);
    }

    #[test]
    fn mean_rate_is_respected() {
        let mut s = stream(3.0, 1);
        let mut jobs = std::collections::HashSet::new();
        let ticks = 2000u64;
        for t in 0..ticks {
            for req in s.tick(Tick(t)) {
                jobs.insert(req.id.job);
            }
        }
        let rate = jobs.len() as f64 / ticks as f64;
        assert!((rate - 3.0).abs() < 0.3, "job rate {rate}");
    }

    #[test]
    fn siblings_share_job_parameters() {
        let mut s = stream(5.0, 3);
        let mut saw_multi_task_job = false;
        for t in 0..20u64 {
            let reqs = s.tick(Tick(t));
            let mut by_job: std::collections::HashMap<_, Vec<&TaskRequest>> =
                std::collections::HashMap::new();
            for r in &reqs {
                by_job.entry(r.id.job).or_default().push(r);
            }
            for sibs in by_job.values().filter(|v| v.len() > 1) {
                saw_multi_task_job = true;
                let first = sibs[0];
                for sib in &sibs[1..] {
                    assert_eq!(sib.limit, first.limit);
                    assert_eq!(sib.class, first.class);
                    assert_eq!(sib.job_seed, first.job_seed);
                    assert_eq!(sib.job_phase, first.job_phase);
                }
            }
        }
        assert!(saw_multi_task_job, "no multi-task job in 20 ticks");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut s = stream(0.0, 1);
        for t in 0..100u64 {
            assert!(s.tick(Tick(t)).is_empty());
        }
    }

    #[test]
    fn task_requests_are_valid() {
        let mut s = stream(4.0, 9);
        for t in 0..200u64 {
            for req in s.tick(Tick(t)) {
                assert!(req.limit > 0.0 && req.limit <= 1.0);
                assert!(req.runtime_ticks >= 1);
            }
        }
    }
}
