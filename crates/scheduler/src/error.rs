//! Error type for cluster simulation.

use std::fmt;

/// Errors produced by the cluster scheduler substrate.
#[derive(Debug)]
pub enum SchedulerError {
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// An error from the overcommit core (predictor build, replay).
    Core(oc_core::CoreError),
    /// An error from the trace substrate (workload models).
    Trace(oc_trace::TraceError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            SchedulerError::Core(e) => write!(f, "core error: {e}"),
            SchedulerError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedulerError::Core(e) => Some(e),
            SchedulerError::Trace(e) => Some(e),
            SchedulerError::InvalidConfig { .. } => None,
        }
    }
}

impl From<oc_core::CoreError> for SchedulerError {
    fn from(e: oc_core::CoreError) -> Self {
        SchedulerError::Core(e)
    }
}

impl From<oc_trace::TraceError> for SchedulerError {
    fn from(e: oc_trace::TraceError) -> Self {
        SchedulerError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SchedulerError::InvalidConfig {
            what: "machines must be > 0".into(),
        };
        assert!(e.to_string().contains("machines"));
        assert!(e.source().is_none());
        let e = SchedulerError::from(oc_core::CoreError::InvalidConfig { what: "x".into() });
        assert!(e.source().is_some());
    }
}
