//! The live cluster: arrival-driven, predictor-gated scheduling.
//!
//! Each tick the cluster (1) collects the tick's task submissions from the
//! arrival stream, (2) runs the two-step scheduling of Section 2.1 —
//! feasibility filtering via each machine's advertised free capacity, then
//! bin-packing via a [`PlacementPolicy`] — and (3) advances every machine's
//! usage, throttling contention and updating node-agent state. Submissions
//! that fit nowhere are rejected and counted (a real cell would queue or
//! spill them to another cell; either way they are workload the cluster
//! could not take, which is exactly what the savings comparison measures).

use crate::arrival::ArrivalStream;
use crate::error::SchedulerError;
use crate::machine::SimMachine;
use crate::placement::PlacementPolicy;
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_trace::cell::CellConfig;
use oc_trace::gen::splitmix;
use oc_trace::ids::MachineId;
use oc_trace::time::{Tick, TickRange};
use oc_trace::MachineTrace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of one live-cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Workload models, machine count, capacity and seed.
    pub cell: CellConfig,
    /// Mean job submissions offered per tick.
    pub jobs_per_tick: f64,
    /// Run length in ticks.
    pub duration_ticks: u64,
    /// Node-agent configuration (metric, warm-up, history).
    pub sim: SimConfig,
    /// The overcommit policy deployed on every machine.
    pub predictor: PredictorSpec,
    /// The bin-packing step.
    pub placement: PlacementPolicy,
    /// Seed of the arrival stream (shared across A/B groups).
    pub arrival_seed: u64,
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::InvalidConfig`] for an empty cluster or
    /// zero duration, and propagates cell/sim/predictor validation.
    pub fn validate(&self) -> Result<(), SchedulerError> {
        self.cell.validate()?;
        self.sim.validate()?;
        self.predictor.validate()?;
        if self.duration_ticks == 0 {
            return Err(SchedulerError::InvalidConfig {
                what: "duration must be positive".into(),
            });
        }
        if !(self.jobs_per_tick >= 0.0) {
            return Err(SchedulerError::InvalidConfig {
                what: "jobs_per_tick must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Per-run cluster statistics.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Tasks admitted.
    pub admitted: u64,
    /// Tasks rejected (no feasible machine).
    pub rejected: u64,
    /// Per tick: Σ limits of running tasks / Σ capacity (Figure 13(d)).
    pub alloc_ratio: Vec<f64>,
    /// Per tick: Σ realized usage / Σ capacity (Figure 13(e)).
    pub usage_ratio: Vec<f64>,
    /// Per tick: Σ limits (for savings normalization).
    pub limit_sum: Vec<f64>,
    /// Per tick: Σ predicted peaks across machines.
    pub prediction_sum: Vec<f64>,
}

impl ClusterStats {
    /// Fraction of offered tasks the cluster admitted.
    pub fn admission_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.admitted as f64 / total as f64
        }
    }

    /// Per-tick relative savings `(ΣL − ΣP)/ΣL` (Figure 13(c)).
    pub fn savings_series(&self) -> Vec<f64> {
        self.limit_sum
            .iter()
            .zip(self.prediction_sum.iter())
            .map(|(&l, &p)| if l > 0.0 { (l - p) / l } else { 0.0 })
            .collect()
    }
}

/// Outcome of a completed cluster run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Run statistics.
    pub stats: ClusterStats,
    /// Per-machine realized traces (sorted by machine id), ready for
    /// post-hoc oracle replay.
    pub traces: Vec<MachineTrace>,
    /// Per-machine uncapped demand-peak series (drives the QoS model).
    pub demand_peak: Vec<Vec<f64>>,
    /// Per-machine per-tick Σ limits.
    pub machine_limit: Vec<Vec<f64>>,
    /// Per-machine per-tick predicted peaks.
    pub machine_prediction: Vec<Vec<f64>>,
    /// Per-machine per-tick realized average usage.
    pub machine_usage: Vec<Vec<f64>>,
}

/// Runs one cluster for the configured duration.
///
/// # Errors
///
/// Returns configuration errors up front and internal consistency errors
/// (simulation bugs) from trace assembly.
pub fn run_cluster(cfg: &ClusterConfig) -> Result<ClusterOutcome, SchedulerError> {
    run_cluster_assigned(cfg, |_| cfg.predictor.clone())
}

/// Runs one cluster where machine `i` deploys `assign(i)` as its policy.
///
/// This is the paper's actual A/B design: control and experiment machines
/// live in the *same* cells, managed by the same scheduler, competing for
/// the same task stream — only their on-board overcommit policies differ.
///
/// # Errors
///
/// As [`run_cluster`].
pub fn run_cluster_assigned(
    cfg: &ClusterConfig,
    assign: impl Fn(usize) -> PredictorSpec,
) -> Result<ClusterOutcome, SchedulerError> {
    cfg.validate()?;
    let mut machines: Vec<SimMachine> = (0..cfg.cell.machines)
        .map(|i| {
            let spec = assign(i);
            spec.validate()?;
            Ok(SimMachine::new(
                MachineId(i as u32),
                cfg.cell.capacity,
                cfg.cell.usage,
                &cfg.sim,
                spec.build()?,
                cfg.cell.seed,
            ))
        })
        .collect::<Result<_, SchedulerError>>()?;
    let mut stream = ArrivalStream::new(cfg.cell.clone(), cfg.jobs_per_tick, cfg.arrival_seed);
    let mut place_rng = SmallRng::seed_from_u64(splitmix(cfg.arrival_seed ^ 0x91ACE));
    let mut stats = ClusterStats::default();
    let total_capacity: f64 = machines.iter().map(SimMachine::capacity).sum();

    for ti in 0..cfg.duration_ticks {
        let t = Tick(ti);

        // --- Scheduling ----------------------------------------------------
        for req in stream.tick(t) {
            let candidates: Vec<(usize, f64)> = machines
                .iter()
                .enumerate()
                .filter(|(_, m)| m.fits(req.limit, req.memory_limit))
                .map(|(i, m)| (i, m.advertised_free()))
                .collect();
            match cfg.placement.choose(&candidates, &mut place_rng) {
                Some(i) => {
                    machines[i].admit(&req, t);
                    stats.admitted += 1;
                }
                None => stats.rejected += 1,
            }
        }

        // --- Usage ---------------------------------------------------------
        let mut limit = 0.0;
        let mut usage = 0.0;
        let mut pred = 0.0;
        for m in machines.iter_mut() {
            m.advance(t);
            limit += m.limit_sum.last().copied().unwrap_or(0.0);
            usage += m.realized_avg.last().copied().unwrap_or(0.0);
            pred += m.predictions.last().copied().unwrap_or(0.0);
        }
        stats.alloc_ratio.push(limit / total_capacity);
        stats.usage_ratio.push(usage / total_capacity);
        stats.limit_sum.push(limit);
        stats.prediction_sum.push(pred);
    }

    let horizon = TickRange::from_len(cfg.duration_ticks);
    let mut traces = Vec::with_capacity(machines.len());
    let mut demand_peak = Vec::with_capacity(machines.len());
    let mut machine_limit = Vec::with_capacity(machines.len());
    let mut machine_prediction = Vec::with_capacity(machines.len());
    let mut machine_usage = Vec::with_capacity(machines.len());
    for m in machines {
        demand_peak.push(m.demand_peak.clone());
        machine_limit.push(m.limit_sum.clone());
        machine_prediction.push(m.predictions.clone());
        machine_usage.push(m.realized_avg.clone());
        traces.push(m.into_trace(horizon)?);
    }
    Ok(ClusterOutcome {
        stats,
        traces,
        demand_peak,
        machine_limit,
        machine_prediction,
        machine_usage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::CellPreset;

    fn small_cfg(predictor: PredictorSpec) -> ClusterConfig {
        let mut cell = CellConfig::preset(CellPreset::A);
        cell.machines = 4;
        ClusterConfig {
            cell,
            jobs_per_tick: 1.0,
            duration_ticks: 200,
            sim: SimConfig::default(),
            predictor,
            placement: PlacementPolicy::WorstFit,
            arrival_seed: 11,
        }
    }

    #[test]
    fn cluster_admits_and_fills() {
        let out = run_cluster(&small_cfg(PredictorSpec::LimitSum)).unwrap();
        assert!(out.stats.admitted > 0);
        assert_eq!(out.stats.alloc_ratio.len(), 200);
        assert_eq!(out.traces.len(), 4);
        // With no overcommit, Σ limits per machine never exceeds capacity.
        for trace in &out.traces {
            for tick in (0..200).map(Tick) {
                assert!(
                    trace.total_limit_at(tick) <= trace.capacity + 1e-9,
                    "machine {} overcommitted under limit-sum",
                    trace.machine
                );
            }
        }
    }

    #[test]
    fn overcommit_admits_more_than_no_overcommit() {
        let base = run_cluster(&small_cfg(PredictorSpec::LimitSum)).unwrap();
        let over = run_cluster(&small_cfg(PredictorSpec::production_max())).unwrap();
        assert!(
            over.stats.admitted >= base.stats.admitted,
            "overcommit {} vs baseline {}",
            over.stats.admitted,
            base.stats.admitted
        );
        // Saturated clusters must actually reject something for the
        // comparison to be meaningful.
        assert!(base.stats.rejected > 0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run_cluster(&small_cfg(PredictorSpec::paper_max())).unwrap();
        let b = run_cluster(&small_cfg(PredictorSpec::paper_max())).unwrap();
        assert_eq!(a.stats.admitted, b.stats.admitted);
        assert_eq!(a.stats.usage_ratio, b.stats.usage_ratio);
    }

    #[test]
    fn savings_series_and_admission_rate() {
        let out = run_cluster(&small_cfg(PredictorSpec::borg_default())).unwrap();
        let savings = out.stats.savings_series();
        assert_eq!(savings.len(), 200);
        // borg-default predicts 0.9 ΣL, so savings are exactly 10 %.
        for (i, s) in savings.iter().enumerate().skip(1) {
            assert!((s - 0.1).abs() < 1e-9, "tick {i}: savings {s}");
        }
        let rate = out.stats.admission_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_cfg(PredictorSpec::LimitSum);
        cfg.duration_ticks = 0;
        assert!(run_cluster(&cfg).is_err());
        let mut cfg = small_cfg(PredictorSpec::LimitSum);
        cfg.jobs_per_tick = f64::NAN;
        assert!(run_cluster(&cfg).is_err());
    }
}
