//! Cluster scheduler substrate: predictor-gated admission, placement, and
//! the A/B experiment harness.
//!
//! The paper's contribution plugs into the *first* step of scheduling —
//! estimating each machine's free capacity — and leaves the bin-packing
//! step untouched. This crate provides the surrounding scheduler so that
//! the production evaluation (Section 6) can be reproduced:
//!
//! * [`arrival`] — a deterministic cluster-wide submission stream reusing
//!   the trace substrate's workload models.
//! * [`machine`] — live machines with usage processes, proportional
//!   throttling under contention, node-agent views and on-board
//!   predictors.
//! * [`placement`] — first/best/worst-fit and Borg-style randomized-k
//!   placement.
//! * [`cluster`] — the arrival-driven loop gluing the above together.
//! * [`ab`] — the control-vs-experiment harness behind Figures 13 and 14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod arrival;
pub mod cluster;
pub mod error;
pub mod machine;
pub mod placement;

pub use ab::{run_ab, AbConfig, AbOutcome, GroupOutcome};
pub use arrival::{ArrivalStream, TaskRequest};
pub use cluster::{run_cluster, run_cluster_assigned, ClusterConfig, ClusterOutcome, ClusterStats};
pub use error::SchedulerError;
pub use machine::{RecordedTask, SimMachine};
pub use placement::PlacementPolicy;
