//! Figure 10: the four-policy comparison on trace cell `a`.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_core::config::SimConfig;
use oc_core::metrics::VIOLATION_EPS;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::{run_cell_streaming, CellRun};
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// Per-tick violation severities pooled over all machines of a run.
pub(crate) fn tick_severities(run: &CellRun, idx: usize) -> Vec<f64> {
    let mut out = Vec::new();
    for r in &run.results {
        let series = r.series.as_ref().expect("series recording enabled");
        for (p, po) in series.predictions[idx].iter().zip(series.oracle.iter()) {
            let sev = if *p + VIOLATION_EPS < *po && *po > 0.0 {
                (po - p) / po
            } else {
                0.0
            };
            out.push(sev);
        }
    }
    out
}

/// Runs the Figure 10 reproduction: violation-rate, severity, per-machine
/// savings and cell-level savings CDFs for borg-default, RC-like(p99),
/// N-sigma(5) and max(N-sigma, RC-like) on one week of cell `a`.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig10", "predictor comparison on cell a");
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let specs = PredictorSpec::comparison_set();
    let cfg = SimConfig::default().with_series();
    let run = run_cell_streaming(&gen, &cfg, &specs, opts.threads)?;

    let mut viol = Table::new(&cdf_header("predictor (violation rate)"));
    let mut sev = Table::new(&cdf_header("predictor (tick severity)"));
    let mut msave = Table::new(&cdf_header("predictor (machine savings)"));
    let mut csave = Table::new(&cdf_header("predictor (cell savings)"));
    let mut viol_csv = Vec::new();
    let mut save_csv = Vec::new();

    for (i, name) in run.predictors.iter().enumerate() {
        let rates = run.violation_rates(i);
        viol.row(cdf_row(name, &rates));
        sev.row(cdf_row(name, &tick_severities(&run, i)));
        msave.row(cdf_row(name, &run.machine_savings(i)));
        let cell_savings = run.cell_savings_series(i).expect("series enabled");
        csave.row(cdf_row(name, &cell_savings));
        viol_csv.push((name.clone(), rates));
        save_csv.push((name.clone(), cell_savings));
    }
    println!("(a) per-machine violation rate");
    viol.print();
    println!("(b) violation severity (per machine-tick)");
    sev.print();
    println!("(c) per-machine savings");
    msave.print();
    println!("(d) cell-level savings");
    csave.print();

    // Headline ordering claims.
    let med = |i: usize| oc_stats::percentile_slice(&run.violation_rates(i), 50.0).unwrap_or(0.0);
    let mean_save = |i: usize| {
        let s = run.cell_savings_series(i).expect("series enabled");
        s.iter().sum::<f64>() / s.len().max(1) as f64
    };
    let idx_borg = 0;
    let idx_rc = 1;
    let idx_nsigma = 2;
    let idx_max = 3;
    claim(
        "max beats N-sigma beats {RC-like, borg-default} on median violation rate",
        format!(
            "max {:.4} ≤ n-sigma {:.4} ≤ min(rc {:.4}, borg {:.4})",
            med(idx_max),
            med(idx_nsigma),
            med(idx_rc),
            med(idx_borg)
        ),
        "same ordering (Fig. 10(a))",
    );
    claim(
        "borg-default cell savings are pinned at 10%",
        format!("{:.4}", mean_save(idx_borg)),
        "exactly 0.10",
    );
    claim(
        "RC-like generates the highest savings",
        format!(
            "rc {:.3} vs n-sigma {:.3} vs max {:.3}",
            mean_save(idx_rc),
            mean_save(idx_nsigma),
            mean_save(idx_max)
        ),
        "RC-like highest; max slightly above N-sigma",
    );

    crate::plot::maybe_plot(opts, "fig10(a): per-machine violation rate", &viol_csv);
    crate::plot::maybe_plot(opts, "fig10(d): cell-level savings", &save_csv);
    write_cdf_csv(&opts.csv("fig10a_violation_rate.csv"), &viol_csv)?;
    write_cdf_csv(&opts.csv("fig10d_cell_savings.csv"), &save_csv)?;
    Ok(())
}
