//! Terminal CDF plots.
//!
//! The paper's figures are almost all CDFs; with `--plot` the `repro`
//! binary renders them directly in the terminal so the shapes can be
//! eyeballed without an external plotting step. Rendering is plain
//! ASCII-art on a fixed character grid — deterministic and testable.

use oc_stats::Ecdf;

/// Width of the plot area in characters.
const WIDTH: usize = 64;
/// Height of the plot area in rows.
const HEIGHT: usize = 16;
/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders the CDFs of the named series onto one grid.
///
/// The x-axis spans the pooled min..max of all series; the y-axis is the
/// cumulative probability 0..1. Later series overdraw earlier ones where
/// they collide. Returns an empty string if no series has samples.
pub fn render_cdfs(series: &[(String, Vec<f64>)]) -> String {
    let populated: Vec<(&str, Ecdf)> = series
        .iter()
        .filter_map(|(name, xs)| Ecdf::new(xs.clone()).ok().map(|e| (name.as_str(), e)))
        .collect();
    if populated.is_empty() {
        return String::new();
    }
    let lo = populated
        .iter()
        .map(|(_, e)| e.min())
        .fold(f64::INFINITY, f64::min);
    let hi = populated
        .iter()
        .map(|(_, e)| e.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };

    let mut grid = vec![[' '; WIDTH]; HEIGHT];
    for (idx, (_, e)) in populated.iter().enumerate() {
        let glyph = GLYPHS[idx % GLYPHS.len()];
        for col in 0..WIDTH {
            let x = lo + span * col as f64 / (WIDTH - 1) as f64;
            let p = e.prob_le(x);
            // Row 0 is the top (p = 1).
            let row = ((1.0 - p) * (HEIGHT - 1) as f64).round() as usize;
            grid[row.min(HEIGHT - 1)][col] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let p = 1.0 - r as f64 / (HEIGHT - 1) as f64;
        out.push_str(&format!("{p:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("     +{}\n", "-".repeat(WIDTH)));
    out.push_str(&format!(
        "      {:<w$.4}{:>w2$.4}\n",
        lo,
        hi,
        w = WIDTH / 2,
        w2 = WIDTH / 2
    ));
    for (idx, (name, _)) in populated.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", GLYPHS[idx % GLYPHS.len()], name));
    }
    out
}

/// Prints the plot when plotting is enabled in `opts`.
pub fn maybe_plot(opts: &crate::common::Opts, title: &str, series: &[(String, Vec<f64>)]) {
    if !opts.plot {
        return;
    }
    let rendered = render_cdfs(series);
    if !rendered.is_empty() {
        println!("\n  [plot] {title}");
        print!("{rendered}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_grid_with_legend() {
        let s = vec![
            ("uniform".to_string(), (0..100).map(|i| i as f64).collect()),
            ("point".to_string(), vec![50.0; 10]),
        ];
        let out = render_cdfs(&s);
        let lines: Vec<&str> = out.lines().collect();
        // HEIGHT rows + axis + labels + 2 legend lines.
        assert_eq!(lines.len(), HEIGHT + 2 + 2);
        assert!(lines[0].starts_with("1.00 |"));
        assert!(out.contains("* uniform"));
        assert!(out.contains("o point"));
        // The point-mass series jumps from bottom to top around x = 50.
        assert!(out.contains('o'));
    }

    #[test]
    fn empty_series_render_nothing() {
        assert!(render_cdfs(&[]).is_empty());
        assert!(render_cdfs(&[("e".to_string(), vec![])]).is_empty());
    }

    #[test]
    fn monotone_coverage() {
        // A single uniform series must paint every column exactly once.
        let s = vec![("u".to_string(), (0..1000).map(|i| i as f64).collect())];
        let out = render_cdfs(&s);
        for line in out.lines().take(HEIGHT) {
            let body = &line[6..];
            assert_eq!(body.chars().count(), WIDTH);
        }
        let stars: usize = out
            .lines()
            .take(HEIGHT)
            .map(|l| l.matches('*').count())
            .sum();
        assert_eq!(stars, WIDTH, "each column painted once");
    }

    #[test]
    fn deterministic() {
        let s = vec![("d".to_string(), vec![1.0, 5.0, 2.0, 8.0, 3.0])];
        assert_eq!(render_cdfs(&s), render_cdfs(&s));
    }
}
