//! Figure 6: estimating the machine-level peak from per-task within-window
//! percentiles.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::sample::UsageMetric;
use std::error::Error;

/// The per-task percentiles the paper sweeps.
const PERCENTILES: [f64; 7] = [50.0, 60.0, 70.0, 80.0, 90.0, 95.0, 100.0];

/// Runs the Figure 6 reproduction.
///
/// For every machine-tick of cell `a`, estimates the machine-level peak as
/// the sum of each running task's `k`-th within-window usage percentile
/// and compares it against the ground-truth within-tick machine peak —
/// which only exists because the generator (like Borg, unlike the public
/// trace) knows the instantaneous series. The paper picks the 90th
/// percentile since it exceeds the actual peak ≈95 % of the time while
/// the sum of task maxima wildly overestimates.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig6", "Σ per-task k%ile vs actual machine peak (cell a)");
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;

    let mut diffs: Vec<Vec<f64>> = vec![Vec::new(); PERCENTILES.len()];
    for m in &machines {
        for t in m.horizon.iter() {
            let Some(actual) = m.true_peak_at(t) else {
                continue;
            };
            let mut approx = [0.0f64; PERCENTILES.len()];
            for task in m.tasks_at(t) {
                let Some(s) = task.sample_at(t) else { continue };
                for (j, &p) in PERCENTILES.iter().enumerate() {
                    approx[j] += UsageMetric::interpolate(s, p);
                }
            }
            for (j, &a) in approx.iter().enumerate() {
                diffs[j].push(a - actual);
            }
        }
    }

    let mut t = Table::new(&cdf_header("estimator (approx − actual)"));
    let mut csv = Vec::new();
    let mut frac_safe_90 = 0.0;
    for (j, &p) in PERCENTILES.iter().enumerate() {
        let name = format!("sum({p:.0}%ile)");
        t.row(cdf_row(&name, &diffs[j]));
        let safe =
            diffs[j].iter().filter(|&&d| d >= 0.0).count() as f64 / diffs[j].len().max(1) as f64;
        if p == 90.0 {
            frac_safe_90 = safe;
        }
        csv.push((name, std::mem::take(&mut diffs[j])));
    }
    t.print();
    claim(
        "P(Σ 90%ile ≥ actual peak)",
        format!("{:.1}%", 100.0 * frac_safe_90),
        "> 95% of the time",
    );
    write_cdf_csv(&opts.csv("fig6.csv"), &csv)?;
    Ok(())
}
