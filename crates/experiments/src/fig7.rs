//! Figure 7: exploratory analysis configuring the oracle and borg-default.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_core::oracle::machine_oracle;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::sample::UsageMetric;
use oc_trace::time::TICKS_PER_HOUR;
use std::error::Error;

/// Runs Figure 7(a): task-runtime CDFs across cells.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run_a(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig7a", "task runtime CDFs per cell");
    let mut t = Table::new(&cdf_header("cell (runtime hours)"));
    let mut csv = Vec::new();
    let mut under_24 = Vec::new();
    for preset in CellConfig::trace_cells() {
        // Runtime distributions need the full week to show the tail.
        let mut cell = opts.scaled(preset, 7);
        if opts.scale == crate::common::Scale::Quick {
            cell.machines = cell.machines.min(12);
        }
        let name = cell.id.name().to_string();
        let gen = WorkloadGenerator::new(cell)?;
        let machines = gen.generate_cell_parallel(opts.threads)?;
        let runtimes: Vec<f64> = machines
            .iter()
            .flat_map(|m| m.tasks.iter().map(|task| task.spec.runtime_hours()))
            .collect();
        let frac =
            runtimes.iter().filter(|&&h| h < 24.0).count() as f64 / runtimes.len().max(1) as f64;
        under_24.push((name.clone(), frac));
        t.row(cdf_row(&name, &runtimes));
        csv.push((name, runtimes));
    }
    t.print();
    for (name, frac) in &under_24 {
        let paper = match name.as_str() {
            "c" => "≈98% (the short-task cell)",
            "g" => "≈75% (the long-task cell)",
            _ => "75–98% depending on cell",
        };
        claim(
            &format!("cell {name}: tasks shorter than 24h"),
            format!("{:.1}%", 100.0 * frac),
            paper,
        );
    }
    write_cdf_csv(&opts.csv("fig7a.csv"), &csv)?;
    Ok(())
}

/// Runs Figure 7(b): shorter-horizon oracles vs the 72-hour oracle.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run_b(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "fig7b",
        "oracle horizon comparison (normalized difference to 72h)",
    );
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 7);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;
    let metric = UsageMetric::P90;
    let horizons_h: [u64; 5] = [3, 6, 12, 24, 48];

    let mut diffs: Vec<Vec<f64>> = vec![Vec::new(); horizons_h.len()];
    for m in &machines {
        let reference = machine_oracle(m, metric, 72 * TICKS_PER_HOUR);
        for (j, &h) in horizons_h.iter().enumerate() {
            let shorter = machine_oracle(m, metric, h * TICKS_PER_HOUR);
            for (s, r) in shorter.iter().zip(reference.iter()) {
                if *r > 0.0 {
                    diffs[j].push((r - s) / r);
                }
            }
        }
    }

    let mut t = Table::new(&cdf_header("oracle (norm. diff)"));
    let mut csv = Vec::new();
    let mut frac_24_within_5 = 0.0;
    for (j, &h) in horizons_h.iter().enumerate() {
        let name = format!("oracle_{h}h");
        t.row(cdf_row(&name, &diffs[j]));
        if h == 24 {
            frac_24_within_5 = diffs[j].iter().filter(|&&d| d < 0.05).count() as f64
                / diffs[j].len().max(1) as f64;
        }
        csv.push((name, std::mem::take(&mut diffs[j])));
    }
    t.print();
    claim(
        "24h oracle within 5% of 72h oracle",
        format!("{:.1}% of points", 100.0 * frac_24_within_5),
        "≥95% of points",
    );
    write_cdf_csv(&opts.csv("fig7b.csv"), &csv)?;
    Ok(())
}

/// Runs Figure 7(c): per-task usage-to-limit ratio CDFs across cells.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run_c(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig7c", "task usage-to-limit ratio CDFs per cell");
    let mut t = Table::new(&cdf_header("cell (usage/limit)"));
    let mut csv = Vec::new();
    let mut worst_p95 = 0.0f64;
    for preset in CellConfig::trace_cells() {
        let cell = opts.scaled(preset, 3);
        let name = cell.id.name().to_string();
        let gen = WorkloadGenerator::new(cell)?;
        let machines = gen.generate_cell_parallel(opts.threads)?;
        let mut ratios = Vec::new();
        for m in &machines {
            for task in &m.tasks {
                for (k, s) in task.samples.iter().enumerate() {
                    // Subsample task-ticks 7× to bound memory. The ratio
                    // uses the window-average usage — the canonical usage
                    // field of trace v3.
                    if k % 7 == 0 {
                        ratios.push(s.avg / task.spec.limit);
                    }
                }
            }
        }
        worst_p95 = worst_p95.max(oc_stats::percentile_slice(&ratios, 95.0)?);
        t.row(cdf_row(&name, &ratios));
        csv.push((name, ratios));
    }
    t.print();
    claim(
        "max over cells of 95%ile usage/limit",
        format!("{worst_p95:.3}"),
        "< 0.9 in every cell (motivates borg-default φ = 0.9)",
    );
    write_cdf_csv(&opts.csv("fig7c.csv"), &csv)?;
    Ok(())
}
