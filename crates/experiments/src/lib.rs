//! The reproduction harness: one module per paper table/figure.
//!
//! Every experiment prints the paper's rows/series as aligned quantile
//! tables, emits `[claim]` lines comparing measured values against the
//! paper's reported ones, and writes the full CDF data as CSV under
//! `results/`. The `repro` binary dispatches to these modules; integration
//! tests and benches reuse them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod diag;
pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod plot;
pub mod powercap;
pub mod sweep;
pub mod table1;
pub mod workload;

use common::Opts;
use std::error::Error;

/// Experiment ids accepted by [`dispatch`], in run order.
pub const ALL_EXPERIMENTS: [&str; 13] = [
    "fig1", "table1", "fig3", "fig4", "fig6", "fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10",
    "fig11", "fig12",
];

/// The A/B experiment id (also run by `all`, listed separately because it
/// covers two figures).
pub const AB_EXPERIMENT: &str = "fig13";

/// Runs one experiment by id (`"fig14"` is an alias for the A/B run).
///
/// # Errors
///
/// Returns an error for unknown ids and propagates experiment failures.
pub fn dispatch(id: &str, opts: &Opts) -> Result<(), Box<dyn Error>> {
    match id {
        "fig1" => fig1::run(opts),
        "diag" => diag::run(opts),
        "autopilot" => ext::run_autopilot(opts),
        "seasonal" => ext::run_seasonal(opts),
        "powercap" => powercap::run(opts),
        "workload" => workload::run(opts),
        "table1" => table1::run(opts),
        "fig3" => fig3::run(opts),
        "fig4" => fig4::run(opts),
        "fig6" => fig6::run(opts),
        "fig7a" => fig7::run_a(opts),
        "fig7b" => fig7::run_b(opts),
        "fig7c" => fig7::run_c(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts),
        "fig10" => fig10::run(opts),
        "fig11" => fig11::run(opts),
        "fig12" => fig12::run(opts),
        "fig13" | "fig14" | "ab" => fig13::run(opts),
        "all" => {
            for id in ALL_EXPERIMENTS {
                dispatch(id, opts)?;
            }
            dispatch(AB_EXPERIMENT, opts)?;
            dispatch("autopilot", opts)?;
            dispatch("seasonal", opts)?;
            dispatch("powercap", opts)
        }
        other => Err(format!(
            "unknown experiment '{other}'; known: {}, fig13 (= fig14), autopilot, seasonal, powercap, workload, diag, all",
            ALL_EXPERIMENTS.join(", ")
        )
        .into()),
    }
}
