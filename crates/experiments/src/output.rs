//! Output helpers: aligned text tables and CSV files.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// An aligned text table printed to stdout, mirroring the paper's rows.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 4 significant decimals for table cells.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Writes a CSV file with a header row and one row per record.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    file.flush()
}

/// CDF quantile probes used in every distribution table.
pub const CDF_PROBES: [f64; 7] = [5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];

/// Quantile row for a CDF table: `[name, q5, q25, q50, q75, q90, q95, q99]`.
pub fn cdf_row(name: &str, samples: &[f64]) -> Vec<String> {
    let mut row = vec![name.to_string()];
    if samples.is_empty() {
        row.extend(std::iter::repeat_n("-".to_string(), CDF_PROBES.len()));
        return row;
    }
    for p in CDF_PROBES {
        let q = oc_stats::percentile_slice(samples, p).expect("non-empty samples");
        row.push(f(q));
    }
    row
}

/// Header for a CDF table.
pub fn cdf_header(label: &str) -> Vec<&str> {
    let mut h = vec![label];
    h.extend(["p5", "p25", "p50", "p75", "p90", "p95", "p99"]);
    h
}

/// Writes a named set of sample vectors as long-format CSV
/// (`series,x,cdf`) so external tools can re-plot the figure.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_cdf_csv(path: &Path, series: &[(String, Vec<f64>)]) -> std::io::Result<()> {
    let rows = series.iter().flat_map(|(name, samples)| {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        sorted.into_iter().enumerate().map(move |(i, x)| {
            vec![
                name.clone(),
                format!("{x}"),
                format!("{}", (i + 1) as f64 / n as f64),
            ]
        })
    });
    write_csv(path, &["series", "x", "cdf"], rows)
}

/// Resolves the results directory (`results/` under the workspace root by
/// default, overridable via `REPRO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("REPRO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn cdf_row_quantiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let row = cdf_row("s", &samples);
        assert_eq!(row.len(), 8);
        assert_eq!(row[0], "s");
        // Median of 1..=100 is 50.5.
        assert_eq!(row[3], "50.5000");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("oc-experiments-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], vec![vec!["1".into(), "2".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cdf_csv_is_monotone() {
        let dir = std::env::temp_dir().join("oc-experiments-test");
        let path = dir.join("cdf.csv");
        write_cdf_csv(&path, &[("s".into(), vec![3.0, 1.0, 2.0])]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("s,1,"));
        assert!(lines[3].starts_with("s,3,1"));
        std::fs::remove_file(&path).unwrap();
    }
}
