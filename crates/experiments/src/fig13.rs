//! Figures 13 and 14: the production A/B experiment.

use crate::common::{banner, claim, Opts, Scale};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_scheduler::ab::{run_ab, AbConfig, GroupOutcome};
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::time::TICKS_PER_DAY;
use std::error::Error;

/// Ticks skipped at the start of the run (cluster fill-up transient).
const WARMUP_DAYS: u64 = 1;

/// Runs the Figure 13 + Figure 14 reproduction.
///
/// Two identical clusters are offered the same arrival stream; the control
/// runs borg-default(0.9), the experiment runs max(N-sigma(3),
/// RC-like(p80)) — the production configuration of Section 6.1. Reported:
/// violation rate and severity (13a/b), relative savings (13c), total
/// allocations and workload (13d/e), per-task and per-machine latency
/// (14a/b), and machine-utilization percentiles (14c/d/e).
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "fig13+fig14",
        "production A/B: borg-default (control) vs max predictor (exp)",
    );
    let mut cell = CellConfig::preset(CellPreset::Prod2);
    // Total machines across both groups (split by parity inside run_ab).
    let (machines, days) = match opts.scale {
        Scale::Quick => (24usize, 6u64),
        Scale::Full => (80usize, 32u64),
    };
    cell.machines = machines;
    // Production serving jobs are long-running: a machine's job mix (hot or
    // cold) persists for days, which is what makes limit-based placement
    // imbalanced. Shift the runtime mixture toward long services.
    cell.runtime.short_frac = 0.45;
    cell.runtime.long_median_hours = 60.0;
    cell.runtime.max_hours = 30.0 * 24.0;
    // Rough steady-state sizing: offered limit inflow × mean runtime should
    // exceed cluster capacity so admission is the binding constraint.
    let jobs_per_tick = 0.0045 * machines as f64;
    let mut cfg = AbConfig::paper_default(cell, jobs_per_tick);
    cfg.duration_ticks = days * TICKS_PER_DAY;
    cfg.replay_threads = opts.threads;
    // Borg spreads load across its candidate sample; worst-fit placement is
    // the closest classic policy and is what lets the usage-based
    // experiment group balance *actual* load rather than limits.
    cfg.placement = oc_scheduler::PlacementPolicy::WorstFit;
    // Section 6: "we tuned our max predictor in simulation to match the
    // risk profile of our borg-default peak predictor". Under this
    // generator's workload the matching configuration is the
    // simulation-tuned max composite guarded by the seasonal daily-peak
    // profile (Section 4's "max peak across predictors" with one more
    // component; see DESIGN.md §10) — without the guard, month-long runs
    // accumulate diurnal-trough overfill that control's limit gate is
    // structurally immune to.
    cfg.experiment = oc_core::predictor::PredictorSpec::seasonal_max();
    let out = run_ab(&cfg)?;

    let skip = (WARMUP_DAYS * TICKS_PER_DAY) as usize;
    let tail = |v: &[f64]| -> Vec<f64> { v.iter().skip(skip).copied().collect() };

    // --- Figure 13 -------------------------------------------------------
    let groups = [&out.control, &out.experiment];
    let mut viol = Table::new(&cdf_header("group (violation rate)"));
    let mut sev = Table::new(&cdf_header("group (machine severity)"));
    let mut save = Table::new(&cdf_header("group (relative savings)"));
    let mut alloc = Table::new(&cdf_header("group (alloc/capacity)"));
    let mut work = Table::new(&cdf_header("group (usage/capacity)"));
    let mut csv_savings = Vec::new();
    for g in groups {
        viol.row(cdf_row(&g.name, &g.replay.violation_rates(0)));
        sev.row(cdf_row(&g.name, &g.replay.mean_severities(0)));
        let savings = tail(&g.stats.savings);
        save.row(cdf_row(&g.name, &savings));
        alloc.row(cdf_row(&g.name, &tail(&g.stats.alloc_ratio)));
        work.row(cdf_row(&g.name, &tail(&g.stats.usage_ratio)));
        csv_savings.push((g.name.clone(), savings));
    }
    println!("(13a) per-machine violation rate");
    viol.print();
    println!("(13b) per-machine mean violation severity");
    sev.print();
    println!("(13c) relative savings (ΣL − ΣP)/ΣL per tick");
    save.print();
    println!("(13d) total allocations (Σ limits / Σ capacity) per tick");
    alloc.print();
    println!("(13e) total workload (Σ usage / Σ capacity) per tick");
    work.print();

    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let c_save = mean(tail(&out.control.stats.savings));
    let e_save = mean(tail(&out.experiment.stats.savings));
    claim(
        "savings: control vs experiment",
        format!("control {:.3}, exp {:.3}", c_save, e_save),
        "exp consistently above control (paper: 0.10-0.12 vs >0.16)",
    );
    let c_alloc = mean(tail(&out.control.stats.alloc_ratio));
    let e_alloc = mean(tail(&out.experiment.stats.alloc_ratio));
    claim(
        "workload increase by allocations",
        format!("{:+.1}%", 100.0 * (e_alloc - c_alloc)),
        "≈ +2%",
    );
    let c_use = mean(tail(&out.control.stats.usage_ratio));
    let e_use = mean(tail(&out.experiment.stats.usage_ratio));
    claim(
        "workload increase by usage",
        format!("{:+.1}%", 100.0 * (e_use - c_use)),
        "≈ +6%",
    );

    // --- Figure 14 -------------------------------------------------------
    let norm_unit = mean(out.control.task_latency.clone());
    let mut task_lat = Table::new(&cdf_header("group (norm. task latency)"));
    let mut mach_lat = Table::new(&cdf_header("group (norm. p90 machine latency)"));
    let mut util50 = Table::new(&cdf_header("group (p50 machine util)"));
    let mut util_avg = Table::new(&cdf_header("group (avg machine util)"));
    let mut util99 = Table::new(&cdf_header("group (p99 machine util)"));
    let mut csv_task_lat = Vec::new();
    for g in groups {
        let t_lat: Vec<f64> = g.task_latency.iter().map(|&l| l / norm_unit).collect();
        task_lat.row(cdf_row(&g.name, &t_lat));
        let m_lat: Vec<f64> = g.qos.iter().map(|q| q.p90 / norm_unit).collect();
        mach_lat.row(cdf_row(&g.name, &m_lat));
        util50.row(cdf_row(&g.name, &g.util_p50));
        util_avg.row(cdf_row(&g.name, &g.util_avg));
        util99.row(cdf_row(&g.name, &g.util_p99));
        csv_task_lat.push((g.name.clone(), t_lat));
    }
    println!("(14a) per-task CPU scheduling latency (normalized to control mean)");
    task_lat.print();
    println!("(14b) per-machine 90%ile CPU scheduling latency");
    mach_lat.print();
    println!("(14c) median machine utilization");
    util50.print();
    println!("(14d) average machine utilization");
    util_avg.print();
    println!("(14e) 99%ile machine utilization");
    util99.print();

    let p90 = |v: &[f64]| oc_stats::percentile_slice(v, 90.0).unwrap_or(f64::NAN);
    let c_l = p90(&out.control.task_latency);
    let e_l = p90(&out.experiment.task_latency);
    claim(
        "tail task latency: exp vs control at p90",
        format!("{:+.1}%", 100.0 * (e_l - c_l) / c_l),
        "exp lower (≈ −5%; needs production-scale pools — see EXPERIMENTS.md)",
    );
    let p99m = |g: &GroupOutcome| {
        let v: Vec<f64> = g.qos.iter().map(|q| q.p90).collect();
        oc_stats::percentile_slice(&v, 99.0).unwrap_or(f64::NAN)
    };
    claim(
        "hottest machine's p90 latency: exp vs control",
        format!(
            "{:+.1}%",
            100.0 * (p99m(&out.experiment) - p99m(&out.control)) / p99m(&out.control)
        ),
        "exp's worst machines no hotter than control's",
    );
    let med = |v: &[f64]| oc_stats::percentile_slice(v, 50.0).unwrap_or(f64::NAN);
    claim(
        "median machine utilization: exp vs control",
        format!(
            "exp {:.3} vs control {:.3}",
            med(&out.experiment.util_avg),
            med(&out.control.util_avg)
        ),
        "exp higher on the average machine",
    );
    let hot = |g: &GroupOutcome| {
        let mut v = g.util_p99.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.last().copied().unwrap_or(f64::NAN)
    };
    claim(
        "hottest machine p99 utilization: exp vs control",
        format!(
            "exp {:.3} vs control {:.3}",
            hot(&out.experiment),
            hot(&out.control)
        ),
        "exp's hottest machines are cooler (better balance)",
    );

    // Risk-profile matching (Section 6.2): the experiment group's
    // violation rates should be no worse than control's.
    let med_rate = |g: &GroupOutcome| {
        let v = g.replay.violation_rates(0);
        oc_stats::percentile_slice(&v, 50.0).unwrap_or(f64::NAN)
    };
    claim(
        "median violation rate: exp vs control",
        format!(
            "exp {:.4} vs control {:.4}",
            med_rate(&out.experiment),
            med_rate(&out.control)
        ),
        "exp slightly better (risk profile matched by design)",
    );

    crate::plot::maybe_plot(opts, "fig13(c): relative savings", &csv_savings);
    crate::plot::maybe_plot(opts, "fig14(a): normalized task latency", &csv_task_lat);
    write_cdf_csv(&opts.csv("fig13c_savings.csv"), &csv_savings)?;
    write_cdf_csv(&opts.csv("fig14a_task_latency.csv"), &csv_task_lat)?;
    Ok(())
}
