//! Generator diagnostics: where the oracle sits relative to limits.
//!
//! Not a paper figure — a calibration aid. Prints, for one cell, the
//! distribution of the oracle-to-limit ratio `PO(τ)/ΣL(τ)` over machine-
//! ticks, plus the usage-to-limit ratio. The borg-default policy violates
//! exactly when `PO/ΣL > φ`, so this table shows directly how much of the
//! trace sits above any static threshold.

use crate::common::{banner, Opts};
use crate::output::{cdf_header, cdf_row, Table};
use oc_core::oracle::machine_oracle;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::sample::UsageMetric;

use std::error::Error;

/// Runs the diagnostic on trace cell `a`.
///
/// # Errors
///
/// Propagates generation errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("diag", "oracle-to-limit and usage-to-limit ratios (cell a)");
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;

    let mut po_ratio = Vec::new();
    let mut usage_ratio = Vec::new();
    let mut frac_above_09 = 0usize;
    let mut total = 0usize;
    for m in &machines {
        let po = machine_oracle(m, UsageMetric::P90, 24 * oc_trace::time::TICKS_PER_HOUR);
        for (i, t) in m.horizon.iter().enumerate() {
            let l = m.total_limit_at(t);
            if l > 0.0 {
                let r = po[i] / l;
                po_ratio.push(r);
                usage_ratio.push(m.total_usage_at(t, UsageMetric::P90) / l);
                if r > 0.9 {
                    frac_above_09 += 1;
                }
                total += 1;
            }
        }
    }
    let mut t = Table::new(&cdf_header("ratio"));
    t.row(cdf_row("PO(24h)/ΣL", &po_ratio));
    t.row(cdf_row("usage/ΣL", &usage_ratio));
    t.print();
    println!(
        "  machine-ticks with PO/ΣL > 0.9 (borg-default violations): {:.2}%",
        100.0 * frac_above_09 as f64 / total.max(1) as f64
    );
    Ok(())
}
