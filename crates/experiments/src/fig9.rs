//! Figure 9: configuring the RC-like predictor.

use crate::common::{banner, claim, Opts};
use crate::sweep::{report, run_sweep, SweepPoint};
use oc_core::predictor::PredictorSpec;
use std::error::Error;

/// Runs the Figure 9 reproduction: violation-rate CDFs and savings for
/// the RC-like predictor under (a/b) percentile ∈ {80,90,95,99},
/// (c) warm-up ∈ {1,2,3} h, and (d) history ∈ {2,5,10} h on cell `a`.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig9", "RC-like predictor parameter sweeps (cell a)");

    let points: Vec<SweepPoint> = [80.0, 90.0, 95.0, 99.0]
        .into_iter()
        .map(|p| SweepPoint {
            label: format!("percentile = {p}"),
            spec: PredictorSpec::RcLike { percentile: p },
            warmup_hours: 2.0,
            history_hours: 10.0,
        })
        .collect();
    let results = run_sweep(opts, &points)?;
    report(
        opts,
        "(a) effect of percentile  (b) effect of percentile on savings",
        "fig9a.csv",
        &results,
        true,
    )?;
    let med = |r: &crate::sweep::SweepResult| {
        oc_stats::percentile_slice(&r.violation_rates, 50.0).unwrap_or(0.0)
    };
    claim(
        "violation rate falls as the percentile grows",
        format!(
            "median {:.3} (p80) → {:.3} (p99)",
            med(&results[0]),
            med(&results[3])
        ),
        "monotone decrease",
    );
    claim(
        "savings fall as the percentile grows",
        format!(
            "{:.3} (p80) → {:.3} (p99)",
            results[0].mean_cell_savings, results[3].mean_cell_savings
        ),
        "monotone decrease",
    );

    let points: Vec<SweepPoint> = [1.0, 2.0, 3.0]
        .into_iter()
        .map(|w| SweepPoint {
            label: format!("warm-up = {w}h"),
            spec: PredictorSpec::RcLike { percentile: 95.0 },
            warmup_hours: w,
            history_hours: 10.0,
        })
        .collect();
    let warm = run_sweep(opts, &points)?;
    report(
        opts,
        "(c) effect of warm-up (95%ile, 10h history)",
        "fig9c.csv",
        &warm,
        false,
    )?;

    let points: Vec<SweepPoint> = [2.0, 5.0, 10.0]
        .into_iter()
        .map(|h| SweepPoint {
            label: format!("history = {h}h"),
            spec: PredictorSpec::RcLike { percentile: 95.0 },
            warmup_hours: 2.0,
            history_hours: h,
        })
        .collect();
    let hist = run_sweep(opts, &points)?;
    report(
        opts,
        "(d) effect of history (95%ile, 2h warm-up)",
        "fig9d.csv",
        &hist,
        false,
    )?;

    let spread = |rs: &[crate::sweep::SweepResult]| {
        let meds: Vec<f64> = rs
            .iter()
            .map(|r| oc_stats::percentile_slice(&r.violation_rates, 50.0).unwrap_or(0.0))
            .collect();
        meds.iter().cloned().fold(0.0, f64::max)
            - meds.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    claim(
        "history moves violations more than warm-up",
        format!(
            "median spread: history {:.4} vs warm-up {:.4}",
            spread(&hist),
            spread(&warm)
        ),
        "same behaviour as the N-sigma predictor",
    );
    Ok(())
}
