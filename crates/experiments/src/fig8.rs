//! Figure 8: configuring the N-sigma predictor.

use crate::common::{banner, claim, Opts};
use crate::sweep::{report, run_sweep, SweepPoint};
use oc_core::predictor::PredictorSpec;
use std::error::Error;

/// Runs the Figure 8 reproduction: violation-rate CDFs and savings for
/// the N-sigma predictor under (a/b) `n ∈ {2,3,5,10}`, (c) warm-up
/// ∈ {1,2,3} h, and (d) history ∈ {2,5,10} h on trace cell `a`.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig8", "N-sigma predictor parameter sweeps (cell a)");

    // (a)+(b): the multiplier, at 2h warm-up / 10h history.
    let points: Vec<SweepPoint> = [2.0, 3.0, 5.0, 10.0]
        .into_iter()
        .map(|n| SweepPoint {
            label: format!("n = {n}"),
            spec: PredictorSpec::NSigma { n },
            warmup_hours: 2.0,
            history_hours: 10.0,
        })
        .collect();
    let results = run_sweep(opts, &points)?;
    report(
        opts,
        "(a) effect of n  (b) effect of n on savings",
        "fig8a.csv",
        &results,
        true,
    )?;
    let med = |r: &crate::sweep::SweepResult| {
        oc_stats::percentile_slice(&r.violation_rates, 50.0).unwrap_or(0.0)
    };
    claim(
        "violation rate falls as n grows",
        format!(
            "median {:.3} (n=2) → {:.3} (n=10)",
            med(&results[0]),
            med(&results[3])
        ),
        "monotone decrease",
    );
    claim(
        "savings fall as n grows",
        format!(
            "{:.3} (n=2) → {:.3} (n=10)",
            results[0].mean_cell_savings, results[3].mean_cell_savings
        ),
        "monotone decrease",
    );

    // (c): warm-up, at n=5 / 10h history.
    let points: Vec<SweepPoint> = [1.0, 2.0, 3.0]
        .into_iter()
        .map(|w| SweepPoint {
            label: format!("warm-up = {w}h"),
            spec: PredictorSpec::NSigma { n: 5.0 },
            warmup_hours: w,
            history_hours: 10.0,
        })
        .collect();
    let warm = run_sweep(opts, &points)?;
    report(
        opts,
        "(c) effect of warm-up (n=5, 10h history)",
        "fig8c.csv",
        &warm,
        false,
    )?;

    // (d): history, at n=5 / 2h warm-up.
    let points: Vec<SweepPoint> = [2.0, 5.0, 10.0]
        .into_iter()
        .map(|h| SweepPoint {
            label: format!("history = {h}h"),
            spec: PredictorSpec::NSigma { n: 5.0 },
            warmup_hours: 2.0,
            history_hours: h,
        })
        .collect();
    let hist = run_sweep(opts, &points)?;
    report(
        opts,
        "(d) effect of history (n=5, 2h warm-up)",
        "fig8d.csv",
        &hist,
        false,
    )?;

    let spread = |rs: &[crate::sweep::SweepResult]| {
        let meds: Vec<f64> = rs
            .iter()
            .map(|r| oc_stats::percentile_slice(&r.violation_rates, 50.0).unwrap_or(0.0))
            .collect();
        meds.iter().cloned().fold(0.0, f64::max)
            - meds.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    claim(
        "history moves violations more than warm-up",
        format!(
            "median spread: history {:.4} vs warm-up {:.4}",
            spread(&hist),
            spread(&warm)
        ),
        "warm-up barely matters; history has pronounced impact",
    );
    Ok(())
}
