//! Figure 12: the max predictor over four consecutive weeks of cell `a`.

use crate::common::{banner, claim, Opts, Scale};
use crate::output::{cdf_header, cdf_row, f, write_cdf_csv, Table};
use oc_core::config::SimConfig;
use oc_core::metrics::VIOLATION_EPS;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::time::TICKS_PER_DAY;
use std::error::Error;

/// Runs the Figure 12 reproduction: a single four-week simulation of cell
/// `a` under the max predictor, sliced per week — violation rate,
/// severity and savings must be stable across weeks.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig12", "max predictor across four weeks of cell a");
    let mut cell = CellConfig::preset(CellPreset::A).with_weeks(4);
    if opts.scale == Scale::Quick {
        cell.machines = (cell.machines / 4).max(6);
        // Keep four slices, but shorter ones: 4 × 2 days.
        cell.duration_ticks = 8 * TICKS_PER_DAY;
    }
    let slice_len = (cell.duration_ticks / 4) as usize;
    let slice_name = if opts.scale == Scale::Quick {
        "slice"
    } else {
        "week"
    };

    let gen = WorkloadGenerator::new(cell)?;
    let run = run_cell_streaming(
        &gen,
        &SimConfig::default().with_series(),
        &[PredictorSpec::paper_max()],
        opts.threads,
    )?;

    let mut viol = Table::new(&cdf_header(&format!("{slice_name} (violation rate)")));
    let mut sev = Table::new(&cdf_header(&format!("{slice_name} (tick severity)")));
    let mut save = Table::new(&[slice_name, "mean cell savings"]);
    let mut viol_csv = Vec::new();
    let mut week_medians = Vec::new();

    for week in 0..4usize {
        let lo = week * slice_len;
        let hi = lo + slice_len;
        let mut rates = Vec::new();
        let mut sevs = Vec::new();
        let mut limit_sum = vec![0.0; slice_len];
        let mut pred_sum = vec![0.0; slice_len];
        for r in &run.results {
            let s = r.series.as_ref().expect("series enabled");
            let mut violations = 0usize;
            for i in lo..hi {
                let (p, po) = (s.predictions[0][i], s.oracle[i]);
                let violating = p + VIOLATION_EPS < po;
                if violating {
                    violations += 1;
                }
                sevs.push(if violating && po > 0.0 {
                    (po - p) / po
                } else {
                    0.0
                });
                limit_sum[i - lo] += s.limit[i];
                pred_sum[i - lo] += s.predictions[0][i];
            }
            rates.push(violations as f64 / slice_len as f64);
        }
        let savings: Vec<f64> = limit_sum
            .iter()
            .zip(pred_sum.iter())
            .map(|(&l, &p)| if l > 0.0 { (l - p) / l } else { 0.0 })
            .collect();
        let label = format!("{slice_name} {}", week + 1);
        viol.row(cdf_row(&label, &rates));
        sev.row(cdf_row(&label, &sevs));
        save.row(vec![
            label.clone(),
            f(savings.iter().sum::<f64>() / savings.len().max(1) as f64),
        ]);
        week_medians.push(oc_stats::percentile_slice(&rates, 50.0)?);
        viol_csv.push((label, rates));
    }
    println!("(a) per-machine violation rate");
    viol.print();
    println!("(b) violation severity");
    sev.print();
    println!("(c) savings");
    save.print();

    let spread = week_medians.iter().cloned().fold(0.0, f64::max)
        - week_medians.iter().cloned().fold(f64::INFINITY, f64::min);
    claim(
        "median violation rate spread across weeks",
        format!("{spread:.4}"),
        "consistent with week 1 (small spread)",
    );
    write_cdf_csv(&opts.csv("fig12a_violation_rate.csv"), &viol_csv)?;
    Ok(())
}
