//! Shared machinery for the Figure 8 / Figure 9 parameter sweeps.

use crate::common::Opts;
use crate::output::{cdf_header, cdf_row, f, write_cdf_csv, Table};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// One sweep configuration: a label, a predictor, and node-agent knobs.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label.
    pub label: String,
    /// The predictor under test.
    pub spec: PredictorSpec,
    /// Warm-up in hours.
    pub warmup_hours: f64,
    /// History window in hours.
    pub history_hours: f64,
}

/// Result of one sweep point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Row label.
    pub label: String,
    /// Per-machine violation rates.
    pub violation_rates: Vec<f64>,
    /// Mean cell-level savings `1 − ΣP/ΣL` over ticks.
    pub mean_cell_savings: f64,
}

/// Runs each sweep point on trace cell `a` and returns per-point metrics.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_sweep(opts: &Opts, points: &[SweepPoint]) -> Result<Vec<SweepResult>, Box<dyn Error>> {
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let cfg = SimConfig::default()
            .with_warmup_hours(p.warmup_hours)
            .with_history_hours(p.history_hours)
            .with_series();
        let run = run_cell_streaming(&gen, &cfg, std::slice::from_ref(&p.spec), opts.threads)?;
        let savings = run
            .cell_savings_series(0)
            .expect("series recording enabled");
        out.push(SweepResult {
            label: p.label.clone(),
            violation_rates: run.violation_rates(0),
            mean_cell_savings: savings.iter().sum::<f64>() / savings.len().max(1) as f64,
        });
    }
    Ok(out)
}

/// Prints a violation-rate CDF table plus a savings column and writes the
/// CDF CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn report(
    opts: &Opts,
    panel: &str,
    csv_name: &str,
    results: &[SweepResult],
    with_savings: bool,
) -> Result<(), Box<dyn Error>> {
    println!("{panel}");
    let mut t = Table::new(&cdf_header("config (violation rate)"));
    for r in results {
        t.row(cdf_row(&r.label, &r.violation_rates));
    }
    t.print();
    if with_savings {
        let mut s = Table::new(&["config", "mean cell savings (1 − ΣP/ΣL)"]);
        for r in results {
            s.row(vec![r.label.clone(), f(r.mean_cell_savings)]);
        }
        s.print();
    }
    write_cdf_csv(
        &opts.csv(csv_name),
        &results
            .iter()
            .map(|r| (r.label.clone(), r.violation_rates.clone()))
            .collect::<Vec<_>>(),
    )?;
    Ok(())
}
