//! Extension experiments beyond the paper's figures.
//!
//! * `autopilot` — quantifies the paper's orthogonality argument: even
//!   after Autopilot-style per-task limit tuning, the pooling effect
//!   leaves machine-level overcommit headroom (Section 2.2 / Figure 1).
//! * `seasonal` — evaluates the seasonal daily-peak predictor extension
//!   against the paper's max predictor on the Figure 10 setup.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_core::autopilot::{recommend_limits, relative_slack, AutopilotConfig};
use oc_core::config::SimConfig;
use oc_core::oracle::machine_oracle;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::sample::UsageMetric;
use std::error::Error;

/// Runs the Autopilot orthogonality experiment.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run_autopilot(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "ext-autopilot",
        "per-task limit tuning vs machine-level overcommit headroom",
    );
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;
    let cfg = AutopilotConfig::default();

    let mut slack_before = Vec::new();
    let mut slack_after = Vec::new();
    let mut headroom_before = Vec::new();
    let mut headroom_after = Vec::new();
    for m in &machines {
        let n = m.horizon.len() as usize;
        let mut declared = vec![0.0; n];
        let mut tuned = vec![0.0; n];
        for task in &m.tasks {
            // Autopilot only helps tasks that live long enough to profile.
            let limits = recommend_limits(task, &cfg)?;
            let start = task.spec.start.index() as usize;
            if task.samples.len() > cfg.warmup_ticks {
                slack_before.push(relative_slack(
                    task,
                    &vec![task.spec.limit; task.samples.len()],
                ));
                slack_after.push(relative_slack(task, &limits));
            }
            for (k, &l) in limits.iter().enumerate() {
                declared[start + k] += task.spec.limit;
                tuned[start + k] += l;
            }
        }
        // Machine-level headroom left by each limit regime: ΣL / future
        // peak of the scheduled tasks.
        let po = machine_oracle(m, UsageMetric::P90, 288);
        for i in 0..n {
            if po[i] > 1e-9 {
                headroom_before.push(declared[i] / po[i]);
                headroom_after.push(tuned[i] / po[i]);
            }
        }
    }

    let mut t = Table::new(&cdf_header("distribution"));
    t.row(cdf_row("task slack, declared limits", &slack_before));
    t.row(cdf_row("task slack, autopilot limits", &slack_after));
    t.row(cdf_row("ΣL / machine peak, declared", &headroom_before));
    t.row(cdf_row("ΣL / machine peak, autopilot", &headroom_after));
    t.print();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    claim(
        "mean relative slack after Autopilot",
        format!(
            "{:.2} (down from {:.2})",
            mean(&slack_after),
            mean(&slack_before)
        ),
        "Autopilot leaves ≈23% slack (its own paper)",
    );
    claim(
        "machine-level overcommit headroom surviving Autopilot",
        format!(
            "ΣL/peak {:.2}× (down from {:.2}×) — still > 1",
            mean(&headroom_after),
            mean(&headroom_before)
        ),
        "pooling effect persists: per-task tuning cannot reach it (Fig. 1 argument)",
    );
    write_cdf_csv(
        &opts.csv("ext_autopilot.csv"),
        &[
            ("slack_declared".into(), slack_before),
            ("slack_autopilot".into(), slack_after),
            ("headroom_declared".into(), headroom_before),
            ("headroom_autopilot".into(), headroom_after),
        ],
    )?;
    Ok(())
}

/// Runs the seasonal-predictor extension on the Figure 10 setup.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run_seasonal(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "ext-seasonal",
        "seasonal daily-peak predictor vs the paper's max predictor (cell a)",
    );
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let specs = [
        PredictorSpec::paper_max(),
        PredictorSpec::Seasonal {
            slots: 24,
            decay: 0.05,
            horizon_ticks: 288,
        },
        PredictorSpec::seasonal_max(),
    ];
    let run = run_cell_streaming(
        &gen,
        &SimConfig::default().with_series(),
        &specs,
        opts.threads,
    )?;

    let mut viol = Table::new(&cdf_header("predictor (violation rate)"));
    let mut save = Table::new(&["predictor", "mean cell savings"]);
    let mut csv = Vec::new();
    for (i, name) in run.predictors.iter().enumerate() {
        let rates = run.violation_rates(i);
        viol.row(cdf_row(name, &rates));
        let savings = run.cell_savings_series(i).expect("series enabled");
        save.row(vec![
            name.clone(),
            crate::output::f(savings.iter().sum::<f64>() / savings.len().max(1) as f64),
        ]);
        csv.push((name.clone(), rates));
    }
    viol.print();
    save.print();

    let p90 =
        |i: usize| oc_stats::percentile_slice(&run.violation_rates(i), 90.0).unwrap_or(f64::NAN);
    claim(
        "adding the seasonal guard to the max composite",
        format!("p90 violation rate {:.4} → {:.4}", p90(0), p90(2)),
        "extension: closes the diurnal-trough blind spot at a modest savings cost",
    );
    write_cdf_csv(&opts.csv("ext_seasonal.csv"), &csv)?;
    Ok(())
}
