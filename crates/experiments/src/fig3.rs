//! Figure 3: oracle violations vs CPU scheduling latency in the
//! production cells (the paper's methodology-validation experiment).

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, f, write_cdf_csv, write_csv, Table};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_qos::LatencyModel;
use oc_stats::{ols, spearman, Bucketed};
use oc_trace::cell::CellConfig;
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// Runs the Figure 3 reproduction.
///
/// Simulates the five production cells under a borg-default-style static
/// policy, derives per-machine CPU scheduling latency from the contention
/// model, and reproduces the paper's four panels: (a) per-machine
/// violation-rate CDFs, (b) latency CDFs, (c) cell-utilization CDFs, and
/// (d) the bucketed 99 %ile-latency-vs-violation-rate error-bar plot with
/// its Spearman correlations and fitted slope.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "fig3",
        "per-machine violation rate vs CPU scheduling latency (prod cells)",
    );
    let cfg = SimConfig::default().with_series();
    let spec = [PredictorSpec::borg_default()];
    let latency_model = LatencyModel::default();

    let mut viol_table = Table::new(&cdf_header("cell (violation rate)"));
    let mut lat_table = Table::new(&cdf_header("cell (norm. p99 latency)"));
    let mut util_table = Table::new(&cdf_header("cell (utilization)"));
    let mut viol_csv = Vec::new();
    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (violation rate, p99 latency).

    for preset in CellConfig::production_cells() {
        // Full machine inventory at a fixed 10-day window for both
        // scales: violations in this workload are episodic (a co-peak
        // marks the preceding 24 h), so month-long averaging dilutes the
        // violation-rate axis into a sliver near zero. Ten days keeps the
        // per-machine rates spread over the paper's 0–0.11 range; see
        // EXPERIMENTS.md.
        let mut cell = preset.clone();
        cell.duration_ticks = cell.duration_ticks.min(10 * oc_trace::time::TICKS_PER_DAY);
        cell.machines = preset.machines;
        let name = cell.id.name().to_string();
        let gen = WorkloadGenerator::new(cell)?;
        let run = run_cell_streaming(&gen, &cfg, &spec, opts.threads)?;

        let rates = run.violation_rates(0);
        viol_table.row(cdf_row(&name, &rates));
        viol_csv.push((name.clone(), rates.clone()));

        // Latency per machine from the ground-truth peak series.
        let mut p99s = Vec::with_capacity(run.results.len());
        for r in &run.results {
            let series = r.series.as_ref().expect("series recording enabled");
            let lat =
                latency_model.machine_series(&series.true_peak, r.capacity, u64::from(r.machine.0));
            p99s.push(oc_stats::percentile_slice(&lat, 99.0)?);
        }
        for (&rate, &p99) in rates.iter().zip(p99s.iter()) {
            pairs.push((rate, p99));
        }
        let mean_p99 = p99s.iter().sum::<f64>() / p99s.len().max(1) as f64;
        let norm: Vec<f64> = p99s.iter().map(|&l| l / mean_p99).collect();
        lat_table.row(cdf_row(&name, &norm));

        let util = run
            .cell_utilization_series()
            .expect("series recording enabled");
        util_table.row(cdf_row(&name, &util));
    }

    println!("(a) per-machine violation rate");
    viol_table.print();
    println!("(b) per-machine 99%ile latency, normalized to the cell mean");
    lat_table.print();
    println!("(c) cell utilization over time");
    util_table.print();

    // (d) Bucketed tail latency vs violation rate, pooled over all cells,
    // normalized to the zero-violation mean as in the paper.
    let zero_mean = {
        let zeros: Vec<f64> = pairs
            .iter()
            .filter(|(r, _)| *r < 1e-9)
            .map(|&(_, l)| l)
            .collect();
        if zeros.is_empty() {
            pairs.iter().map(|&(_, l)| l).sum::<f64>() / pairs.len().max(1) as f64
        } else {
            zeros.iter().sum::<f64>() / zeros.len() as f64
        }
    };
    let rates: Vec<f64> = pairs.iter().map(|&(r, _)| r).collect();
    let norm_lat: Vec<f64> = pairs.iter().map(|&(_, l)| l / zero_mean).collect();

    // The paper buckets 10,795 machines at width 0.005 and drops buckets
    // below 50 machines; the quick scale has ~100 machines, so it widens
    // the buckets and lowers the sparsity cut-off proportionally.
    let (width, min_count) = match opts.scale {
        crate::common::Scale::Quick => (0.02, 3),
        crate::common::Scale::Full => (0.02, 3),
    };
    let mut buckets = Bucketed::new(0.0, width)?;
    buckets.extend(rates.iter().copied().zip(norm_lat.iter().copied()));
    let stats = buckets.stats_until_sparse(min_count);

    println!(
        "(d) 99%ile latency vs violation rate (bucket width {width}, normalized to zero-violation mean)"
    );
    let mut t = Table::new(&["bucket mid", "machines", "mean latency", "std"]);
    let mut csv_rows = Vec::new();
    for b in &stats {
        t.row(vec![f(b.mid()), b.count.to_string(), f(b.mean), f(b.std)]);
        csv_rows.push(vec![
            b.mid().to_string(),
            b.count.to_string(),
            b.mean.to_string(),
            b.std.to_string(),
        ]);
    }
    t.print();

    let raw_rho = spearman(&rates, &norm_lat)?;
    let mids: Vec<f64> = stats.iter().map(|b| b.mid()).collect();
    let means: Vec<f64> = stats.iter().map(|b| b.mean).collect();
    let (bucket_rho, slope) = if mids.len() >= 3 {
        (spearman(&mids, &means)?, ols(&mids, &means)?.slope)
    } else {
        (f64::NAN, f64::NAN)
    };
    claim("Spearman (raw machines)", format!("{raw_rho:.2}"), "0.42");
    claim(
        "Spearman (bucket means)",
        format!("{bucket_rho:.2}"),
        "0.95",
    );
    claim("fitted slope (bucket means)", format!("{slope:.1}"), "14.1");

    write_cdf_csv(&opts.csv("fig3a_violation_rate.csv"), &viol_csv)?;
    write_csv(
        &opts.csv("fig3d_buckets.csv"),
        &["bucket_mid", "count", "mean_latency", "std"],
        csv_rows,
    )?;
    Ok(())
}
