//! Workload characterization report (`repro workload`).
//!
//! Prints the per-cell [`CellProfile`](oc_trace::CellProfile) the
//! substitution argument rests on
//! (DESIGN.md §2): size inventory, usage-to-limit gap, job structure,
//! diurnal strength and burstiness memory — the quantities a user would
//! compare against the real trace v3 before trusting conclusions drawn
//! from the generator.

use crate::common::{banner, claim, Opts};
use crate::output::{f, write_csv, Table};
use oc_trace::analysis::profile;
use oc_trace::cell::CellConfig;
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// Runs the workload characterization across trace cells `a..h`.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("workload", "generator characterization across cells a..h");
    let mut t = Table::new(&[
        "cell",
        "machines",
        "tasks",
        "jobs",
        "tasks/job",
        "runtime h",
        "<24h",
        "usage/limit",
        "util",
        "ΣL/cap",
        "diurnal",
        "ac(1h)",
    ]);
    let mut csv = Vec::new();
    let mut gaps = Vec::new();
    for preset in CellConfig::trace_cells() {
        let cell = opts.scaled(preset, 3);
        let gen = WorkloadGenerator::new(cell)?;
        let machines = gen.generate_cell_parallel(opts.threads)?;
        let p = profile(&machines).ok_or("empty cell profile")?;
        gaps.push(1.0 - p.mean_usage_to_limit);
        t.row(vec![
            gen.config().id.name().to_string(),
            p.machines.to_string(),
            p.tasks.to_string(),
            p.jobs.to_string(),
            format!("{:.1}", p.tasks_per_job),
            format!("{:.1}", p.mean_runtime_hours),
            format!("{:.0}%", 100.0 * p.frac_under_24h),
            f(p.mean_usage_to_limit),
            f(p.mean_utilization),
            f(p.mean_limit_ratio),
            f(p.diurnal_strength),
            f(p.hourly_autocorrelation),
        ]);
        csv.push(vec![
            gen.config().id.name().to_string(),
            p.machines.to_string(),
            p.tasks.to_string(),
            p.jobs.to_string(),
            p.mean_usage_to_limit.to_string(),
            p.mean_utilization.to_string(),
            p.diurnal_strength.to_string(),
        ]);
    }
    t.print();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    claim(
        "mean relative slack (1 − usage/limit) across cells",
        format!("{:.2}", mean_gap),
        "Autopilot reports ≈0.23 after tuning; untuned user limits leave much more",
    );
    write_csv(
        &opts.csv("workload.csv"),
        &[
            "cell",
            "machines",
            "tasks",
            "jobs",
            "usage_to_limit",
            "utilization",
            "diurnal",
        ],
        csv,
    )?;
    Ok(())
}
