//! Figure 1: the pooling effect — cell-level future peak computed from
//! machine-level peaks vs task-level peaks.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_core::oracle::{machine_oracle, task_future_peak};
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::sample::UsageMetric;
use oc_trace::time::Tick;
use std::error::Error;

/// Runs the Figure 1 reproduction.
///
/// For every tick of trace cell `a`, sums (i) each machine's future peak
/// of its scheduled tasks and (ii) each task's individual future peak,
/// both normalized to the cell's total limit, and prints the two CDFs.
/// The paper reports the task-level sum ≈ 50 % above the machine-level
/// sum at the median.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "fig1",
        "CDF of cell-level future peak: Σ task peaks vs Σ machine peaks",
    );
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 3);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;
    let metric = UsageMetric::P90;
    let n = gen.config().duration_ticks as usize;
    let full = n as u64;

    let mut machine_sum = vec![0.0; n];
    let mut task_sum = vec![0.0; n];
    let mut limit_sum = vec![0.0; n];
    for m in &machines {
        for (i, v) in machine_oracle(m, metric, full).into_iter().enumerate() {
            machine_sum[i] += v;
        }
        for task in &m.tasks {
            let start = task.spec.start.index() as usize;
            for (k, v) in task_future_peak(task, metric, full).into_iter().enumerate() {
                task_sum[start + k] += v;
            }
            for k in 0..task.samples.len() {
                limit_sum[start + k] += task.spec.limit;
            }
        }
    }
    for i in 0..n {
        assert!(
            (limit_sum[i]
                - machines
                    .iter()
                    .map(|m| m.total_limit_at(Tick(i as u64)))
                    .sum::<f64>())
            .abs()
                < 1e-6
        );
    }

    let norm = |series: &[f64]| -> Vec<f64> {
        series
            .iter()
            .zip(limit_sum.iter())
            .filter(|&(_, &l)| l > 0.0)
            .map(|(&v, &l)| v / l)
            .collect()
    };
    let machine_level = norm(&machine_sum);
    let task_level = norm(&task_sum);

    let mut t = Table::new(&cdf_header("series"));
    t.row(cdf_row("sum(machine-level peak)", &machine_level));
    t.row(cdf_row("sum(task-level peak)", &task_level));
    t.print();

    let median = |v: &[f64]| oc_stats::percentile_slice(v, 50.0).unwrap_or(0.0);
    let ratio = median(&task_level) / median(&machine_level);
    claim(
        "median Σ task peaks / Σ machine peaks",
        format!("{ratio:.2}"),
        "≈1.5 (task-level ~50% higher)",
    );

    let series = [
        ("machine_level".to_string(), machine_level),
        ("task_level".to_string(), task_level),
    ];
    crate::plot::maybe_plot(opts, "fig1: normalized cell-level future peak", &series);
    write_cdf_csv(&opts.csv("fig1.csv"), &series)?;
    Ok(())
}
