//! Table 1: the production-cell inventory.

use crate::common::{banner, claim, Opts};
use crate::output::{write_csv, Table};
use oc_trace::cell::CellConfig;
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// Paper machine counts (×10³) for production cells 1–5.
const PAPER_MACHINES: [f64; 5] = [40.0, 11.0, 10.5, 11.0, 3.5];
/// Paper task counts (×10⁶) for production cells 1–5.
const PAPER_TASKS: [f64; 5] = [14.8, 12.8, 9.4, 81.3, 3.7];

/// Runs the Table 1 reproduction: generates the five production cells and
/// reports machine and task counts next to the paper's (the presets keep
/// the paper's *ratios* at ≈400× smaller machine counts).
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("table1", "production-cell inventory (machines, tasks)");
    let mut t = Table::new(&[
        "cell",
        "machines",
        "tasks",
        "machines/median",
        "paper machines/median",
        "tasks/median",
        "paper tasks/median",
    ]);

    let mut rows = Vec::new();
    let mut machine_counts = Vec::new();
    let mut task_counts = Vec::new();
    for preset in CellConfig::production_cells() {
        // Inventory ratios are the point of this table; keep the presets'
        // machine counts and shorten the period in quick runs instead.
        let mut cell = opts.scaled(preset.clone(), 7);
        cell.machines = preset.machines;
        let gen = WorkloadGenerator::new(cell)?;
        let machines = gen.generate_cell_parallel(opts.threads)?;
        let tasks: usize = machines.iter().map(|m| m.task_count()).sum();
        machine_counts.push(machines.len() as f64);
        task_counts.push(tasks as f64);
        rows.push((gen.config().id.name().to_string(), machines.len(), tasks));
    }
    let median = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let m_med = median(&machine_counts);
    let t_med = median(&task_counts);
    let pm_med = median(&PAPER_MACHINES);
    let pt_med = median(&PAPER_TASKS);

    let mut csv_rows = Vec::new();
    for (i, (name, machines, tasks)) in rows.iter().enumerate() {
        t.row(vec![
            name.clone(),
            machines.to_string(),
            tasks.to_string(),
            format!("{:.2}", *machines as f64 / m_med),
            format!("{:.2}", PAPER_MACHINES[i] / pm_med),
            format!("{:.2}", *tasks as f64 / t_med),
            format!("{:.2}", PAPER_TASKS[i] / pt_med),
        ]);
        csv_rows.push(vec![name.clone(), machines.to_string(), tasks.to_string()]);
    }
    t.print();
    claim(
        "largest/smallest machine ratio",
        format!(
            "{:.1}",
            machine_counts.iter().cloned().fold(0.0, f64::max)
                / machine_counts.iter().cloned().fold(f64::INFINITY, f64::min)
        ),
        "40/3.5 ≈ 11.4",
    );
    write_csv(
        &opts.csv("table1.csv"),
        &["cell", "machines", "tasks"],
        csv_rows,
    )?;
    Ok(())
}
