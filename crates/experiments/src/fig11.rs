//! Figure 11: the max predictor across all trace cells.

use crate::common::{banner, claim, Opts};
use crate::fig10::tick_severities;
use crate::output::{cdf_header, cdf_row, f, write_cdf_csv, Table};
use oc_core::config::SimConfig;
use oc_core::predictor::PredictorSpec;
use oc_core::runner::run_cell_streaming;
use oc_trace::cell::CellConfig;
use oc_trace::gen::WorkloadGenerator;
use std::error::Error;

/// Runs the Figure 11 reproduction: violation rate, severity and savings
/// of `max(N-sigma(5), RC-like(p99))` across trace cells `a..h`.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner("fig11", "max predictor across cells a..h");
    let spec = [PredictorSpec::paper_max()];
    let cfg = SimConfig::default().with_series();

    let mut viol = Table::new(&cdf_header("cell (violation rate)"));
    let mut sev = Table::new(&cdf_header("cell (tick severity)"));
    let mut save = Table::new(&["cell", "mean cell savings"]);
    let mut viol_csv = Vec::new();
    let mut cell_stats: Vec<(String, f64, f64)> = Vec::new();

    for preset in CellConfig::trace_cells() {
        let cell = opts.scaled(preset, 3);
        let name = cell.id.name().to_string();
        let gen = WorkloadGenerator::new(cell)?;
        let run = run_cell_streaming(&gen, &cfg, &spec, opts.threads)?;
        let rates = run.violation_rates(0);
        let savings = run.cell_savings_series(0).expect("series enabled");
        let mean_savings = savings.iter().sum::<f64>() / savings.len().max(1) as f64;
        let med_rate = oc_stats::percentile_slice(&rates, 90.0)?;
        viol.row(cdf_row(&name, &rates));
        sev.row(cdf_row(&name, &tick_severities(&run, 0)));
        save.row(vec![name.clone(), f(mean_savings)]);
        cell_stats.push((name.clone(), med_rate, mean_savings));
        viol_csv.push((name, rates));
    }
    println!("(a) per-machine violation rate");
    viol.print();
    println!("(b) violation severity");
    sev.print();
    println!("(c) savings");
    save.print();

    let a = cell_stats
        .iter()
        .find(|(n, _, _)| n == "a")
        .expect("cell a present");
    let b = cell_stats
        .iter()
        .find(|(n, _, _)| n == "b")
        .expect("cell b present");
    claim(
        "cell b (lowest usage variance) vs cell a violation rate",
        format!("p90 rate: b {:.4} vs a {:.4}", b.1, a.1),
        "cell b stands out as the worst; others comparable to a",
    );
    let others_better = cell_stats
        .iter()
        .filter(|(n, _, _)| n != "a" && n != "b")
        .filter(|(_, _, s)| *s >= a.2)
        .count();
    claim(
        "savings in other cells vs cell a",
        format!("{others_better}/6 cells save at least as much as a"),
        "almost always greater than cell a",
    );

    write_cdf_csv(&opts.csv("fig11a_violation_rate.csv"), &viol_csv)?;
    Ok(())
}
