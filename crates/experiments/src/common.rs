//! Shared experiment options and workload scaling.

use oc_trace::cell::CellConfig;
use oc_trace::time::TICKS_PER_DAY;

/// Workload scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced machine counts and durations; minutes on a laptop.
    Quick,
    /// The presets' full (already workstation-scaled) configuration.
    Full,
}

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Workload scale.
    pub scale: Scale,
    /// Worker threads.
    pub threads: usize,
    /// Directory CSV outputs are written to.
    pub results: std::path::PathBuf,
    /// Render terminal CDF plots.
    pub plot: bool,
    /// Workload seed override; `None` keeps each preset's baked-in seed.
    pub seed: Option<u64>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: Scale::Quick,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            results: crate::output::results_dir(),
            plot: false,
            seed: None,
        }
    }
}

impl Opts {
    /// Applies the scale to a cell preset: quick runs shrink machine
    /// counts 4× and cap durations at `quick_days`. A `--seed` override,
    /// when present, replaces the preset's baked-in seed — this is the one
    /// choke point every experiment's workload passes through.
    pub fn scaled(&self, mut cell: CellConfig, quick_days: u64) -> CellConfig {
        if self.scale == Scale::Quick {
            cell.machines = (cell.machines / 4).max(6);
            cell.duration_ticks = cell.duration_ticks.min(quick_days * TICKS_PER_DAY);
        }
        if let Some(seed) = self.seed {
            cell = cell.with_seed(seed);
        }
        cell
    }

    /// Path of a CSV output file.
    pub fn csv(&self, name: &str) -> std::path::PathBuf {
        self.results.join(name)
    }
}

/// Prints the experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
}

/// Prints a paper-vs-measured claim line.
pub fn claim(what: &str, measured: impl std::fmt::Display, paper: &str) {
    println!("  [claim] {what}: measured {measured} (paper: {paper})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::cell::CellPreset;

    #[test]
    fn quick_scale_shrinks() {
        let opts = Opts {
            scale: Scale::Quick,
            ..Opts::default()
        };
        let cell = opts.scaled(CellConfig::preset(CellPreset::A), 2);
        assert_eq!(cell.machines, 25);
        assert_eq!(cell.duration_ticks, 2 * TICKS_PER_DAY);
    }

    #[test]
    fn full_scale_is_identity() {
        let opts = Opts {
            scale: Scale::Full,
            ..Opts::default()
        };
        let preset = CellConfig::preset(CellPreset::A);
        let cell = opts.scaled(preset.clone(), 2);
        assert_eq!(cell, preset);
    }

    #[test]
    fn seed_override_applies_at_any_scale() {
        for scale in [Scale::Quick, Scale::Full] {
            let opts = Opts {
                scale,
                seed: Some(0xDEAD_BEEF),
                ..Opts::default()
            };
            let cell = opts.scaled(CellConfig::preset(CellPreset::A), 2);
            assert_eq!(cell.seed, 0xDEAD_BEEF);
        }
        let opts = Opts {
            seed: None,
            ..Opts::default()
        };
        let preset = CellConfig::preset(CellPreset::A);
        assert_eq!(opts.scaled(preset.clone(), 99).seed, preset.seed);
    }
}
