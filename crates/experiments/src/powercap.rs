//! Power-cap extension: multi-resource overcommit meets the power budget.
//!
//! Two scenarios, both built on the vectorized CPU+memory replay
//! ([`simulate_machine_vec`]):
//!
//! 1. **Cap frontier.** Node power is derived from each machine's realized
//!    CPU lane through the linear [`PowerModel`]; sweeping the cap ratio
//!    traces the frontier between energy clipped and latency stretch per
//!    [`QosTier`]. Prediction-violation ticks — the moments overcommit
//!    under-estimated the peak — are exactly where demand, and therefore
//!    power, spikes, so the sweep also measures how strongly cap events
//!    concentrate on violation ticks.
//! 2. **Memory-bound gating demo.** A cell whose tasks are CPU-light
//!    memory hogs: admission gated on the CPU lane alone happily packs
//!    machines whose memory lane is oversubscribed, while the worst-lane
//!    vector gate ([`SimMachine::fits`]) stops at memory capacity. This is
//!    the worked example the README quickstart walks through.

use crate::common::{banner, claim, Opts};
use crate::output::{write_csv, Table};
use oc_core::config::SimConfig;
use oc_core::metrics::VIOLATION_EPS;
use oc_core::predictor::PredictorSpec;
use oc_core::sim::simulate_machine_vec;
use oc_qos::power::{apply_cap, PowerModel, QosTier};
use oc_scheduler::arrival::TaskRequest;
use oc_scheduler::machine::{SimMachine, MEM_CAPACITY};
use oc_stats::resource::CPU;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::gen::WorkloadGenerator;
use oc_trace::ids::{JobId, MachineId, TaskId};
use oc_trace::task::SchedulingClass;
use oc_trace::time::Tick;
use oc_trace::MemoryModel;
use std::error::Error;

/// Cap ratios swept by the frontier (fractions of full-load power).
const CAP_RATIOS: [f64; 6] = [0.55, 0.65, 0.75, 0.85, 0.95, 1.0];

/// One machine-tick of the frontier input: realized CPU utilization and
/// whether the deployed predictor was in violation on the CPU lane.
struct TickLoad {
    util: f64,
    cpu_violation: bool,
}

/// Runs the power-cap scenario.
///
/// # Errors
///
/// Propagates simulation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "powercap",
        "node power from the CPU lane: cap frontier + worst-lane admission demo",
    );
    let loads = collect_loads(opts)?;
    frontier(opts, &loads)?;
    gating_demo()?;
    Ok(())
}

/// Replays cell A through the vector simulator and flattens every
/// machine-tick into the frontier's input.
fn collect_loads(opts: &Opts) -> Result<Vec<TickLoad>, Box<dyn Error>> {
    let cell = opts.scaled(CellConfig::preset(CellPreset::A), 2);
    let gen = WorkloadGenerator::new(cell)?;
    let machines = gen.generate_cell_parallel(opts.threads)?;
    let cfg = SimConfig::default().with_series();
    let predictors = [PredictorSpec::paper_max()];
    let mem_model = MemoryModel::default();
    let mut loads = Vec::new();
    for trace in &machines {
        let specs: Vec<_> = predictors
            .iter()
            .map(|s| s.build().map_err(Box::<dyn Error>::from))
            .collect::<Result<_, _>>()?;
        let out = simulate_machine_vec(trace, &cfg, &specs, &mem_model)?;
        let series = out.series.as_ref().expect("series enabled");
        let cpu_capacity = out.capacity.lane(CPU);
        for i in 0..series.avg_usage.len() {
            let prediction = series.predictions[0][i].lane(CPU);
            let oracle = series.oracle[i].lane(CPU);
            loads.push(TickLoad {
                util: (series.avg_usage[i] / cpu_capacity).clamp(0.0, 1.0),
                cpu_violation: prediction + VIOLATION_EPS < oracle,
            });
        }
    }
    Ok(loads)
}

/// Sweeps the cap ratios and prints/writes the frontier.
fn frontier(opts: &Opts, loads: &[TickLoad]) -> Result<(), Box<dyn Error>> {
    let model = PowerModel::default();
    let n = loads.len().max(1) as f64;
    let violation_base = loads.iter().filter(|l| l.cpu_violation).count() as f64 / n;
    let mut table = Table::new(&[
        "cap",
        "capped ticks",
        "energy saved",
        "violation overlap",
        "stretch p99 (prm/std/be)",
    ]);
    let mut rows = Vec::new();
    let mut claim_85: Option<(f64, f64, f64)> = None;
    for cap in CAP_RATIOS {
        let mut capped = 0u64;
        let mut capped_violations = 0u64;
        let mut energy_uncapped = 0.0;
        let mut energy_capped = 0.0;
        let mut stretches: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for load in loads {
            let out = apply_cap(&model, load.util, cap);
            energy_uncapped += out.power;
            energy_capped += model.power(out.granted_util);
            if out.clipped_frac > 0.0 {
                capped += 1;
                if load.cpu_violation {
                    capped_violations += 1;
                }
            }
            for (k, &tier) in QosTier::ALL.iter().enumerate() {
                stretches[k].push(out.tier_stretch(tier));
            }
        }
        let capped_frac = capped as f64 / n;
        let saved = if energy_uncapped > 0.0 {
            1.0 - energy_capped / energy_uncapped
        } else {
            0.0
        };
        // Among capped ticks, how many were prediction violations — the
        // enrichment over the base rate is what links the two mechanisms.
        let overlap = if capped > 0 {
            capped_violations as f64 / capped as f64
        } else {
            0.0
        };
        let p99 = |v: &[f64]| oc_stats::percentile_slice(v, 99.0).unwrap_or(1.0);
        let p99s: Vec<f64> = stretches.iter().map(|s| p99(s)).collect();
        table.row(vec![
            format!("{cap:.2}"),
            format!("{:.1}%", capped_frac * 100.0),
            format!("{:.2}%", saved * 100.0),
            format!(
                "{:.1}% (base {:.1}%)",
                overlap * 100.0,
                violation_base * 100.0
            ),
            format!("{:.3}/{:.3}/{:.3}", p99s[0], p99s[1], p99s[2]),
        ]);
        rows.push(vec![
            format!("{cap}"),
            format!("{capped_frac}"),
            format!("{saved}"),
            format!("{overlap}"),
            format!("{violation_base}"),
            format!("{}", p99s[0]),
            format!("{}", p99s[1]),
            format!("{}", p99s[2]),
        ]);
        if cap == 0.85 {
            claim_85 = Some((capped_frac, overlap, p99s[2]));
            // The operating-point metrics (docs/OPERATIONS.md §2): only
            // advanced while tracing is enabled, like the sim counters.
            if oc_telemetry::enabled() {
                let m = oc_telemetry::global_metrics();
                m.counter("powercap.capped_ticks").add(capped);
                m.counter("powercap.capped_violation_ticks")
                    .add(capped_violations);
                m.gauge("powercap.energy_saved_permille")
                    .set((saved * 1000.0) as i64);
            }
        }
    }
    table.print();
    if let Some((capped_frac, overlap, be_stretch)) = claim_85 {
        claim(
            "ticks throttled at a 0.85 power cap",
            format!(
                "{:.1}% (best-effort p99 stretch {be_stretch:.3})",
                capped_frac * 100.0
            ),
            "extension: power oversubscription tolerates overcommit when caps are rare",
        );
        claim(
            "cap events landing on CPU prediction-violation ticks",
            format!(
                "{:.1}% vs {:.1}% base rate",
                overlap * 100.0,
                loads.iter().filter(|l| l.cpu_violation).count() as f64 / loads.len().max(1) as f64
                    * 100.0
            ),
            "extension: the max composite keeps violations off the power peaks, \
             so capping and misprediction do not compound",
        );
    }
    write_csv(
        &opts.csv("powercap_frontier.csv"),
        &[
            "cap",
            "capped_tick_frac",
            "energy_saved_frac",
            "violation_overlap",
            "violation_base_rate",
            "stretch_p99_premium",
            "stretch_p99_standard",
            "stretch_p99_best_effort",
        ],
        rows,
    )?;
    Ok(())
}

/// A CPU-light memory hog submission.
fn hog(job: u64) -> TaskRequest {
    TaskRequest {
        id: TaskId::new(JobId(job), 0),
        limit: 0.05,
        memory_limit: 0.45,
        runtime_ticks: 1000,
        class: SchedulingClass::Class2,
        priority: 200,
        job_seed: job,
        job_phase: 0.3,
        job_util_base: 0.6,
    }
}

/// An idle machine deploying limit-sum (no overcommit — the gate itself
/// is what is under test, not the predictor).
fn demo_machine() -> Result<SimMachine, Box<dyn Error>> {
    let cell = CellConfig::preset(CellPreset::A);
    Ok(SimMachine::new(
        MachineId(0),
        1.0,
        cell.usage,
        &SimConfig::default(),
        PredictorSpec::LimitSum.build()?,
        7,
    ))
}

/// The memory-bound cell walked through in the README: CPU-only gating
/// admits machines whose memory lane is oversubscribed; the worst-lane
/// vector gate does not.
fn gating_demo() -> Result<(), Box<dyn Error>> {
    let mut vector = demo_machine()?;
    let mut cpu_only = demo_machine()?;
    let mut admitted_vector = 0u32;
    let mut admitted_cpu_only = 0u32;
    for job in 0..4u64 {
        let req = hog(job);
        // The worst-lane gate: both the CPU and memory projections must
        // stay under their capacities.
        if vector.fits(req.limit, req.memory_limit) {
            vector.admit(&req, Tick(0));
            admitted_vector += 1;
        }
        // CPU-only gating: blind to the candidate's memory demand, the
        // pre-vector admission rule.
        if cpu_only.fits(req.limit, 0.0) {
            cpu_only.admit(&req, Tick(0));
            admitted_cpu_only += 1;
        }
    }
    for t in 0..24u64 {
        vector.advance(Tick(t));
        cpu_only.advance(Tick(t));
    }
    let mem_peak = |m: &SimMachine| m.mem_predictions.last().copied().unwrap_or(0.0);
    let (vec_peak, cpu_peak) = (mem_peak(&vector), mem_peak(&cpu_only));
    let mut t = Table::new(&["gate", "tasks admitted", "mem-lane predicted peak"]);
    t.row(vec![
        "worst-lane (vector)".into(),
        format!("{admitted_vector}"),
        format!("{:.2}x capacity", vec_peak / MEM_CAPACITY),
    ]);
    t.row(vec![
        "cpu-only".into(),
        format!("{admitted_cpu_only}"),
        format!("{:.2}x capacity", cpu_peak / MEM_CAPACITY),
    ]);
    t.print();
    claim(
        "memory-bound cell: tasks admitted per machine",
        format!("cpu-only gate {admitted_cpu_only}, worst-lane gate {admitted_vector}"),
        "extension: the CPU lane alone cannot see the binding resource",
    );
    claim(
        "memory-lane predicted peak after admission",
        format!(
            "cpu-only {:.2}x capacity (violating), worst-lane {:.2}x (safe)",
            cpu_peak / MEM_CAPACITY,
            vec_peak / MEM_CAPACITY
        ),
        "extension: worst-lane admission keeps every lane under capacity",
    );
    assert!(
        vec_peak <= MEM_CAPACITY + 1e-9 && cpu_peak > MEM_CAPACITY,
        "demo invariant: vector gate safe ({vec_peak}), cpu-only oversubscribed ({cpu_peak})"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_demo_invariants_hold() {
        // The demo itself asserts: vector gate stays under memory
        // capacity, cpu-only oversubscribes.
        gating_demo().unwrap();
    }

    #[test]
    fn frontier_runs_on_a_tiny_cell() {
        let mut opts = Opts {
            results: std::env::temp_dir().join("oc-powercap-test"),
            ..Opts::default()
        };
        opts.threads = 2;
        let loads = {
            let mut loads = collect_loads(&opts).unwrap();
            loads.truncate(2000);
            loads
        };
        frontier(&opts, &loads).unwrap();
        let csv = std::fs::read_to_string(opts.csv("powercap_frontier.csv")).unwrap();
        assert!(csv.lines().count() == CAP_RATIOS.len() + 1, "{csv}");
        assert!(csv.starts_with("cap,"), "{csv}");
    }
}
