//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--threads N] [--results DIR] [--seed U64]
//!       [--trace-out FILE] <experiment>...
//! repro all
//! ```
//!
//! With `--trace-out FILE`, structured tracing is enabled for the run:
//! the simulator core records sampled `sim.tick` spans and the drained
//! events are written to FILE as JSONL on exit (see `docs/OPERATIONS.md`).

use oc_experiments::common::{Opts, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = Opts::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => return usage("--trace-out needs a file path"),
            },
            "--full" => opts.scale = Scale::Full,
            "--plot" => opts.plot = true,
            "--quick" => opts.scale = Scale::Quick,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.threads = n,
                None => return usage("--threads needs a positive integer"),
            },
            "--results" => match args.next() {
                Some(dir) => opts.results = dir.into(),
                None => return usage("--results needs a directory"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = Some(s),
                None => return usage("--seed needs a u64"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag '{other}'")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        return usage("no experiment given");
    }
    if trace_out.is_some() {
        oc_telemetry::trace::enable();
    }
    println!(
        "scale: {:?}, threads: {}, results dir: {}{}",
        opts.scale,
        opts.threads,
        opts.results.display(),
        match opts.seed {
            Some(s) => format!(", seed: {s}"),
            None => String::new(),
        }
    );
    for id in &experiments {
        if let Err(e) = oc_experiments::dispatch(id, &opts) {
            eprintln!("error running {id}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = trace_out {
        oc_telemetry::trace::disable();
        match write_trace(&path) {
            Ok(n) => eprintln!("repro: wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("repro: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn write_trace(path: &str) -> std::io::Result<usize> {
    let events = oc_telemetry::trace::drain();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    oc_telemetry::trace::write_jsonl(&mut w, &events)?;
    Ok(events.len())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--full] [--plot] [--threads N] [--results DIR] [--seed U64] \
         [--trace-out FILE] <experiment>...\n\
         experiments: {}, fig13 (= fig14), autopilot, seasonal, powercap, all\n\
         --full runs the presets' full scale; the default is a quick pass\n\
         --seed overrides every cell preset's workload seed (sensitivity runs)",
        oc_experiments::ALL_EXPERIMENTS.join(", ")
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
