//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--threads N] [--results DIR] [--seed U64] <experiment>...
//! repro all
//! ```

use oc_experiments::common::{Opts, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = Opts::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => opts.scale = Scale::Full,
            "--plot" => opts.plot = true,
            "--quick" => opts.scale = Scale::Quick,
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.threads = n,
                None => return usage("--threads needs a positive integer"),
            },
            "--results" => match args.next() {
                Some(dir) => opts.results = dir.into(),
                None => return usage("--results needs a directory"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = Some(s),
                None => return usage("--seed needs a u64"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag '{other}'")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        return usage("no experiment given");
    }
    println!(
        "scale: {:?}, threads: {}, results dir: {}{}",
        opts.scale,
        opts.threads,
        opts.results.display(),
        match opts.seed {
            Some(s) => format!(", seed: {s}"),
            None => String::new(),
        }
    );
    for id in &experiments {
        if let Err(e) = oc_experiments::dispatch(id, &opts) {
            eprintln!("error running {id}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--full] [--plot] [--threads N] [--results DIR] [--seed U64] <experiment>...\n\
         experiments: {}, fig13 (= fig14), all\n\
         --full runs the presets' full scale; the default is a quick pass\n\
         --seed overrides every cell preset's workload seed (sensitivity runs)",
        oc_experiments::ALL_EXPERIMENTS.join(", ")
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
