//! Figure 4: task submission rates across trace cells.

use crate::common::{banner, claim, Opts};
use crate::output::{cdf_header, cdf_row, write_cdf_csv, Table};
use oc_trace::cell::CellConfig;
use oc_trace::gen::{submission_counts, WorkloadGenerator};
use std::error::Error;

/// Runs the Figure 4 reproduction: per-cell CDFs of tasks submitted per
/// 5-minute tick. The initial fill at tick 0 is excluded — it is an
/// artifact of starting the simulated cell hot, not an arrival.
///
/// # Errors
///
/// Propagates generation and I/O errors.
pub fn run(opts: &Opts) -> Result<(), Box<dyn Error>> {
    banner(
        "fig4",
        "CDF of task submission rate (tasks / 5 min) per cell",
    );
    let mut t = Table::new(&cdf_header("cell (tasks/5min)"));
    let mut csv = Vec::new();
    let mut medians = Vec::new();
    for preset in CellConfig::trace_cells() {
        let cell = opts.scaled(preset, 3);
        let name = cell.id.name().to_string();
        let gen = WorkloadGenerator::new(cell)?;
        let machines = gen.generate_cell_parallel(opts.threads)?;
        let counts: Vec<f64> = submission_counts(&machines, gen.config().duration_ticks)
            .into_iter()
            .skip(1) // Tick 0 is the initial fill.
            .map(|c| c as f64)
            .collect();
        let median = oc_stats::percentile_slice(&counts, 50.0)?;
        medians.push(1000.0 * median / machines.len() as f64);
        t.row(cdf_row(&name, &counts));
        csv.push((name, counts));
    }
    t.print();
    claim(
        "median submission rate per 1000 machines",
        format!(
            "{:.0}..{:.0} tasks/5min",
            medians.iter().cloned().fold(f64::INFINITY, f64::min),
            medians.iter().cloned().fold(0.0, f64::max)
        ),
        "paper cells: ~50-1000 tasks/5min at 10-40k machines ⇒ ~5-40 per 1000 machines",
    );
    write_cdf_csv(&opts.csv("fig4.csv"), &csv)?;
    Ok(())
}
