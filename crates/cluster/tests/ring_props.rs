//! Property tests for ring placement stability under membership events
//! — the invariants `Cluster::replace` leans on.
//!
//! Placement hashes only `(seed, node, vnode)`; the generation is pure
//! metadata. So replacing a member *at the same slot* under a bumped
//! generation must move no keys, and the owner/replica relationship
//! (mirror targets distinct from owners) must survive any generation.

use oc_cluster::{HashRing, RingSpec};
use proptest::prelude::*;

fn ring(nodes: usize, vnodes: usize, seed: u64, generation: u64) -> HashRing {
    HashRing::new(RingSpec {
        nodes,
        vnodes,
        seed,
        generation,
    })
}

/// An alive mask with at least two live members: bit `i` of `bits`
/// decides member `i`, and the two lowest indices are forced alive.
fn alive_mask(nodes: usize, bits: u64) -> Vec<bool> {
    let mut alive: Vec<bool> = (0..nodes).map(|i| bits >> (i % 64) & 1 == 1).collect();
    alive[0] = true;
    alive[1] = true;
    alive
}

proptest! {
    /// Same-slot replacement (the `Cluster::replace` path) moves no
    /// keys: rings that differ only in generation route identically,
    /// under any liveness mask.
    #[test]
    fn same_slot_replacement_moves_no_keys(
        nodes in 2usize..7,
        vnodes in 1usize..48,
        seed in 0u64..u64::MAX,
        gen_a in 0u64..u64::MAX,
        gen_b in 0u64..u64::MAX,
        mask in 0u64..u64::MAX,
        hashes in proptest::collection::vec(0u64..u64::MAX, 1..128),
    ) {
        let a = ring(nodes, vnodes, seed, gen_a);
        let b = ring(nodes, vnodes, seed, gen_b);
        let alive = alive_mask(nodes, mask);
        for h in hashes {
            prop_assert_eq!(a.routes(h, &alive), b.routes(h, &alive));
        }
    }

    /// Mirror targets stay distinct from owners across generation
    /// bumps: with at least two live members, every key's replica
    /// exists and differs from its owner, at any generation.
    #[test]
    fn mirror_targets_distinct_from_owners_across_generations(
        nodes in 2usize..7,
        vnodes in 1usize..48,
        seed in 0u64..u64::MAX,
        generation in 0u64..u64::MAX,
        mask in 0u64..u64::MAX,
        hashes in proptest::collection::vec(0u64..u64::MAX, 1..128),
    ) {
        let r = ring(nodes, vnodes, seed, generation);
        let alive = alive_mask(nodes, mask);
        for h in hashes {
            let (owner, replica) = r.routes(h, &alive);
            let owner = owner.expect("live members exist");
            let replica = replica.expect(">=2 live members yield a replica");
            prop_assert!(owner != replica, "owner {owner} == replica");
            prop_assert!(alive[owner] && alive[replica]);
        }
    }

    /// The per-member ownership maps (what each process enforces with
    /// `ERR not-mine`) partition every key into exactly one owner and
    /// one replica, and the partition is generation-independent — the
    /// rebuilt member's map equals its predecessor's.
    #[test]
    fn ownership_maps_partition_identically_across_generations(
        nodes in 2usize..6,
        vnodes in 1usize..32,
        seed in 0u64..u64::MAX,
        gen_a in 0u64..u64::MAX,
        gen_b in 0u64..u64::MAX,
        hashes in proptest::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        use oc_serve::config::KeyRole;
        let a = ring(nodes, vnodes, seed, gen_a);
        let b = ring(nodes, vnodes, seed, gen_b);
        let maps_a: Vec<_> = (0..nodes).map(|i| a.ownership_for(i)).collect();
        let maps_b: Vec<_> = (0..nodes).map(|i| b.ownership_for(i)).collect();
        for h in hashes {
            let roles_a: Vec<_> = maps_a.iter().map(|m| m.role_of(h)).collect();
            let roles_b: Vec<_> = maps_b.iter().map(|m| m.role_of(h)).collect();
            prop_assert_eq!(&roles_a, &roles_b);
            let owners = roles_a.iter().filter(|r| **r == KeyRole::Owner).count();
            let replicas = roles_a.iter().filter(|r| **r == KeyRole::Replica).count();
            prop_assert_eq!(owners, 1);
            prop_assert_eq!(replicas, 1);
        }
    }
}
