//! `oc-clusterd` — run a multi-process cluster under one supervisor.
//!
//! ```text
//! oc-clusterd [--nodes N] [--vnodes V] [--seed S] [--shards K]
//!             [--agg-addr IP:PORT]      # aggregator bind, default 127.0.0.1:0
//! oc-clusterd --smoke                   # 3-process failover scenario, exit 0/1
//! ```
//!
//! The default mode spawns `N` member processes, prints one
//! `NODE <index> <addr>` line per member plus `AGG <addr>` for the
//! aggregation endpoint, and serves until a client sends `SHUTDOWN` to
//! the aggregator (which drains every member first).

use oc_cluster::{aggregator, Cluster, ClusterConfig};
use std::process::ExitCode;
use std::time::Duration;

fn fail(msg: &str) -> ExitCode {
    eprintln!("oc-clusterd: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    oc_cluster::run_child_if_node();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return match oc_cluster::smoke::run() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        };
    }

    let mut cfg = ClusterConfig::default();
    let mut agg_addr = "127.0.0.1:0".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return fail(&format!("{flag} needs a value"));
        };
        let parsed = match flag.as_str() {
            "--nodes" => value.parse().map(|v| cfg.nodes = v).is_ok(),
            "--vnodes" => value.parse().map(|v| cfg.vnodes = v).is_ok(),
            "--seed" => value.parse().map(|v| cfg.seed = v).is_ok(),
            "--shards" => value.parse().map(|v| cfg.shards = v).is_ok(),
            "--queue-depth" => value.parse().map(|v| cfg.queue_depth = v).is_ok(),
            "--agg-addr" => {
                agg_addr = value.clone();
                true
            }
            other => return fail(&format!("unknown flag {other}")),
        };
        if !parsed {
            return fail(&format!("{flag}: invalid value {value}"));
        }
    }
    if cfg.nodes == 0 {
        return fail("--nodes must be >= 1");
    }

    let cluster = match Cluster::start(&cfg) {
        Ok(c) => c,
        Err(e) => return fail(&format!("start: {e}")),
    };
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("NODE {i} {addr}");
    }
    let members = aggregator::members(&cluster.addrs());
    let agg = match aggregator::Aggregator::start(&agg_addr, members) {
        Ok(a) => a,
        Err(e) => return fail(&format!("aggregator: {e}")),
    };
    println!("AGG {}", agg.addr());

    // Serve until a SHUTDOWN lands on the aggregator (it drains the
    // members itself before raising the flag).
    while !agg.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    agg.stop();
    drop(cluster); // Members already drained; reap any stragglers.
    ExitCode::SUCCESS
}
