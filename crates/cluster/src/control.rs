//! Blocking control-plane client: one request/response exchange with a
//! member process over a fresh connection.
//!
//! The data plane belongs to `oc-client` (pipelining, batching, retry);
//! this module only carries the rare supervisor traffic — `STATS`,
//! `METRICS`, `SHUTDOWN`, and the occasional probe — where a connection
//! per request is simpler than a pool and the cost is irrelevant.

use oc_serve::proto::{Request, Response, StatsSnapshot};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Deadline for one control exchange (connect, write, read).
pub const CONTROL_TIMEOUT: Duration = Duration::from_secs(10);

fn proto_err(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Performs one request/response exchange with the process at `addr`.
///
/// # Errors
///
/// I/O errors for connect/read/write failures (including deadline
/// expiry) and `InvalidData` for an unparseable response line.
pub fn request(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, CONTROL_TIMEOUT)?;
    stream.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    stream.set_write_timeout(Some(CONTROL_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(req.encode().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before answering",
        ));
    }
    Response::parse(line.trim_end()).map_err(proto_err)
}

/// Fetches a member's `STATS` snapshot.
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` if the peer answered
/// with anything but `STATS`.
pub fn stats(addr: SocketAddr) -> io::Result<StatsSnapshot> {
    match request(addr, &Request::Stats)? {
        Response::Stats(s) => Ok(s),
        other => Err(proto_err(format_args!("expected STATS, got {other:?}"))),
    }
}

/// Fetches a member's `METRICS` exposition line.
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`METRICS`
/// answer.
pub fn metrics_exposition(addr: SocketAddr) -> io::Result<String> {
    match request(addr, &Request::Metrics)? {
        Response::Metrics { exposition } => Ok(exposition),
        other => Err(proto_err(format_args!("expected METRICS, got {other:?}"))),
    }
}

/// Asks a member to drain and exit (the drain-then-snapshot shutdown
/// path — the handoff primitive).
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`OK` answer.
pub fn shutdown(addr: SocketAddr) -> io::Result<()> {
    match request(addr, &Request::Shutdown)? {
        Response::Ok => Ok(()),
        other => Err(proto_err(format_args!("expected OK, got {other:?}"))),
    }
}
