//! Blocking control-plane client: one request/response exchange with a
//! member process over a fresh connection.
//!
//! The data plane belongs to `oc-client` (pipelining, batching, retry);
//! this module only carries the rare supervisor traffic — `STATS`,
//! `METRICS`, `SHUTDOWN`, and the occasional probe — where a connection
//! per request is simpler than a pool and the cost is irrelevant.

use crate::ring::RingSpec;
use oc_serve::proto::{Request, Response, StatsSnapshot};
use oc_serve::shard::key_hash;
use oc_trace::ids::{CellId, MachineId};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Deadline for one control exchange (connect, write, read).
pub const CONTROL_TIMEOUT: Duration = Duration::from_secs(10);

fn proto_err(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Performs one request/response exchange with the process at `addr`.
///
/// # Errors
///
/// I/O errors for connect/read/write failures (including deadline
/// expiry) and `InvalidData` for an unparseable response line.
pub fn request(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, CONTROL_TIMEOUT)?;
    stream.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    stream.set_write_timeout(Some(CONTROL_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(req.encode().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before answering",
        ));
    }
    Response::parse(line.trim_end()).map_err(proto_err)
}

/// Fetches a member's `STATS` snapshot.
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` if the peer answered
/// with anything but `STATS`.
pub fn stats(addr: SocketAddr) -> io::Result<StatsSnapshot> {
    match request(addr, &Request::Stats)? {
        Response::Stats(s) => Ok(s),
        other => Err(proto_err(format_args!("expected STATS, got {other:?}"))),
    }
}

/// Fetches a member's `METRICS` exposition line.
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`METRICS`
/// answer.
pub fn metrics_exposition(addr: SocketAddr) -> io::Result<String> {
    match request(addr, &Request::Metrics)? {
        Response::Metrics { exposition } => Ok(exposition),
        other => Err(proto_err(format_args!("expected METRICS, got {other:?}"))),
    }
}

/// Asks a member to drain and exit (the drain-then-snapshot shutdown
/// path — the handoff primitive).
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`OK` answer.
pub fn shutdown(addr: SocketAddr) -> io::Result<()> {
    match request(addr, &Request::Shutdown)? {
        Response::Ok => Ok(()),
        other => Err(proto_err(format_args!("expected OK, got {other:?}"))),
    }
}

/// A member's answer to `RING`: the ring description it currently
/// serves, with the full 64-bit generation (the packed `epoch` only
/// carries the low 16 bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingDesc {
    /// Ring member count.
    pub nodes: u64,
    /// Virtual nodes per member.
    pub vnodes: u64,
    /// Placement seed.
    pub seed: u64,
    /// Full ring generation.
    pub generation: u64,
    /// The member's packed epoch at answer time.
    pub epoch: u64,
    /// Member data-plane addresses by ring index (empty until the
    /// supervisor pushed them).
    pub addrs: Vec<String>,
}

impl RingDesc {
    /// The [`RingSpec`] this description names.
    pub fn spec(&self) -> RingSpec {
        RingSpec {
            nodes: self.nodes as usize,
            vnodes: self.vnodes as usize,
            seed: self.seed,
            generation: self.generation,
        }
    }
}

/// Fetches a member's current ring description (`RING`).
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`RING`
/// answer (including the `ERR internal` a standalone server gives).
pub fn ring(addr: SocketAddr) -> io::Result<RingDesc> {
    match request(addr, &Request::Ring)? {
        Response::Ring {
            nodes,
            vnodes,
            seed,
            generation,
            epoch,
            addrs,
        } => Ok(RingDesc {
            nodes,
            vnodes,
            seed,
            generation,
            epoch,
            addrs,
        }),
        other => Err(proto_err(format_args!("expected RING, got {other:?}"))),
    }
}

/// Pushes a ring description to a member (`RINGSET`): the member
/// rebuilds its ownership for the new geometry, re-stamps its epoch
/// with `spec.generation`, and starts answering `RING` with it.
///
/// # Errors
///
/// Propagates [`request`] failures; `InvalidData` for a non-`OK` answer
/// (e.g. `ERR stale` for a generation behind the installed one).
pub fn ring_set(addr: SocketAddr, spec: &RingSpec, addrs: &[String]) -> io::Result<()> {
    let req = Request::RingSet {
        nodes: spec.nodes as u64,
        vnodes: spec.vnodes as u64,
        seed: spec.seed,
        generation: spec.generation,
        addrs: addrs.to_vec(),
    };
    match request(addr, &req)? {
        Response::Ok => Ok(()),
        other => Err(proto_err(format_args!("expected OK, got {other:?}"))),
    }
}

/// One replayable sample from a `HANDOFF` dump: the verbatim wire line
/// (replayed as-is, so float formatting round-trips bit-identically)
/// plus its parsed machine identity for per-machine grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffLine {
    /// The raw `OBSERVE` line, without its terminator.
    pub line: String,
    /// Owning cell name.
    pub cell: String,
    /// Machine id within the cell.
    pub machine: u32,
}

impl HandoffLine {
    /// The routing hash of this sample's machine — the same
    /// [`key_hash`] the ring and the servers use.
    pub fn key_hash(&self) -> u64 {
        key_hash(&(CellId::new(&self.cell), MachineId(self.machine)))
    }
}

fn parse_handoff_line(raw: &str) -> io::Result<HandoffLine> {
    let mut toks = raw.split_ascii_whitespace();
    match (
        toks.next(),
        toks.next(),
        toks.next().and_then(|m| m.parse::<u32>().ok()),
    ) {
        (Some("OBSERVE"), Some(cell), Some(machine)) => Ok(HandoffLine {
            line: raw.to_string(),
            cell: cell.to_string(),
            machine,
        }),
        _ => Err(proto_err(format_args!(
            "handoff dump line is not an OBSERVE: {raw:?}"
        ))),
    }
}

/// Fetches a member's handoff sample log (`HANDOFF`): the `HANDOFF <n>`
/// header followed by `n` `OBSERVE` lines in original arrival order.
///
/// # Errors
///
/// I/O errors (including a dump truncated mid-stream) and `InvalidData`
/// for a malformed header or a non-`OBSERVE` dump line — including the
/// `ERR internal` a member with the log disabled answers.
pub fn handoff(addr: SocketAddr) -> io::Result<Vec<HandoffLine>> {
    let stream = TcpStream::connect_timeout(&addr, CONTROL_TIMEOUT)?;
    stream.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    stream.set_write_timeout(Some(CONTROL_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"HANDOFF\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before answering",
        ));
    }
    let header = line.trim_end();
    let Some(n) = header
        .strip_prefix("HANDOFF ")
        .and_then(|s| s.parse::<usize>().ok())
    else {
        return Err(proto_err(format_args!(
            "expected 'HANDOFF <n>', got {header:?}"
        )));
    };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("handoff dump truncated at line {i}/{n}"),
            ));
        }
        out.push(parse_handoff_line(line.trim_end())?);
    }
    Ok(out)
}

/// Pipelines raw request `lines` to `addr` in bounded windows, reading
/// one response per line — the state-rebuild replay primitive. `BUSY`
/// lines are retried until accepted; `ERR` answers (e.g. `not-mine` for
/// keys outside the target's slots) count as rejected, not failures.
/// Returns `(acknowledged, rejected)`.
///
/// # Errors
///
/// I/O errors and `InvalidData` for an unparseable or non-request
/// response line.
pub fn drive_lines(addr: SocketAddr, lines: &[String]) -> io::Result<(u64, u64)> {
    /// Lines in flight per window: bounds both peers' buffered bytes so
    /// neither side can deadlock on a full TCP window.
    const WINDOW: usize = 512;
    if lines.is_empty() {
        return Ok((0, 0));
    }
    let stream = TcpStream::connect_timeout(&addr, CONTROL_TIMEOUT)?;
    stream.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    stream.set_write_timeout(Some(CONTROL_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut acknowledged = 0u64;
    let mut rejected = 0u64;
    let mut pending: Vec<&String> = lines.iter().collect();
    let mut frame = String::new();
    let mut resp = String::new();
    while !pending.is_empty() {
        let mut retry = Vec::new();
        for window in pending.chunks(WINDOW) {
            frame.clear();
            for line in window {
                frame.push_str(line);
                frame.push('\n');
            }
            writer.write_all(frame.as_bytes())?;
            writer.flush()?;
            for line in window {
                resp.clear();
                if reader.read_line(&mut resp)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-replay",
                    ));
                }
                match Response::parse(resp.trim_end()).map_err(proto_err)? {
                    Response::Ok => acknowledged += 1,
                    Response::Busy => retry.push(*line),
                    Response::Err { .. } => rejected += 1,
                    other => {
                        return Err(proto_err(format_args!("replay answered {other:?}")));
                    }
                }
            }
        }
        if !retry.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        pending = retry;
    }
    Ok((acknowledged, rejected))
}
