//! The aggregation endpoint: one TCP address that answers `STATS` and
//! `METRICS` for the whole cluster by fanning out to every live member
//! and merging ([`StatsSnapshot::merge`] /
//! [`oc_telemetry::metrics::merge_expositions`]).
//!
//! `SHUTDOWN` forwards to every member (each drains through its normal
//! snapshot path) and then stops the aggregator itself — so one verb
//! retires the whole service, mirroring the single-process contract.
//! Data-plane verbs are rejected: machines belong to members, and a
//! proxy hop would defeat the ring.

use crate::control;
use oc_serve::proto::{ErrCode, Request, Response, StatsSnapshot};
use oc_telemetry::metrics::merge_expositions;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop re-checks its stop flag. Control-plane
/// only; data never flows through the aggregator.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running aggregation endpoint.
#[derive(Debug)]
pub struct Aggregator {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Shared member list: `(addr, alive)` by ring index. The supervisor (or
/// a test) flips `alive` when members die or retire.
pub type Members = Arc<Mutex<Vec<(SocketAddr, bool)>>>;

/// Builds the shared member list the aggregator fans out to.
pub fn members(addrs: &[SocketAddr]) -> Members {
    Arc::new(Mutex::new(addrs.iter().map(|a| (*a, true)).collect()))
}

impl Aggregator {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts answering.
    ///
    /// # Errors
    ///
    /// Bind/listen failures.
    pub fn start(addr: &str, members: Members) -> std::io::Result<Aggregator> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("oc-cluster-agg".to_string())
            .spawn(move || accept_loop(listener, loop_stop, members))?;
        Ok(Aggregator {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client's `SHUTDOWN` has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Aggregator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, members: Members) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One connection at a time: aggregation traffic is rare
                // and each exchange is bounded by control deadlines.
                let _ = serve_conn(stream, &stop, &members);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_conn(stream: TcpStream, stop: &AtomicBool, members: &Members) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(control::CONTROL_TIMEOUT))?;
    stream.set_write_timeout(Some(control::CONTROL_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let resp = answer(line.trim_end(), stop, members);
        writer.write_all(resp.encode().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn answer(line: &str, stop: &AtomicBool, members: &Members) -> Response {
    let live: Vec<SocketAddr> = members
        .lock()
        .expect("members lock")
        .iter()
        .filter(|(_, alive)| *alive)
        .map(|(a, _)| *a)
        .collect();
    let unreachable = |e: std::io::Error| Response::Err {
        code: ErrCode::Internal,
        detail: format!("member unreachable: {e}"),
    };
    match Request::parse(line) {
        Ok(Request::Stats) => {
            let mut merged = StatsSnapshot::default();
            for addr in &live {
                match control::stats(*addr) {
                    Ok(s) => merged.merge(&s),
                    Err(e) => return unreachable(e),
                }
            }
            Response::Stats(merged)
        }
        Ok(Request::Metrics) => {
            let mut lines = Vec::new();
            for addr in &live {
                match control::metrics_exposition(*addr) {
                    Ok(l) => lines.push(l),
                    Err(e) => return unreachable(e),
                }
            }
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            match merge_expositions(&refs) {
                Some(exposition) => Response::Metrics { exposition },
                None => Response::Err {
                    code: ErrCode::Internal,
                    detail: "member exposition failed to parse".to_string(),
                },
            }
        }
        Ok(Request::Shutdown) => {
            for addr in &live {
                let _ = control::shutdown(*addr);
            }
            stop.store(true, Ordering::SeqCst);
            Response::Ok
        }
        Ok(_) => Response::Err {
            code: ErrCode::NotMine,
            detail: "aggregator serves STATS/METRICS/SHUTDOWN; send data to the owning member"
                .to_string(),
        },
        Err(e) => Response::Err {
            code: ErrCode::Parse,
            detail: e.to_string(),
        },
    }
}
