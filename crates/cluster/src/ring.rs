//! Seeded consistent-hash ring with virtual nodes.
//!
//! Machine keys are placed on a `u64` ring by their stable
//! [`oc_serve::shard::key_hash`]; each process contributes `vnodes`
//! points hashed from `(seed, node, vnode)`. A key's **owner** is the
//! first live node clockwise from the key's hash, and its **replica**
//! is the next *distinct* live node after the owner — which is exactly
//! the node that becomes owner if the current owner is removed. That
//! successor identity is the basis of failover correctness: a replica
//! that mirrored the owner's ingest stream already holds the state the
//! new ring expects it to serve.
//!
//! Everything is deterministic and std-only: `DefaultHasher::new()`
//! uses fixed keys, so every process (and every client) that shares a
//! [`RingSpec`] computes bit-identical placement — there is no ring
//! gossip, only the spec and a generation number.

use oc_serve::config::{KeyRole, OwnershipMap};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Default virtual nodes per process. 64 points per node keeps the
/// expected ownership imbalance of a small ring under ~15%.
pub const DEFAULT_VNODES: usize = 64;

/// Default placement seed.
pub const DEFAULT_SEED: u64 = 17;

/// The shared description of a ring: everything a process or client
/// needs to compute identical placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSpec {
    /// Number of member processes (ring indices `0..nodes`).
    pub nodes: usize,
    /// Virtual nodes per process.
    pub vnodes: usize,
    /// Placement seed, folded into every point hash.
    pub seed: u64,
    /// Ring generation: bumped whenever membership changes (a retired
    /// or replaced node), stamped into each server's `epoch` so clients
    /// can detect a re-ring (see [`oc_serve::proto::pack_epoch`]).
    pub generation: u64,
}

impl RingSpec {
    /// A spec with default vnodes/seed at generation 0.
    pub fn new(nodes: usize) -> RingSpec {
        RingSpec {
            nodes,
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            generation: 0,
        }
    }

    /// Builds the ring this spec describes.
    pub fn build(&self) -> HashRing {
        HashRing::new(*self)
    }
}

/// A built ring: sorted vnode points over the member processes.
#[derive(Debug, Clone)]
pub struct HashRing {
    spec: RingSpec,
    /// `(point, node)` sorted by point; ties broken by node index so the
    /// sort is total and placement is deterministic.
    points: Vec<(u64, u32)>,
}

/// The hash of one virtual node: `(seed, node, vnode)` through the
/// deterministic `DefaultHasher`.
fn point_hash(seed: u64, node: usize, vnode: usize) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    (node as u64).hash(&mut h);
    (vnode as u64).hash(&mut h);
    h.finish()
}

impl HashRing {
    /// Builds the ring for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec.nodes == 0` or `spec.vnodes == 0` — an empty ring
    /// has no owner for any key, a config error, not a runtime state.
    pub fn new(spec: RingSpec) -> HashRing {
        assert!(spec.nodes > 0, "ring needs at least one node");
        assert!(spec.vnodes > 0, "ring needs at least one vnode per node");
        let mut points = Vec::with_capacity(spec.nodes * spec.vnodes);
        for node in 0..spec.nodes {
            for vnode in 0..spec.vnodes {
                points.push((point_hash(spec.seed, node, vnode), node as u32));
            }
        }
        points.sort_unstable();
        HashRing { spec, points }
    }

    /// The spec this ring was built from.
    pub fn spec(&self) -> &RingSpec {
        &self.spec
    }

    /// Member count (including currently-dead nodes; liveness is the
    /// caller's `alive` mask).
    pub fn nodes(&self) -> usize {
        self.spec.nodes
    }

    /// Index into `points` of the first vnode clockwise from `hash`.
    fn first_point(&self, hash: u64) -> usize {
        match self.points.binary_search(&(hash, 0)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }

    /// The live owner of a key hash: the first point clockwise whose
    /// node is marked alive. `None` if no node is alive.
    pub fn owner(&self, hash: u64, alive: &[bool]) -> Option<usize> {
        debug_assert_eq!(alive.len(), self.spec.nodes);
        let start = self.first_point(hash);
        for i in 0..self.points.len() {
            let node = self.points[(start + i) % self.points.len()].1 as usize;
            if alive[node] {
                return Some(node);
            }
        }
        None
    }

    /// The owner and the replica (the next distinct live node after the
    /// owner — the takeover target if the owner dies). The replica is
    /// `None` when fewer than two nodes are alive.
    pub fn routes(&self, hash: u64, alive: &[bool]) -> (Option<usize>, Option<usize>) {
        debug_assert_eq!(alive.len(), self.spec.nodes);
        let start = self.first_point(hash);
        let mut owner = None;
        for i in 0..self.points.len() {
            let node = self.points[(start + i) % self.points.len()].1 as usize;
            if !alive[node] {
                continue;
            }
            match owner {
                None => owner = Some(node),
                Some(o) if node != o => return (owner, Some(node)),
                Some(_) => {}
            }
        }
        (owner, None)
    }

    /// This ring member's [`KeyRole`] classifier for `oc-serve`:
    /// `Owner` for keys it owns, `Replica` for keys whose replica it
    /// is, `Remote` otherwise. All `spec.nodes` members are treated as
    /// alive — a process cannot observe peer deaths itself; clients
    /// steer traffic, and a replica already accepts everything it needs
    /// to take over.
    pub fn ownership_for(&self, index: usize) -> OwnershipMap {
        assert!(index < self.spec.nodes, "index beyond ring membership");
        let ring = self.clone();
        let alive = vec![true; self.spec.nodes];
        OwnershipMap::new(move |hash| match ring.routes(hash, &alive) {
            (Some(o), _) if o == index => KeyRole::Owner,
            (_, Some(r)) if r == index => KeyRole::Replica,
            _ => KeyRole::Remote,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::shard::key_hash;
    use oc_trace::ids::{CellId, MachineId};

    fn hashes(n: u64) -> impl Iterator<Item = u64> {
        let cell = CellId::new("fleet");
        (0..n).map(move |m| key_hash(&(cell.clone(), MachineId(m as u32))))
    }

    #[test]
    fn placement_is_deterministic() {
        let a = RingSpec::new(3).build();
        let b = RingSpec::new(3).build();
        let alive = vec![true; 3];
        for h in hashes(1000) {
            assert_eq!(a.owner(h, &alive), b.owner(h, &alive));
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let ring = RingSpec::new(3).build();
        let alive = vec![true; 3];
        let mut counts = [0u64; 3];
        for h in hashes(30_000) {
            counts[ring.owner(h, &alive).unwrap()] += 1;
        }
        for &c in &counts {
            assert!(
                (4_000..=16_000).contains(&c),
                "pathological imbalance: {counts:?}"
            );
        }
    }

    #[test]
    fn replica_is_distinct_from_owner() {
        let ring = RingSpec::new(3).build();
        let alive = vec![true; 3];
        for h in hashes(1000) {
            let (o, r) = ring.routes(h, &alive);
            assert_ne!(o.unwrap(), r.unwrap());
        }
    }

    /// The failover invariant: for every key, the replica under the full
    /// ring is the owner once the old owner is marked dead.
    #[test]
    fn replica_becomes_owner_after_owner_death() {
        let ring = RingSpec::new(3).build();
        let alive = vec![true; 3];
        for h in hashes(2000) {
            let (owner, replica) = ring.routes(h, &alive);
            let mut shrunk = alive.clone();
            shrunk[owner.unwrap()] = false;
            assert_eq!(ring.owner(h, &shrunk), replica);
        }
    }

    #[test]
    fn keys_not_placed_on_dead_nodes() {
        let ring = RingSpec::new(4).build();
        let alive = vec![true, false, true, false];
        for h in hashes(2000) {
            let (o, r) = ring.routes(h, &alive);
            assert!(matches!(o, Some(0) | Some(2)));
            assert!(matches!(r, Some(0) | Some(2)));
            assert_ne!(o, r);
        }
    }

    #[test]
    fn no_live_node_means_no_owner() {
        let ring = RingSpec::new(2).build();
        assert_eq!(ring.owner(42, &[false, false]), None);
        assert_eq!(ring.routes(42, &[false, false]), (None, None));
    }

    #[test]
    fn single_live_node_owns_everything_without_replica() {
        let ring = RingSpec::new(3).build();
        let alive = vec![false, true, false];
        for h in hashes(500) {
            assert_eq!(ring.routes(h, &alive), (Some(1), None));
        }
    }

    #[test]
    fn ownership_map_partitions_every_key() {
        let ring = RingSpec::new(3).build();
        let maps: Vec<_> = (0..3).map(|i| ring.ownership_for(i)).collect();
        let alive = vec![true; 3];
        for h in hashes(1000) {
            let roles: Vec<_> = maps.iter().map(|m| m.role_of(h)).collect();
            let owners = roles.iter().filter(|r| **r == KeyRole::Owner).count();
            let replicas = roles.iter().filter(|r| **r == KeyRole::Replica).count();
            assert_eq!(owners, 1, "exactly one owner per key: {roles:?}");
            assert_eq!(replicas, 1, "exactly one replica per key: {roles:?}");
            let (o, r) = ring.routes(h, &alive);
            assert_eq!(roles[o.unwrap()], KeyRole::Owner);
            assert_eq!(roles[r.unwrap()], KeyRole::Replica);
        }
    }
}
