//! The member-process entry point.
//!
//! A cluster member is an ordinary `oc-serve` [`Server`] whose
//! [`ServeConfig`] carries the ring's [`OwnershipMap`] for its index and
//! the ring generation (stamped into the server's `epoch`). The
//! supervisor spawns members as child processes of the *current
//! executable* re-invoked with `--cluster-node` — any binary that calls
//! [`crate::run_child_if_node`] first thing in `main` can host members,
//! so loadgen, `oc-clusterd`, and the examples all reuse one launcher.
//!
//! The child announces `ADDR <ip:port>` on stdout once it is serving
//! (the parent blocks on that line), then waits for a `SHUTDOWN` verb
//! and exits through the drain-then-snapshot path.
//!
//! [`OwnershipMap`]: oc_serve::config::OwnershipMap

use crate::ring::RingSpec;
use oc_serve::config::{OwnershipFactory, RingInfo, ServeConfig};
use oc_serve::server::Server;
use std::io::Write;

/// Everything a member needs to configure itself, carried on the child
/// command line.
#[derive(Debug, Clone)]
pub struct NodeArgs {
    /// The shared ring description.
    pub spec: RingSpec,
    /// This member's ring index.
    pub index: usize,
    /// Shard workers inside the member.
    pub shards: usize,
    /// Per-shard queue bound.
    pub queue_depth: usize,
    /// Connection cap.
    pub max_connections: usize,
    /// Override for `sim.max_num_samples` (the per-task history window)
    /// — fleet-scale runs shrink it to bound per-machine memory.
    pub history_samples: Option<usize>,
    /// Whether the member keeps the handoff sample log that
    /// `Cluster::replace`/`Cluster::resize` rebuild state from. Costs
    /// memory proportional to ingested samples; fleet-scale memory
    /// diets turn it off (losing online replacement).
    pub handoff_log: bool,
}

impl NodeArgs {
    /// Renders the child command line (everything after
    /// `--cluster-node`).
    pub fn to_args(&self) -> Vec<String> {
        let mut out = vec![
            "--ring-nodes".into(),
            self.spec.nodes.to_string(),
            "--ring-index".into(),
            self.index.to_string(),
            "--ring-vnodes".into(),
            self.spec.vnodes.to_string(),
            "--ring-seed".into(),
            self.spec.seed.to_string(),
            "--ring-gen".into(),
            self.spec.generation.to_string(),
            "--shards".into(),
            self.shards.to_string(),
            "--queue-depth".into(),
            self.queue_depth.to_string(),
            "--max-connections".into(),
            self.max_connections.to_string(),
        ];
        if let Some(h) = self.history_samples {
            out.push("--history-samples".into());
            out.push(h.to_string());
        }
        if self.handoff_log {
            out.push("--handoff-log".into());
        }
        out
    }

    /// Parses a child command line produced by [`NodeArgs::to_args`].
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown flag, a missing value, or
    /// an unparseable number.
    pub fn parse(args: &[String]) -> Result<NodeArgs, String> {
        let mut spec = RingSpec::new(1);
        let mut index = 0usize;
        let mut shards = 2usize;
        let mut queue_depth = 4096usize;
        let mut max_connections = 1024usize;
        let mut history_samples = None;
        let mut handoff_log = false;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut val = |flag: &str| {
                it.next()
                    .ok_or_else(|| format!("{flag} needs a value"))
                    .cloned()
            };
            macro_rules! num {
                ($flag:expr, $ty:ty) => {
                    val($flag)?
                        .parse::<$ty>()
                        .map_err(|e| format!("{}: {e}", $flag))?
                };
            }
            match flag.as_str() {
                "--ring-nodes" => spec.nodes = num!("--ring-nodes", usize),
                "--ring-index" => index = num!("--ring-index", usize),
                "--ring-vnodes" => spec.vnodes = num!("--ring-vnodes", usize),
                "--ring-seed" => spec.seed = num!("--ring-seed", u64),
                "--ring-gen" => spec.generation = num!("--ring-gen", u64),
                "--shards" => shards = num!("--shards", usize),
                "--queue-depth" => queue_depth = num!("--queue-depth", usize),
                "--max-connections" => max_connections = num!("--max-connections", usize),
                "--history-samples" => {
                    history_samples = Some(num!("--history-samples", usize));
                }
                "--handoff-log" => handoff_log = true,
                other => return Err(format!("unknown node flag {other}")),
            }
        }
        if index >= spec.nodes {
            return Err(format!(
                "--ring-index {index} out of range for {} nodes",
                spec.nodes
            ));
        }
        Ok(NodeArgs {
            spec,
            index,
            shards,
            queue_depth,
            max_connections,
            history_samples,
            handoff_log,
        })
    }

    /// The [`ServeConfig`] this member runs: ownership from the ring,
    /// generation into the epoch, ephemeral local port.
    pub fn serve_config(&self) -> ServeConfig {
        let ring = self.spec.build();
        // The factory lets a `RINGSET` push rebuild ownership for a new
        // geometry online: this member's identity is its ring index, so
        // any pushed (nodes, vnodes, seed) resolves to the index's slots
        // — or to no slot at all once the ring shrinks past it.
        let index = self.index;
        let factory = OwnershipFactory::new(move |nodes, vnodes, seed| {
            if index >= nodes {
                return None;
            }
            let spec = RingSpec {
                nodes,
                vnodes,
                seed,
                generation: 0,
            };
            Some(spec.build().ownership_for(index))
        });
        let mut cfg = ServeConfig::default()
            .with_addr("127.0.0.1:0")
            .with_shards(self.shards)
            .with_queue_depth(self.queue_depth)
            .with_max_connections(self.max_connections)
            .with_ownership(ring.ownership_for(self.index))
            .with_ring_generation(self.spec.generation)
            .with_ring_info(RingInfo {
                nodes: self.spec.nodes,
                vnodes: self.spec.vnodes,
                seed: self.spec.seed,
            })
            .with_ownership_factory(factory)
            .with_handoff_log(self.handoff_log);
        if let Some(h) = self.history_samples {
            cfg.sim.max_num_samples = h.max(1);
            cfg.sim.min_num_samples = cfg.sim.min_num_samples.min(cfg.sim.max_num_samples);
        }
        cfg
    }
}

/// Runs a member to completion: serve, announce `ADDR`, wait for
/// `SHUTDOWN`, drain. Returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match NodeArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster node: {e}");
            return 2;
        }
    };
    let server = match Server::start(parsed.serve_config()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cluster node: start failed: {e}");
            return 1;
        }
    };
    // The parent blocks on this line; flush so it is not buffered away.
    println!("ADDR {}", server.addr());
    let _ = std::io::stdout().flush();
    server.wait();
    let outcome = server.shutdown_outcome();
    if outcome.clean {
        0
    } else {
        eprintln!("cluster node: degraded drain");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip() {
        let args = NodeArgs {
            spec: RingSpec {
                nodes: 5,
                vnodes: 32,
                seed: 99,
                generation: 7,
            },
            index: 3,
            shards: 4,
            queue_depth: 256,
            max_connections: 64,
            history_samples: Some(12),
            handoff_log: true,
        };
        let back = NodeArgs::parse(&args.to_args()).unwrap();
        assert_eq!(back.spec, args.spec);
        assert_eq!(back.index, args.index);
        assert_eq!(back.shards, args.shards);
        assert_eq!(back.queue_depth, args.queue_depth);
        assert_eq!(back.max_connections, args.max_connections);
        assert_eq!(back.history_samples, args.history_samples);
        assert_eq!(back.handoff_log, args.handoff_log);
    }

    #[test]
    fn bad_args_are_rejected() {
        let bad = |args: &[&str]| {
            NodeArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(bad(&["--ring-nodes"]).is_err(), "missing value");
        assert!(bad(&["--ring-nodes", "x"]).is_err(), "bad number");
        assert!(bad(&["--wat", "1"]).is_err(), "unknown flag");
        assert!(
            bad(&["--ring-nodes", "2", "--ring-index", "2"]).is_err(),
            "index out of range"
        );
    }

    #[test]
    fn history_override_shrinks_the_window() {
        let args = NodeArgs::parse(
            &[
                "--ring-nodes",
                "2",
                "--ring-index",
                "0",
                "--history-samples",
                "8",
            ]
            .map(String::from),
        )
        .unwrap();
        let cfg = args.serve_config();
        assert_eq!(cfg.sim.max_num_samples, 8);
        assert!(cfg.sim.min_num_samples <= cfg.sim.max_num_samples);
        cfg.validate().unwrap();
    }
}
