//! The 3-process smoke scenario run by `oc-clusterd --smoke` (and CI):
//! ingest a mirrored fleet, verify redirects, SIGKILL one member, and
//! prove the ring successor serves bit-identical predictions.

use crate::aggregator::{self, Aggregator};
use crate::control;
use crate::ring::HashRing;
use crate::supervisor::{Cluster, ClusterConfig};
use oc_serve::proto::{epoch_ring_generation, ErrCode, Request, Response};
use oc_serve::shard::key_hash;
use oc_trace::ids::{CellId, MachineId};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Machines in the smoke fleet.
const MACHINES: u64 = 120;
/// Samples per machine.
const TICKS: u64 = 30;
/// Request lines pipelined per write burst.
const BURST: usize = 256;

/// A deterministic per-(machine, tick) usage in `(0, 0.5]` so every
/// machine's prediction differs — state mixups cannot cancel out.
fn usage(machine: u64, tick: u64) -> f64 {
    0.05 + 0.45 * (((machine * 31 + tick * 7) % 97) as f64 / 97.0)
}

fn observe_line(cell: &str, machine: u64, tick: u64) -> String {
    format!(
        "OBSERVE {cell} {machine} 1:0 {} 0.5 {tick}",
        usage(machine, tick)
    )
}

/// Pipelines `lines` to `addr`, retrying `BUSY` per line. Returns the
/// number of `OK`s.
fn drive(addr: SocketAddr, lines: &[String]) -> Result<u64, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut oks = 0u64;
    let mut pending: Vec<String> = lines.to_vec();
    while !pending.is_empty() {
        let mut retry = Vec::new();
        for burst in pending.chunks(BURST) {
            let mut frame = String::new();
            for line in burst {
                frame.push_str(line);
                frame.push('\n');
            }
            writer
                .write_all(frame.as_bytes())
                .map_err(|e| format!("write {addr}: {e}"))?;
            let mut resp_line = String::new();
            for line in burst {
                resp_line.clear();
                reader
                    .read_line(&mut resp_line)
                    .map_err(|e| format!("read {addr}: {e}"))?;
                match Response::parse(resp_line.trim_end()) {
                    Ok(Response::Ok) => oks += 1,
                    Ok(Response::Busy) => retry.push(line.clone()),
                    Ok(other) => return Err(format!("{addr}: {line} answered {other:?}")),
                    Err(e) => return Err(format!("{addr}: unparseable response: {e}")),
                }
            }
        }
        pending = retry;
    }
    Ok(oks)
}

fn predict(addr: SocketAddr, cell: &CellId, machine: u64) -> Result<f64, String> {
    let req = Request::Predict {
        cell: cell.clone(),
        machine: MachineId(machine as u32),
        vector: false,
    };
    match control::request(addr, &req).map_err(|e| format!("predict via {addr}: {e}"))? {
        Response::Pred { peak, .. } => Ok(peak),
        other => Err(format!("predict via {addr}: got {other:?}")),
    }
}

/// Runs the scenario. `Ok` means every invariant held.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn run() -> Result<(), String> {
    let cfg = ClusterConfig {
        nodes: 3,
        shards: 2,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&cfg).map_err(|e| format!("cluster start: {e}"))?;
    let ring: HashRing = cluster.spec().build();
    let addrs = cluster.addrs();
    let all_alive = vec![true; 3];
    let cell = CellId::new("smoke");

    // Route the fleet: every machine's samples go to its owner and are
    // mirrored to its replica.
    let mut plans: Vec<Vec<String>> = vec![Vec::new(); 3];
    let mut owner_of = Vec::with_capacity(MACHINES as usize);
    for m in 0..MACHINES {
        let h = key_hash(&(cell.clone(), MachineId(m as u32)));
        let (owner, replica) = ring.routes(h, &all_alive);
        let (owner, replica) = (owner.unwrap(), replica.unwrap());
        owner_of.push(owner);
        for t in 0..TICKS {
            let line = observe_line("smoke", m, t);
            plans[owner].push(line.clone());
            plans[replica].push(line);
        }
    }
    for (node, plan) in plans.iter().enumerate() {
        let oks = drive(addrs[node], plan)?;
        if oks != plan.len() as u64 {
            return Err(format!(
                "node {node}: {oks}/{} samples acknowledged",
                plan.len()
            ));
        }
    }
    println!("smoke: ingested {MACHINES} machines x {TICKS} ticks, mirrored");

    // A member that owns neither the key nor its replica slot must
    // redirect rather than silently ingest.
    let h0 = key_hash(&(cell.clone(), MachineId(0)));
    let (o0, r0) = ring.routes(h0, &all_alive);
    let remote = (0..3)
        .find(|n| Some(*n) != o0 && Some(*n) != r0)
        .expect("3 nodes, 2 roles");
    match control::request(
        addrs[remote],
        &Request::Predict {
            cell: cell.clone(),
            machine: MachineId(0),
            vector: false,
        },
    ) {
        Ok(Response::Err {
            code: ErrCode::NotMine,
            ..
        }) => {}
        other => return Err(format!("expected ERR not-mine from remote, got {other:?}")),
    }
    println!("smoke: remote member redirects with ERR not-mine");

    // Epochs: nonzero, ring generation 0.
    for &addr in &addrs {
        let s = control::stats(addr).map_err(|e| format!("stats {addr}: {e}"))?;
        if s.epoch == 0 {
            return Err(format!("{addr}: epoch missing from STATS"));
        }
        if epoch_ring_generation(s.epoch) != 0 {
            return Err(format!("{addr}: unexpected ring generation"));
        }
    }

    // Owner-served predictions before the failure.
    let mut expected = Vec::with_capacity(MACHINES as usize);
    for m in 0..MACHINES {
        expected.push(predict(addrs[owner_of[m as usize]], &cell, m)?);
    }

    // SIGKILL member 0 mid-service; its replicas hold every sample.
    cluster.kill(0).map_err(|e| format!("kill: {e}"))?;
    let alive = cluster.alive();
    println!("smoke: SIGKILLed member 0");

    let mut failed_over = 0u64;
    for m in 0..MACHINES {
        let h = key_hash(&(cell.clone(), MachineId(m as u32)));
        let new_owner = ring
            .owner(h, &alive)
            .ok_or_else(|| "no live owner".to_string())?;
        if owner_of[m as usize] == 0 {
            failed_over += 1;
        }
        let got = predict(addrs[new_owner], &cell, m)?;
        if got.to_bits() != expected[m as usize].to_bits() {
            return Err(format!(
                "machine {m}: prediction diverged after failover ({got} != {})",
                expected[m as usize]
            ));
        }
    }
    if failed_over == 0 {
        return Err("member 0 owned no machines; smoke proves nothing".to_string());
    }
    println!("smoke: {failed_over} machines failed over with bit-identical predictions");

    // Cluster-wide aggregation over the survivors, directly and through
    // the aggregator endpoint.
    let merged = cluster.merged_stats().map_err(|e| format!("stats: {e}"))?;
    if merged.machines < MACHINES {
        return Err(format!(
            "merged machines {} < fleet size {MACHINES}",
            merged.machines
        ));
    }
    let members = aggregator::members(&addrs);
    members.lock().expect("members lock")[0].1 = false;
    let agg = Aggregator::start("127.0.0.1:0", members).map_err(|e| format!("agg: {e}"))?;
    let via_agg = control::stats(agg.addr()).map_err(|e| format!("agg stats: {e}"))?;
    if via_agg.observes != merged.observes || via_agg.machines != merged.machines {
        return Err(format!(
            "aggregator disagrees with supervisor: {via_agg:?} vs {merged:?}"
        ));
    }
    let metrics = control::metrics_exposition(agg.addr()).map_err(|e| format!("agg m: {e}"))?;
    let map = oc_telemetry::metrics::parse_exposition(&metrics)
        .ok_or_else(|| "merged exposition unparseable".to_string())?;
    if map.get("serve.observes").copied().unwrap_or(0.0) as u64 != merged.observes {
        return Err("merged METRICS disagrees with merged STATS".to_string());
    }
    agg.stop();
    println!(
        "smoke: aggregated {} observes / {} machines across survivors",
        merged.observes, merged.machines
    );

    // Replace the killed member into its slot: state rebuilt from the
    // survivors' handoff logs, generation bumped, ring pushed.
    let report = cluster.replace(0).map_err(|e| format!("replace: {e}"))?;
    if report.replayed == 0 {
        return Err("replace replayed no samples".to_string());
    }
    let addrs = cluster.addrs(); // slot 0 has a fresh address
    let s0 = control::stats(addrs[0]).map_err(|e| format!("stats replaced: {e}"))?;
    if epoch_ring_generation(s0.epoch) != 1 {
        return Err(format!(
            "replaced member should stamp ring generation 1, epoch {:#x}",
            s0.epoch
        ));
    }
    // The replaced member serves its original ranges bit-identically.
    let mut back_home = 0u64;
    for m in 0..MACHINES {
        if owner_of[m as usize] != 0 {
            continue;
        }
        back_home += 1;
        let got = predict(addrs[0], &cell, m)?;
        if got.to_bits() != expected[m as usize].to_bits() {
            return Err(format!(
                "machine {m}: prediction diverged after replace ({got} != {})",
                expected[m as usize]
            ));
        }
    }
    if back_home == 0 {
        return Err("member 0 owned no machines; replace proves nothing".to_string());
    }
    // Any member answers RING with the bumped description — what
    // clients auto-adopt from.
    let desc = control::ring(addrs[1]).map_err(|e| format!("ring: {e}"))?;
    if desc.generation != 1 || desc.addrs.len() != 3 {
        return Err(format!("unexpected RING answer: {desc:?}"));
    }
    println!(
        "smoke: replaced member 0 (replayed {} from {} survivors); \
         {back_home} machines served bit-identically at generation 1",
        report.replayed, report.sources
    );

    cluster.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("smoke: PASS");
    Ok(())
}
