//! The process supervisor: spawns N member processes, tracks liveness,
//! kills or retires members, and aggregates their `STATS`/`METRICS`.
//!
//! Members are children of the current executable re-invoked with
//! `--cluster-node` (see [`crate::run_child_if_node`]). Retirement goes
//! through the member's `SHUTDOWN` verb, i.e. the existing
//! drain-then-snapshot path: every queued sample is applied before the
//! process exits, so an acknowledged sample is never dropped by a
//! handoff — the ring successor (which mirrored the ingest stream)
//! serves the migrated range under a bumped ring generation.

use crate::control;
use crate::ring::{RingSpec, DEFAULT_SEED, DEFAULT_VNODES};
use oc_serve::proto::StatsSnapshot;
use oc_telemetry::metrics::merge_expositions;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};

/// How a [`Cluster`] is shaped.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Member process count.
    pub nodes: usize,
    /// Virtual nodes per member.
    pub vnodes: usize,
    /// Ring placement seed.
    pub seed: u64,
    /// Shard workers per member.
    pub shards: usize,
    /// Per-shard queue bound per member.
    pub queue_depth: usize,
    /// Connection cap per member.
    pub max_connections: usize,
    /// Per-task history window override (`sim.max_num_samples`) for
    /// fleet-scale memory bounding; `None` keeps the paper default.
    pub history_samples: Option<usize>,
}

impl Default for ClusterConfig {
    /// Three members, two shards each, paper-default windows.
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            shards: 2,
            queue_depth: 4096,
            max_connections: 1024,
            history_samples: None,
        }
    }
}

/// One member process.
#[derive(Debug)]
struct Member {
    child: Child,
    addr: SocketAddr,
    alive: bool,
    /// Kept open so a late child write cannot die on `SIGPIPE`.
    _stdout: Option<BufReader<ChildStdout>>,
}

/// A running multi-process cluster.
#[derive(Debug)]
pub struct Cluster {
    spec: RingSpec,
    members: Vec<Member>,
}

impl Cluster {
    /// Spawns `cfg.nodes` member processes (children of the current
    /// executable) and waits for each to announce its address.
    ///
    /// # Errors
    ///
    /// I/O errors from spawning or from a child that exits or misprints
    /// before announcing `ADDR`.
    pub fn start(cfg: &ClusterConfig) -> io::Result<Cluster> {
        let spec = RingSpec {
            nodes: cfg.nodes,
            vnodes: cfg.vnodes,
            seed: cfg.seed,
            generation: 0,
        };
        let exe = std::env::current_exe()?;
        let mut members = Vec::with_capacity(cfg.nodes);
        for index in 0..cfg.nodes {
            let node = crate::node::NodeArgs {
                spec,
                index,
                shards: cfg.shards,
                queue_depth: cfg.queue_depth,
                max_connections: cfg.max_connections,
                history_samples: cfg.history_samples,
            };
            let mut child = Command::new(&exe)
                .arg("--cluster-node")
                .args(node.to_args())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()?;
            let stdout = child.stdout.take().expect("stdout was piped");
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let addr = line
                .trim_end()
                .strip_prefix("ADDR ")
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| {
                    let _ = child.kill();
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("member {index} announced {line:?}, expected 'ADDR <ip:port>'"),
                    )
                })?;
            members.push(Member {
                child,
                addr,
                alive: true,
                _stdout: Some(reader),
            });
        }
        Ok(Cluster { spec, members })
    }

    /// The shared ring description.
    pub fn spec(&self) -> RingSpec {
        self.spec
    }

    /// Every member's address, by ring index (including dead members —
    /// pair with [`Cluster::alive`]).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.members.iter().map(|m| m.addr).collect()
    }

    /// Liveness mask by ring index.
    pub fn alive(&self) -> Vec<bool> {
        self.members.iter().map(|m| m.alive).collect()
    }

    /// Live member count.
    pub fn live_count(&self) -> usize {
        self.members.iter().filter(|m| m.alive).count()
    }

    /// SIGKILLs member `index` — the chaos primitive. No drain, no
    /// goodbye: every sample not yet applied by its shards dies with it,
    /// which is exactly what replicated ingest must absorb.
    ///
    /// # Errors
    ///
    /// Propagates the kill/wait failure.
    pub fn kill(&mut self, index: usize) -> io::Result<()> {
        let m = &mut self.members[index];
        if !m.alive {
            return Ok(());
        }
        m.child.kill()?; // SIGKILL on Unix.
        let _ = m.child.wait()?;
        m.alive = false;
        Ok(())
    }

    /// Gracefully retires member `index` through its `SHUTDOWN` verb —
    /// the drain-then-snapshot handoff: all acknowledged samples are
    /// applied before exit, and the survivors serve the migrated range
    /// (they mirrored its ingest as replicas). Callers should hand
    /// clients a generation-bumped spec afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the control exchange or the child wait failure.
    pub fn retire(&mut self, index: usize) -> io::Result<()> {
        let m = &mut self.members[index];
        if !m.alive {
            return Ok(());
        }
        control::shutdown(m.addr)?;
        let _ = m.child.wait()?;
        m.alive = false;
        Ok(())
    }

    /// Cluster-wide `STATS`: every live member's snapshot folded through
    /// [`StatsSnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Fails if any live member cannot be reached — partial aggregates
    /// would silently under-report.
    pub fn merged_stats(&self) -> io::Result<StatsSnapshot> {
        let mut merged = StatsSnapshot::default();
        for m in self.members.iter().filter(|m| m.alive) {
            merged.merge(&control::stats(m.addr)?);
        }
        Ok(merged)
    }

    /// Cluster-wide `METRICS`: every live member's exposition merged via
    /// [`merge_expositions`].
    ///
    /// # Errors
    ///
    /// Fails if a member is unreachable or answers an invalid
    /// exposition.
    pub fn merged_metrics(&self) -> io::Result<String> {
        let mut lines = Vec::new();
        for m in self.members.iter().filter(|m| m.alive) {
            lines.push(control::metrics_exposition(m.addr)?);
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        merge_expositions(&refs).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "member exposition failed to parse",
            )
        })
    }

    /// Retires every live member and returns the merged final snapshot
    /// (fetched just before each member drains).
    ///
    /// # Errors
    ///
    /// Propagates the first member that cannot be stopped.
    pub fn shutdown(mut self) -> io::Result<StatsSnapshot> {
        let mut merged = StatsSnapshot::default();
        for index in 0..self.members.len() {
            if !self.members[index].alive {
                continue;
            }
            merged.merge(&control::stats(self.members[index].addr)?);
            self.retire(index)?;
        }
        Ok(merged)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for m in &mut self.members {
            if m.alive {
                let _ = m.child.kill();
                let _ = m.child.wait();
            }
        }
    }
}
