//! The process supervisor: spawns N member processes, tracks liveness,
//! kills, retires, or **replaces** members, rebalances the ring when it
//! grows or shrinks, and aggregates member `STATS`/`METRICS`.
//!
//! Members are children of the current executable re-invoked with
//! `--cluster-node` (see [`crate::run_child_if_node`]). Retirement goes
//! through the member's `SHUTDOWN` verb, i.e. the existing
//! drain-then-snapshot path: every queued sample is applied before the
//! process exits, so an acknowledged sample is never dropped by a
//! handoff — the ring successor (which mirrored the ingest stream)
//! serves the migrated range under a bumped ring generation.
//!
//! [`Cluster::replace`] closes the loop: a dead or retired slot is
//! respawned in place, its machine state rebuilt by replaying the
//! survivors' `HANDOFF` logs over the wire, and the bumped ring pushed
//! to every member via `RINGSET` — from where clients auto-adopt it
//! through the `RING` probe (PROTOCOL.md §7.4), no operator calls.

use crate::control;
use crate::node::NodeArgs;
use crate::ring::{RingSpec, DEFAULT_SEED, DEFAULT_VNODES};
use oc_serve::proto::StatsSnapshot;
use oc_telemetry::metrics::merge_expositions;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};

/// Handoff-log lines keyed by `(cell, machine)` — the unit of replay.
type LogsByMachine = HashMap<(String, u32), Vec<String>>;

/// How a [`Cluster`] is shaped.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Member process count.
    pub nodes: usize,
    /// Virtual nodes per member.
    pub vnodes: usize,
    /// Ring placement seed.
    pub seed: u64,
    /// Shard workers per member.
    pub shards: usize,
    /// Per-shard queue bound per member.
    pub queue_depth: usize,
    /// Connection cap per member.
    pub max_connections: usize,
    /// Per-task history window override (`sim.max_num_samples`) for
    /// fleet-scale memory bounding; `None` keeps the paper default.
    pub history_samples: Option<usize>,
    /// Whether members keep the handoff sample log that
    /// [`Cluster::replace`]/[`Cluster::resize`] rebuild state from. On
    /// by default; fleet-scale memory diets turn it off (replacement
    /// then has nothing to replay).
    pub handoff_log: bool,
}

impl Default for ClusterConfig {
    /// Three members, two shards each, paper-default windows.
    fn default() -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            shards: 2,
            queue_depth: 4096,
            max_connections: 1024,
            history_samples: None,
            handoff_log: true,
        }
    }
}

/// One member process.
#[derive(Debug)]
struct Member {
    child: Child,
    addr: SocketAddr,
    alive: bool,
    /// Kept open so a late child write cannot die on `SIGPIPE`.
    _stdout: Option<BufReader<ChildStdout>>,
}

/// Spawns one member child process for the given node arguments.
/// Injectable so tests can force spawn failures without real members.
type Spawner = Box<dyn Fn(&NodeArgs) -> io::Result<Child> + Send>;

/// The production spawner: the current executable re-invoked with
/// `--cluster-node`.
fn exe_spawner(exe: std::path::PathBuf) -> Spawner {
    Box::new(move |node| {
        Command::new(&exe)
            .arg("--cluster-node")
            .args(node.to_args())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
    })
}

/// Kills and reaps every already-started member when dropped — the
/// spawn guard that keeps [`Cluster::start`] error paths (and panics)
/// from leaking child processes. `disarm` hands the members over once
/// every spawn has succeeded.
struct SpawnGuard {
    members: Vec<Member>,
}

impl SpawnGuard {
    fn disarm(mut self) -> Vec<Member> {
        std::mem::take(&mut self.members)
    }
}

impl Drop for SpawnGuard {
    fn drop(&mut self) {
        for m in &mut self.members {
            let _ = m.child.kill();
            let _ = m.child.wait();
        }
    }
}

/// What a [`Cluster::replace`] / [`Cluster::resize`] state rebuild did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// `OBSERVE` lines replayed and acknowledged by rebuilt members.
    pub replayed: u64,
    /// Lines a target rejected (`ERR not-mine`: keys outside its
    /// slots). Expected — survivors hold broader logs than any one
    /// target's ranges.
    pub rejected: u64,
    /// Live members whose handoff logs fed the rebuild.
    pub sources: usize,
}

/// A running multi-process cluster.
pub struct Cluster {
    spec: RingSpec,
    cfg: ClusterConfig,
    spawner: Spawner,
    members: Vec<Member>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("spec", &self.spec)
            .field("members", &self.members)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Spawns `cfg.nodes` member processes (children of the current
    /// executable) and waits for each to announce its address.
    ///
    /// # Errors
    ///
    /// I/O errors from spawning or from a child that exits or misprints
    /// before announcing `ADDR`. No child outlives an error: members
    /// started before the failure are killed and reaped.
    pub fn start(cfg: &ClusterConfig) -> io::Result<Cluster> {
        let exe = std::env::current_exe()?;
        Cluster::start_with(cfg, exe_spawner(exe))
    }

    /// [`Cluster::start`] with an injected spawner (tests force spawn
    /// and announce failures through it).
    fn start_with(cfg: &ClusterConfig, spawner: Spawner) -> io::Result<Cluster> {
        let spec = RingSpec {
            nodes: cfg.nodes,
            vnodes: cfg.vnodes,
            seed: cfg.seed,
            generation: 0,
        };
        let mut cluster = Cluster {
            spec,
            cfg: cfg.clone(),
            spawner,
            members: Vec::new(),
        };
        let mut guard = SpawnGuard {
            members: Vec::with_capacity(cfg.nodes),
        };
        for index in 0..cfg.nodes {
            // An early return here (spawn or announce failure) drops the
            // guard, which kills and reaps members 0..index.
            guard.members.push(cluster.spawn_member(index)?);
        }
        cluster.members = guard.disarm();
        // From here the Cluster owns the members: an error below drops
        // it, and `Drop` kills whatever is still alive.
        cluster.push_ring()?;
        Ok(cluster)
    }

    /// The [`NodeArgs`] for ring slot `index` under the current spec.
    fn node_args(&self, index: usize) -> NodeArgs {
        NodeArgs {
            spec: self.spec,
            index,
            shards: self.cfg.shards,
            queue_depth: self.cfg.queue_depth,
            max_connections: self.cfg.max_connections,
            history_samples: self.cfg.history_samples,
            handoff_log: self.cfg.handoff_log,
        }
    }

    /// Spawns one member child for ring slot `index` and waits for its
    /// `ADDR` announcement. The child never outlives an error: any
    /// failure after a successful spawn kills and reaps it first.
    fn spawn_member(&self, index: usize) -> io::Result<Member> {
        let node = self.node_args(index);
        let mut child = (self.spawner)(&node)?;
        let announce = (|| {
            let stdout = child.stdout.take().ok_or_else(|| {
                io::Error::new(io::ErrorKind::BrokenPipe, "member stdout was not piped")
            })?;
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let addr: SocketAddr = line
                .trim_end()
                .strip_prefix("ADDR ")
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("member {index} announced {line:?}, expected 'ADDR <ip:port>'"),
                    )
                })?;
            Ok((addr, reader))
        })();
        match announce {
            Ok((addr, reader)) => Ok(Member {
                child,
                addr,
                alive: true,
                _stdout: Some(reader),
            }),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// The shared ring description (generation included — it bumps on
    /// every [`Cluster::replace`]/[`Cluster::resize`]).
    pub fn spec(&self) -> RingSpec {
        self.spec
    }

    /// Every member's address, by ring index (including dead members —
    /// pair with [`Cluster::alive`]).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.members.iter().map(|m| m.addr).collect()
    }

    /// Liveness mask by ring index.
    pub fn alive(&self) -> Vec<bool> {
        self.members.iter().map(|m| m.alive).collect()
    }

    /// Live member count.
    pub fn live_count(&self) -> usize {
        self.members.iter().filter(|m| m.alive).count()
    }

    /// Pushes the current spec and address list to every live member
    /// (`RINGSET`), so any of them can answer `RING` — the seed of the
    /// client auto-adopt handshake.
    ///
    /// # Errors
    ///
    /// Propagates the first member that rejects or cannot be reached.
    pub fn push_ring(&self) -> io::Result<()> {
        let addrs: Vec<String> = self.members.iter().map(|m| m.addr.to_string()).collect();
        for m in self.members.iter().filter(|m| m.alive) {
            control::ring_set(m.addr, &self.spec, &addrs)?;
        }
        Ok(())
    }

    /// SIGKILLs member `index` — the chaos primitive. No drain, no
    /// goodbye: every sample not yet applied by its shards dies with it,
    /// which is exactly what replicated ingest must absorb.
    ///
    /// # Errors
    ///
    /// Propagates the kill/wait failure.
    pub fn kill(&mut self, index: usize) -> io::Result<()> {
        let m = &mut self.members[index];
        if !m.alive {
            return Ok(());
        }
        m.child.kill()?; // SIGKILL on Unix.
        let _ = m.child.wait()?;
        m.alive = false;
        Ok(())
    }

    /// Gracefully retires member `index` through its `SHUTDOWN` verb —
    /// the drain-then-snapshot handoff: all acknowledged samples are
    /// applied before exit, and the survivors serve the migrated range
    /// (they mirrored its ingest as replicas). Callers should follow
    /// with [`Cluster::replace`] or hand clients a bumped spec.
    ///
    /// # Errors
    ///
    /// Propagates the control exchange or the child wait failure.
    pub fn retire(&mut self, index: usize) -> io::Result<()> {
        let m = &mut self.members[index];
        if !m.alive {
            return Ok(());
        }
        control::shutdown(m.addr)?;
        let _ = m.child.wait()?;
        m.alive = false;
        Ok(())
    }

    /// Respawns a dead or retired member into the same ring slot,
    /// rebuilds its machine state by replaying the survivors' handoff
    /// logs over the wire, bumps the ring generation, and pushes the
    /// new ring to every member — from where clients auto-adopt it.
    ///
    /// Placement depends only on `(seed, node, vnode)`, never on the
    /// generation, so a same-slot replacement moves no keys (pinned by
    /// the `ring_props` proptests): the rebuilt member serves exactly
    /// its predecessor's ranges. For every key the dead member owned,
    /// its ring replica mirrored the full ingest stream; for every key
    /// it replicated, the owner holds it — so across the survivors the
    /// longest per-machine log is the complete one, and replaying it
    /// reproduces bit-identical predictions (replay order per machine
    /// is arrival order; predictions are a pure function of ingested
    /// state).
    ///
    /// A member that is still alive is retired (drained) first. Samples
    /// ingested *between* the kill and the replace live only on the
    /// failover survivors; quiesce ingest around `replace` (or accept
    /// that the rebuilt member serves only what the logs held — the
    /// survivors still answer for the window, see OPERATIONS.md).
    ///
    /// # Errors
    ///
    /// Propagates spawn, handoff-collection, replay, and ring-push
    /// failures. On error the slot stays dead and the old ring remains
    /// in force.
    pub fn replace(&mut self, index: usize) -> io::Result<ReplayReport> {
        assert!(index < self.members.len(), "slot beyond ring membership");
        if self.members[index].alive {
            self.retire(index)?;
        }
        let (per_machine, sources) = self.collect_logs()?;
        self.spec.generation += 1;
        let member = match self.spawn_member(index) {
            Ok(m) => m,
            Err(e) => {
                // The slot stays dead; undo the bump so a retry does not
                // skip generations.
                self.spec.generation -= 1;
                return Err(e);
            }
        };
        // The fresh member filters by its own ownership (`ERR not-mine`
        // for keys outside its slots), so every surviving log is simply
        // offered; per-machine line order is arrival order.
        let lines: Vec<String> = per_machine.into_values().flatten().collect();
        let (replayed, rejected) = control::drive_lines(member.addr, &lines)?;
        self.members[index] = member;
        self.push_ring()?;
        Ok(ReplayReport {
            replayed,
            rejected,
            sources,
        })
    }

    /// Grows or shrinks the ring to `new_nodes` members: spawns or
    /// retires the tail slots, bumps the generation, pushes the new
    /// geometry to every member (each rebuilds its ownership through
    /// its factory), and replays **only the moved ranges** — machines
    /// whose owner/replica set changed get their logs driven to each
    /// new holder that did not hold them before.
    ///
    /// # Errors
    ///
    /// Propagates spawn, retire, handoff, replay, and push failures.
    pub fn resize(&mut self, new_nodes: usize) -> io::Result<ReplayReport> {
        assert!(new_nodes >= 1, "ring needs at least one member");
        let old_nodes = self.members.len();
        if new_nodes == old_nodes {
            return Ok(ReplayReport::default());
        }
        let old_ring = self.spec.build();
        let (per_machine, sources) = self.collect_logs()?;
        let mut new_spec = self.spec;
        new_spec.nodes = new_nodes;
        new_spec.generation += 1;
        let new_ring = new_spec.build();
        self.spec = new_spec;
        if new_nodes > old_nodes {
            for index in old_nodes..new_nodes {
                let member = self.spawn_member(index)?;
                self.members.push(member);
            }
        } else {
            // Logs were collected above, while the retiring members
            // still served; drain them before the ring shrinks.
            for index in new_nodes..old_nodes {
                self.retire(index)?;
            }
            self.members.truncate(new_nodes);
        }
        self.push_ring()?;
        // Replay machines whose holder set changed, grouped per target
        // so each rebuilt member gets one replay connection.
        let old_alive = vec![true; old_nodes];
        let new_alive = vec![true; new_nodes];
        let mut per_target: HashMap<usize, Vec<String>> = HashMap::new();
        for ((cell, machine), lines) in per_machine {
            let hash = control::HandoffLine {
                line: String::new(),
                cell,
                machine,
            }
            .key_hash();
            let (old_owner, old_replica) = old_ring.routes(hash, &old_alive);
            let old_holders: HashSet<usize> =
                [old_owner, old_replica].into_iter().flatten().collect();
            let (new_owner, new_replica) = new_ring.routes(hash, &new_alive);
            for target in [new_owner, new_replica].into_iter().flatten() {
                if old_holders.contains(&target) {
                    continue; // already holds the stream: range did not move
                }
                per_target
                    .entry(target)
                    .or_default()
                    .extend_from_slice(&lines);
            }
        }
        let mut report = ReplayReport {
            sources,
            ..ReplayReport::default()
        };
        for (target, lines) in per_target {
            if !self.members[target].alive {
                continue;
            }
            let (ok, rejected) = control::drive_lines(self.members[target].addr, &lines)?;
            report.replayed += ok;
            report.rejected += rejected;
        }
        Ok(report)
    }

    /// Collects every live member's handoff log, deduplicated to the
    /// longest per-machine copy (the complete stream lives on the
    /// machine's owner and its replica; a shorter copy is a partial
    /// failover view).
    fn collect_logs(&self) -> io::Result<(LogsByMachine, usize)> {
        let mut per_machine: LogsByMachine = HashMap::new();
        let mut sources = 0usize;
        for m in self.members.iter().filter(|m| m.alive) {
            let dump = control::handoff(m.addr)?;
            sources += 1;
            let mut local: HashMap<(String, u32), Vec<String>> = HashMap::new();
            for entry in dump {
                local
                    .entry((entry.cell, entry.machine))
                    .or_default()
                    .push(entry.line);
            }
            for (key, lines) in local {
                match per_machine.get(&key) {
                    Some(best) if best.len() >= lines.len() => {}
                    _ => {
                        per_machine.insert(key, lines);
                    }
                }
            }
        }
        Ok((per_machine, sources))
    }

    /// Cluster-wide `STATS`: every live member's snapshot folded through
    /// [`StatsSnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Fails if any live member cannot be reached — partial aggregates
    /// would silently under-report.
    pub fn merged_stats(&self) -> io::Result<StatsSnapshot> {
        let mut merged = StatsSnapshot::default();
        for m in self.members.iter().filter(|m| m.alive) {
            merged.merge(&control::stats(m.addr)?);
        }
        Ok(merged)
    }

    /// Cluster-wide `METRICS`: every live member's exposition merged via
    /// [`merge_expositions`].
    ///
    /// # Errors
    ///
    /// Fails if a member is unreachable or answers an invalid
    /// exposition.
    pub fn merged_metrics(&self) -> io::Result<String> {
        let mut lines = Vec::new();
        for m in self.members.iter().filter(|m| m.alive) {
            lines.push(control::metrics_exposition(m.addr)?);
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        merge_expositions(&refs).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "member exposition failed to parse",
            )
        })
    }

    /// Retires every live member and returns the merged final snapshot
    /// (fetched just before each member drains).
    ///
    /// # Errors
    ///
    /// Propagates the first member that cannot be stopped.
    pub fn shutdown(mut self) -> io::Result<StatsSnapshot> {
        let mut merged = StatsSnapshot::default();
        for index in 0..self.members.len() {
            if !self.members[index].alive {
                continue;
            }
            merged.merge(&control::stats(self.members[index].addr)?);
            self.retire(index)?;
        }
        Ok(merged)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for m in &mut self.members {
            if m.alive {
                let _ = m.child.kill();
                let _ = m.child.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn fake_member_spawner(
        fail_at: usize,
        announce: &'static str,
        pids: Arc<Mutex<Vec<u32>>>,
    ) -> Spawner {
        Box::new(move |node: &NodeArgs| {
            if node.index == fail_at {
                return Err(io::Error::other("forced spawn failure"));
            }
            // A stand-in member: announces like a node, then lingers the
            // way a real child would.
            let child = Command::new("/bin/sh")
                .args(["-c", &format!("echo {announce}; exec sleep 1000")])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()?;
            pids.lock().expect("pid list lock").push(child.id());
            Ok(child)
        })
    }

    fn assert_all_reaped(pids: &[u32]) {
        for pid in pids {
            assert!(
                !std::path::Path::new(&format!("/proc/{pid}")).exists(),
                "member pid {pid} left running after start failure"
            );
        }
    }

    /// The spawn-guard fix: a forced mid-start spawn failure must kill
    /// and reap the members that already started — no leaked children.
    #[cfg(target_os = "linux")]
    #[test]
    fn start_failure_leaves_no_live_children() {
        let cfg = ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        };
        let pids = Arc::new(Mutex::new(Vec::new()));
        let err = Cluster::start_with(
            &cfg,
            fake_member_spawner(2, "ADDR 127.0.0.1:1", Arc::clone(&pids)),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "forced spawn failure");
        let pids = pids.lock().expect("pid list lock");
        assert_eq!(pids.len(), 2, "two members spawned before the failure");
        assert_all_reaped(&pids);
    }

    /// The announce-path fix: a child that misprints its `ADDR` line is
    /// killed before `start` returns the parse error (the old code's
    /// `?` on `read_line` skipped the kill).
    #[cfg(target_os = "linux")]
    #[test]
    fn bad_announce_kills_the_child() {
        let cfg = ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        };
        let pids = Arc::new(Mutex::new(Vec::new()));
        let err = Cluster::start_with(
            &cfg,
            fake_member_spawner(usize::MAX, "BOGUS", Arc::clone(&pids)),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let pids = pids.lock().expect("pid list lock");
        assert_eq!(pids.len(), 1);
        assert_all_reaped(&pids);
    }
}
