//! # oc-cluster — multi-process fleet serving
//!
//! Runs N `oc-serve` processes as one logical peak-prediction service:
//!
//! * [`ring`] — a seeded consistent-hash ring with virtual nodes maps
//!   every machine key to an owning process and a replica (the ring
//!   successor, which is exactly the takeover target if the owner
//!   dies). Deterministic and std-only: a shared [`RingSpec`] is the
//!   whole membership protocol.
//! * [`node`] — the member entry point: an ordinary `oc-serve` server
//!   whose [`oc_serve::config::OwnershipMap`] enforces the ring
//!   (`ERR not-mine` for keys owned elsewhere) and whose `epoch` stamp
//!   carries the ring generation.
//! * [`supervisor`] — spawns members as child processes, SIGKILLs them
//!   (chaos) or retires them through the drain-then-snapshot `SHUTDOWN`
//!   path (handoff), and merges their `STATS`/`METRICS`.
//! * [`aggregator`] — a TCP endpoint that answers cluster-wide `STATS`
//!   and `METRICS` by fanning out and merging.
//! * [`control`] — the one-shot control-plane exchanges everything
//!   above rides on.
//! * [`smoke`] — the self-contained 3-process failover scenario CI
//!   runs.
//!
//! Ingest replication is client-side: `oc-client`'s `ClusterClient`
//! mirrors every `OBSERVE` to the key's replica, so a SIGKILLed member
//! loses nothing an acknowledged sample ever carried — the replica
//! ingested the same ordered stream and serves bit-identical
//! predictions (predictions are a pure function of ingested state).
//! See `docs/PROTOCOL.md` §7 for the wire contract and
//! `docs/OPERATIONS.md` for the failover runbook.

pub mod aggregator;
pub mod control;
pub mod node;
pub mod ring;
pub mod smoke;
pub mod supervisor;

pub use aggregator::Aggregator;
pub use ring::{HashRing, RingSpec, DEFAULT_SEED, DEFAULT_VNODES};
pub use supervisor::{Cluster, ClusterConfig, ReplayReport};

/// If this process was launched as a cluster member (`--cluster-node`,
/// the supervisor's child convention), runs the member to completion
/// and **exits the process**. Any binary that may host members — by
/// calling [`Cluster::start`], which re-invokes the current executable
/// — must call this first thing in `main`.
pub fn run_child_if_node() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some("--cluster-node") {
        return;
    }
    std::process::exit(node::run(&args[2..]));
}
