//! Error type for the client layer.

use oc_serve::proto::{ProtoError, Response};
use std::fmt;

/// Errors produced by [`crate::Client`] and the load generator.
#[derive(Debug)]
pub enum ClientError {
    /// A configuration value was outside its valid domain.
    Config(String),
    /// A terminal socket error (transient ones are retried internally).
    Io(std::io::Error),
    /// The server sent a line the protocol cannot parse.
    Proto(ProtoError),
    /// The server answered, but not with the response the call expects
    /// (e.g. `ERR shutdown` to an `OBSERVE`).
    Server {
        /// The verb the call expected.
        expected: &'static str,
        /// The response actually received, encoded.
        got: String,
    },
    /// The retry budget ran out.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
    /// A trace-generation error (load generator).
    Trace(oc_trace::TraceError),
}

impl ClientError {
    /// Builds the [`ClientError::Server`] variant from the offending
    /// response.
    pub fn unexpected(expected: &'static str, got: &Response) -> ClientError {
        ClientError::Server {
            expected,
            got: got.encode(),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Config(what) => write!(f, "invalid client config: {what}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { expected, got } => {
                write!(f, "expected {expected} response, got `{got}`")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts: {last}"
                )
            }
            ClientError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<oc_trace::TraceError> for ClientError {
    fn from(e: oc_trace::TraceError) -> Self {
        ClientError::Trace(e)
    }
}
