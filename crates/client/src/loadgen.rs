//! Load-generator harness for `oc-serve`.
//!
//! Replays a [`WorkloadGenerator`] cell against a running server: every
//! per-task usage sample of every machine becomes one `OBSERVE` line, and
//! each machine gets one `PREDICT` per tick. Machines are pinned to
//! connections round-robin so per-machine sample order survives the trip
//! (the server only guarantees ordering within a connection).
//!
//! Each connection drives one [`Client`] with pipelined windows; `BUSY`
//! rejections and transient transport failures are retried by the client
//! within its budget, so `busy` in the report counts *retries absorbed*,
//! not samples lost. Latency is measured per request from write to
//! matching response — with pipelining this includes queueing time, so
//! percentiles degrade visibly as the offered rate approaches capacity.
//!
//! A connection whose retry budget runs out does not abort the run (and a
//! panicked connection thread does not poison the others): its failure is
//! captured in [`LoadReport::conn_failures`] and the surviving
//! connections' counts still report.
//!
//! Chaos mode ([`LoadgenConfig::chaos`], `loadgen --chaos RATE`) wraps
//! every connection in a seeded [`FaultPlan`]: delayed, partial, and
//! dropped reads/writes at the configured rate. The accounting invariant
//! under chaos is **zero lost acknowledged samples** — every `OBSERVE`
//! the server acknowledged is visible in its `observes`/`stale`/`errors`
//! counters ([`LoadReport::lost`] must be 0).
//!
//! Pacing: `target_qps > 0` meters the *aggregate* request rate across
//! connections by slicing time into small batches; `target_qps == 0` means
//! open throttle (as fast as the socket accepts), the mode used to
//! provoke `BUSY` rejections for the overload phase of the benchmark.

use crate::client::{Client, ClientConfig};
use crate::error::ClientError;
use oc_serve::fault::FaultPlan;
use oc_serve::proto::{Request, Response, StatsSnapshot};
use oc_stats::{percentile_slice, Histogram};
use oc_telemetry::metrics::HistogramSnapshot;
use oc_telemetry::trace;
use oc_trace::cell::{CellConfig, CellPreset};
use oc_trace::ids::CellId;
use oc_trace::time::Tick;
use oc_trace::WorkloadGenerator;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-generator settings.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Cell preset replayed (defines machine count, task mix, seed).
    pub preset: CellPreset,
    /// Machines replayed from the cell (capped at the cell size).
    pub machines: usize,
    /// Ticks replayed per machine.
    pub ticks: u64,
    /// Generator seed override; `None` keeps the preset's seed.
    pub seed: Option<u64>,
    /// Client connections; machines are pinned round-robin.
    pub connections: usize,
    /// Aggregate target request rate; `0` = unpaced (open throttle).
    pub target_qps: u64,
    /// Issue one `PREDICT` per machine per tick alongside the samples.
    pub predicts: bool,
    /// Sub-requests per `BATCH` frame on every connection (1 = no
    /// framing); see [`ClientConfig::with_batch`].
    pub batch: usize,
    /// Client-side fault injection on every connection (chaos mode).
    pub chaos: Option<FaultPlan>,
}

impl Default for LoadgenConfig {
    /// Cell preset A, 64 machines, one day of ticks, 4 connections,
    /// unpaced, with per-tick predictions, no chaos.
    fn default() -> Self {
        LoadgenConfig {
            preset: CellPreset::A,
            machines: 64,
            ticks: oc_trace::TICKS_PER_DAY,
            seed: None,
            connections: 4,
            target_qps: 0,
            predicts: true,
            batch: 1,
            chaos: None,
        }
    }
}

/// Bin range of [`report_histogram`] for request latencies: 1 second in
/// microseconds, ~61 µs bins. Latencies beyond the range still count
/// (overflow bin) but stop contributing to binned quantiles.
pub const LATENCY_HIST_HI_US: f64 = 1_000_000.0;
/// Bin range of [`report_histogram`] for connection setup times: 5
/// seconds in microseconds (connection storms stall on accept queues).
pub const SETUP_HIST_HI_US: f64 = 5_000_000.0;
/// Bin count shared by both report histograms.
pub const REPORT_HIST_BINS: usize = 16_384;

/// Bins `samples` (microseconds) into a mergeable snapshot. Every
/// report carries two of these so N per-process reports can be folded
/// into one fleet report with percentiles recomputed over the *merged*
/// distribution — averaging percentiles across processes is wrong
/// (a p99 of averages is not the p99 of the union).
pub fn report_histogram(samples: &[f64], hi: f64) -> HistogramSnapshot {
    let mut acc = HistAcc::new(hi);
    for &x in samples {
        acc.push(x);
    }
    acc.finish()
}

/// Incremental [`report_histogram`]: bins samples as they resolve
/// instead of materializing them first. The fleet drivers used to hold
/// one `f64` per line — tens of megabytes per member thread at
/// million-machine scale — purely to bin them at the end of the run.
#[derive(Debug)]
pub struct HistAcc {
    hist: Histogram,
    sum: f64,
    max: f64,
}

impl HistAcc {
    /// An empty accumulator binning `[0, hi)` like [`report_histogram`].
    pub fn new(hi: f64) -> HistAcc {
        HistAcc {
            hist: Histogram::new(0.0, hi, REPORT_HIST_BINS).expect("static shape is valid"),
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample (microseconds).
    pub fn push(&mut self, x: f64) {
        self.push_n(x, 1);
    }

    /// Records `n` samples of value `x` at once — the shape a pipelined
    /// frame resolves in (one ack latency covering every line it
    /// carried).
    pub fn push_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.hist.push_n(x, n);
        self.sum += x * n as f64;
        if x > self.max {
            self.max = x;
        }
    }

    /// The mergeable snapshot.
    pub fn finish(self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.hist.total(),
            sum: self.sum,
            max: self.max,
            hist: self.hist,
        }
    }
}

/// What one [`run`] measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted (OBSERVE + PREDICT), counting each once however
    /// many retries it took.
    pub sent: u64,
    /// `OK`/`PRED` resolutions.
    pub ok: u64,
    /// `BUSY` rejections absorbed by client retries.
    pub busy: u64,
    /// `ERR` resolutions.
    pub errors: u64,
    /// Request attempts beyond the first, all causes.
    pub retries: u64,
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
    /// Faults injected by the chaos plan (0 without `--chaos`).
    pub faults: u64,
    /// `OBSERVE` requests the server acknowledged `OK`.
    pub acked_observes: u64,
    /// Acknowledged samples unaccounted for on the server: `acked -
    /// (observes + stale + errors)`, floored at 0. Must be 0 — an `OK` is
    /// a promise the sample reaches the ingestion counters.
    pub lost: u64,
    /// Connections whose retry budget ran out (or whose thread panicked).
    pub failed_connections: u64,
    /// One description per failed connection.
    pub conn_failures: Vec<String>,
    /// Connections the run drove (including failed ones).
    pub connections: u64,
    /// Wall-clock duration of the replay, seconds.
    pub wall_secs: f64,
    /// Achieved request throughput (resolved / wall), requests per second.
    pub achieved_qps: f64,
    /// Client-observed p50 latency, microseconds.
    pub p50_us: f64,
    /// Client-observed p99 latency, microseconds.
    pub p99_us: f64,
    /// Client-observed maximum latency, microseconds.
    pub max_us: f64,
    /// Per-connection connect/setup time, p50, microseconds. Setup time
    /// (TCP connect + socket configuration) is reported separately so
    /// steady-state latency percentiles are not polluted by the one-off
    /// connection storm of a high fan-in run.
    pub setup_p50_us: f64,
    /// Per-connection connect/setup time, p99, microseconds.
    pub setup_p99_us: f64,
    /// Per-connection connect/setup time, maximum, microseconds.
    pub setup_max_us: f64,
    /// Binned request-latency distribution backing [`LoadReport::merge`]
    /// (the scalar percentiles above are exact for a single run; after a
    /// merge they are recomputed from these bins).
    pub latency: HistogramSnapshot,
    /// Binned connection-setup distribution, same role as `latency`.
    pub setup: HistogramSnapshot,
    /// Server-side snapshot taken right after the replay.
    pub server: StatsSnapshot,
}

impl LoadReport {
    /// Share of resolved attempts rejected with `BUSY`:
    /// `busy / (ok + busy)`, 0 when idle.
    ///
    /// Because every `BUSY` is retried until it resolves, `busy` can
    /// exceed `sent` under overload; dividing by attempts (not requests)
    /// keeps the rate in `[0, 1]`.
    pub fn reject_rate(&self) -> f64 {
        if self.ok + self.busy == 0 {
            0.0
        } else {
            self.busy as f64 / (self.ok + self.busy) as f64
        }
    }

    /// Busy retries per scripted request: `busy / sent` (0 when nothing
    /// was sent). This is what `reject_rate` misreported before it was
    /// fixed — unbounded above 1.0 under overload — kept under its honest
    /// name for comparing against older benchmark JSON.
    pub fn retry_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.busy as f64 / self.sent as f64
        }
    }

    /// Folds `other` (another process's or another run segment's report)
    /// into `self`, the way a fleet drive folds its per-member reports:
    ///
    /// * counters sum; `conn_failures` concatenate;
    /// * `wall_secs` takes the max (segments overlap in wall time when
    ///   they ran in parallel, so summing would deflate throughput);
    /// * latency/setup percentiles are **recomputed from the merged
    ///   binned distributions**, never averaged — the p99 of a union is
    ///   not the mean of per-process p99s;
    /// * `achieved_qps` is recomputed as merged resolved / merged wall;
    /// * the server snapshot merges via [`StatsSnapshot::merge`] and
    ///   `lost` is re-derived from the merged ledger.
    ///
    /// `reject_rate()`/`retry_ratio()` need no handling: they are
    /// computed from the merged counters on read.
    pub fn merge(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.busy += other.busy;
        self.errors += other.errors;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.faults += other.faults;
        self.acked_observes += other.acked_observes;
        self.failed_connections += other.failed_connections;
        self.conn_failures
            .extend(other.conn_failures.iter().cloned());
        self.connections += other.connections;
        self.wall_secs = self.wall_secs.max(other.wall_secs);
        self.latency.merge(&other.latency);
        self.setup.merge(&other.setup);
        self.p50_us = self.latency.quantile(50.0);
        self.p99_us = self.latency.quantile(99.0);
        self.max_us = self.latency.max_or_zero();
        self.setup_p50_us = self.setup.quantile(50.0);
        self.setup_p99_us = self.setup.quantile(99.0);
        self.setup_max_us = self.setup.max_or_zero();
        let resolved = self.ok + self.errors;
        self.achieved_qps = if self.wall_secs > 0.0 {
            resolved as f64 / self.wall_secs
        } else {
            0.0
        };
        self.server.merge(&other.server);
        let accounted = self.server.observes + self.server.stale + self.server.errors;
        self.lost = self.acked_observes.saturating_sub(accounted);
    }

    /// Serializes the report as a JSON object (hand-rolled; the workspace
    /// vendors no serde).
    pub fn to_json(&self, label: &str) -> String {
        format!(
            concat!(
                "{{\"label\":\"{}\",\"sent\":{},\"ok\":{},\"busy\":{},",
                "\"errors\":{},\"retries\":{},\"reconnects\":{},",
                "\"faults\":{},\"acked_observes\":{},\"lost\":{},",
                "\"failed_connections\":{},\"connections\":{},",
                "\"wall_secs\":{:.6},\"achieved_qps\":{:.1},",
                "\"reject_rate\":{:.6},\"retry_ratio\":{:.6},",
                "\"client_p50_us\":{:.1},",
                "\"client_p99_us\":{:.1},\"client_max_us\":{:.1},",
                "\"setup_p50_us\":{:.1},\"setup_p99_us\":{:.1},",
                "\"setup_max_us\":{:.1},",
                "\"server_p50_us\":{:.1},\"server_p99_us\":{:.1},",
                "\"server_mean_us\":{:.1},\"server_observes\":{},",
                "\"server_stale\":{},\"server_machines\":{}}}"
            ),
            label,
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            self.retries,
            self.reconnects,
            self.faults,
            self.acked_observes,
            self.lost,
            self.failed_connections,
            self.connections,
            self.wall_secs,
            self.achieved_qps,
            self.reject_rate(),
            self.retry_ratio(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.setup_p50_us,
            self.setup_p99_us,
            self.setup_max_us,
            self.server.p50_us,
            self.server.p99_us,
            self.server.mean_us,
            self.server.observes,
            self.server.stale,
            self.server.machines,
        )
    }
}

/// Builds per-connection request scripts from the generated cell.
///
/// Request order per machine is tick-major and, within a tick, trace task
/// order — the same order `simulate_machine` feeds its `MachineView`.
fn build_plans(cfg: &LoadgenConfig) -> Result<Vec<Vec<Request>>, ClientError> {
    let mut cell_cfg: CellConfig = CellConfig::preset(cfg.preset);
    if let Some(seed) = cfg.seed {
        cell_cfg = cell_cfg.with_seed(seed);
    }
    let generator = WorkloadGenerator::new(cell_cfg)?;
    let cell = CellId::new(format!("{:?}", cfg.preset).to_lowercase());
    let n_machines = cfg.machines.min(generator.config().machines).max(1);
    let connections = cfg.connections.clamp(1, n_machines);
    let mut plans: Vec<Vec<Request>> = (0..connections).map(|_| Vec::new()).collect();
    let metric = oc_core::config::SimConfig::default().metric;
    for m in 0..n_machines {
        let trace = generator.generate_machine(oc_trace::MachineId(m as u32))?;
        let plan = &mut plans[m % connections];
        let end = trace.horizon.start.0 + cfg.ticks.min(trace.horizon.len());
        for t in trace.horizon.start.0..end {
            let tick = Tick(t);
            for task in trace.tasks_at(tick) {
                let usage = task.sample_at(tick).map(|s| metric.of(s)).unwrap_or(0.0);
                plan.push(Request::Observe {
                    cell: cell.clone(),
                    machine: trace.machine,
                    task: task.spec.id,
                    usage,
                    limit: task.spec.limit,
                    mem: None,
                    tick: t,
                });
            }
            if cfg.predicts {
                plan.push(Request::Predict {
                    cell: cell.clone(),
                    machine: trace.machine,
                    vector: false,
                });
            }
        }
    }
    Ok(plans)
}

/// Outcome counts plus raw latencies from one connection.
#[derive(Debug, Default)]
struct ConnResult {
    sent: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    retries: u64,
    reconnects: u64,
    faults: u64,
    acked_observes: u64,
    latencies_us: Vec<f64>,
    /// Connect/setup time for this connection, microseconds.
    setup_us: f64,
    /// Set when the connection gave up before resolving its whole plan.
    failure: Option<String>,
}

/// Replays one connection's script through a retrying [`Client`].
///
/// `pace` is the per-connection request interval; `Duration::ZERO` means
/// unpaced. Failures never propagate: they end up in `failure` and the
/// counts gathered so far still report.
fn run_conn(
    addr: SocketAddr,
    plan: Vec<Request>,
    pace: Duration,
    conn_idx: usize,
    batch: usize,
    chaos: Option<FaultPlan>,
) -> ConnResult {
    // One span per connection thread covering its whole replay
    // (`a` = connection index, `b` = scripted request count).
    let _conn_span = trace::span_ab("loadgen.conn", conn_idx as u64, plan.len() as u64);
    let mut res = ConnResult {
        sent: plan.len() as u64,
        ..ConnResult::default()
    };
    res.latencies_us.reserve(plan.len());
    let mut cfg = ClientConfig::default()
        .with_seed(conn_idx as u64 + 1)
        .with_batch(batch.max(1));
    if let Some(plan) = chaos {
        cfg = cfg.with_faults(plan);
    }
    // Pace in batches of 64: per-request sleeps can't hit 100k+ QPS, and
    // coarse batches keep the meter honest without melting the clock.
    const BATCH: usize = 64;
    if !pace.is_zero() {
        cfg = cfg.with_pipeline_window(BATCH);
    }
    let setup_start = Instant::now();
    let mut client = match Client::connect(addr, cfg) {
        Ok(c) => c,
        Err(e) => {
            trace::event("loadgen.conn.fail", conn_idx as u64, 0);
            res.failure = Some(format!("connect: {e}"));
            return res;
        }
    };
    res.setup_us = setup_start.elapsed().as_secs_f64() * 1e6;
    let start = Instant::now();
    let mut submitted = 0usize;
    for chunk in plan.chunks(BATCH) {
        if !pace.is_zero() {
            let due = start + pace * (submitted as u32);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let outcome = client.pipeline_with(chunk, |idx, resp, lat_us| {
            res.latencies_us.push(lat_us);
            match resp {
                Response::Err { .. } => res.errors += 1,
                Response::Ok => {
                    res.ok += 1;
                    if matches!(chunk[idx], Request::Observe { .. }) {
                        res.acked_observes += 1;
                    }
                }
                _ => res.ok += 1,
            }
        });
        submitted += chunk.len();
        if let Err(e) = outcome {
            trace::event("loadgen.conn.fail", conn_idx as u64, 0);
            res.failure = Some(e.to_string());
            break;
        }
    }
    let m = client.metrics();
    res.busy = m.busy_retries;
    res.retries = m.retries;
    res.reconnects = m.reconnects;
    res.faults = client.faults_injected();
    res
}

/// Replays the configured cell against `addr` and gathers a report.
///
/// Per-connection failures (an exhausted retry budget, even a panicked
/// thread) are *captured in the report*, not propagated — only setup
/// failures (an unreachable generator config) error out. The final
/// server snapshot is fetched with a plain retrying client; if even that
/// fails while every connection also failed, the snapshot is zeroed.
///
/// # Errors
///
/// Propagates generator errors and a failed final `STATS` fetch (unless
/// every connection already failed, which the report records instead).
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> Result<LoadReport, ClientError> {
    let plans = build_plans(cfg)?;
    let n_conns = plans.len();
    let pace = if cfg.target_qps == 0 {
        Duration::ZERO
    } else {
        // Aggregate QPS split evenly across connections.
        Duration::from_secs_f64(n_conns as f64 / cfg.target_qps as f64)
    };
    let start = Instant::now();
    let mut joins = Vec::with_capacity(n_conns);
    for (i, plan) in plans.into_iter().enumerate() {
        let chaos = cfg.chaos.clone();
        let batch = cfg.batch;
        joins.push(
            std::thread::Builder::new()
                .name("loadgen-conn".to_string())
                .spawn(move || run_conn(addr, plan, pace, i, batch, chaos))?,
        );
    }
    let mut totals = ConnResult::default();
    let mut setup_us: Vec<f64> = Vec::with_capacity(n_conns);
    let mut conn_failures: Vec<String> = Vec::new();
    for (i, j) in joins.into_iter().enumerate() {
        let res = match j.join() {
            Ok(res) => res,
            Err(_) => {
                conn_failures.push(format!("connection {i}: thread panicked"));
                continue;
            }
        };
        if let Some(why) = res.failure {
            conn_failures.push(format!("connection {i}: {why}"));
        }
        totals.sent += res.sent;
        totals.ok += res.ok;
        totals.busy += res.busy;
        totals.errors += res.errors;
        totals.retries += res.retries;
        totals.reconnects += res.reconnects;
        totals.faults += res.faults;
        totals.acked_observes += res.acked_observes;
        totals.latencies_us.extend(res.latencies_us);
        if res.setup_us > 0.0 {
            setup_us.push(res.setup_us);
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let server = match fetch_stats(addr) {
        Ok(s) => s,
        Err(_) if conn_failures.len() == n_conns => StatsSnapshot::default(),
        Err(e) => return Err(e),
    };
    let accounted = server.observes + server.stale + server.errors;
    let q = |p: f64| percentile_slice(&totals.latencies_us, p).unwrap_or(0.0);
    let resolved = totals.ok + totals.errors;
    Ok(LoadReport {
        sent: totals.sent,
        ok: totals.ok,
        busy: totals.busy,
        errors: totals.errors,
        retries: totals.retries,
        reconnects: totals.reconnects,
        faults: totals.faults,
        acked_observes: totals.acked_observes,
        lost: totals.acked_observes.saturating_sub(accounted),
        failed_connections: conn_failures.len() as u64,
        conn_failures,
        connections: n_conns as u64,
        wall_secs,
        achieved_qps: if wall_secs > 0.0 {
            resolved as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: q(50.0),
        p99_us: q(99.0),
        max_us: totals.latencies_us.iter().cloned().fold(0.0, f64::max),
        setup_p50_us: percentile_slice(&setup_us, 50.0).unwrap_or(0.0),
        setup_p99_us: percentile_slice(&setup_us, 99.0).unwrap_or(0.0),
        setup_max_us: setup_us.iter().cloned().fold(0.0, f64::max),
        latency: report_histogram(&totals.latencies_us, LATENCY_HIST_HI_US),
        setup: report_histogram(&setup_us, SETUP_HIST_HI_US),
        server,
    })
}

/// Asks a running server for its `STATS` snapshot.
///
/// # Errors
///
/// Propagates client failures; a non-`STATS` reply is a
/// [`ClientError::Server`].
pub fn fetch_stats(addr: SocketAddr) -> Result<StatsSnapshot, ClientError> {
    Client::connect(addr, ClientConfig::default())?.stats()
}

/// Sends `SHUTDOWN` to a running server.
///
/// # Errors
///
/// Propagates client failures.
pub fn request_shutdown(addr: SocketAddr) -> Result<(), ClientError> {
    Client::connect(addr, ClientConfig::default())?.request_shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::config::ServeConfig;
    use oc_serve::server::Server;

    #[test]
    fn small_replay_round_trips() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let cfg = LoadgenConfig {
            machines: 4,
            ticks: 16,
            connections: 2,
            predicts: true,
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert!(report.sent > 0);
        assert_eq!(report.busy, 0, "default queues must absorb a tiny replay");
        assert_eq!(report.errors, 0);
        assert_eq!(report.ok, report.sent);
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert_eq!(report.lost, 0);
        assert!(report.server.observes > 0);
        assert_eq!(report.server.machines, 4);
        // 4 machines x 16 ticks of predictions.
        assert_eq!(report.server.predicts, 64);
        server.shutdown();
    }

    /// A batched replay resolves the same request set and drives the
    /// server to the same counters as the unbatched one above.
    #[test]
    fn batched_replay_round_trips() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let cfg = LoadgenConfig {
            machines: 4,
            ticks: 16,
            connections: 2,
            predicts: true,
            batch: 32,
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert_eq!(report.ok, report.sent);
        assert_eq!(report.errors, 0);
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert_eq!(report.lost, 0);
        assert_eq!(report.server.machines, 4);
        assert_eq!(report.server.predicts, 64);
        server.shutdown();
    }

    /// `reject_rate` is bounded by attempts; `retry_ratio` preserves the
    /// old (unbounded) `busy / sent` reading.
    #[test]
    fn reject_rate_is_a_rate() {
        let mut report = LoadReport {
            sent: 10,
            ok: 10,
            busy: 30,
            errors: 0,
            retries: 30,
            reconnects: 0,
            faults: 0,
            acked_observes: 10,
            lost: 0,
            failed_connections: 0,
            conn_failures: Vec::new(),
            connections: 1,
            wall_secs: 1.0,
            achieved_qps: 10.0,
            p50_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
            setup_p50_us: 0.0,
            setup_p99_us: 0.0,
            setup_max_us: 0.0,
            latency: report_histogram(&[], LATENCY_HIST_HI_US),
            setup: report_histogram(&[], SETUP_HIST_HI_US),
            server: StatsSnapshot::default(),
        };
        assert!((report.reject_rate() - 0.75).abs() < 1e-12);
        assert!((report.retry_ratio() - 3.0).abs() < 1e-12);
        report.busy = 0;
        report.sent = 0;
        report.ok = 0;
        assert_eq!(report.reject_rate(), 0.0);
        assert_eq!(report.retry_ratio(), 0.0);
        let json = report.to_json("x");
        assert!(json.contains("\"reject_rate\":0.000000"));
        assert!(json.contains("\"retry_ratio\":0.000000"));
    }

    /// Merging two per-process reports sums the counters, recomputes
    /// rates from the merged counts (not an average of rates), and takes
    /// percentiles from the merged latency distribution.
    #[test]
    fn merge_folds_reports_not_averages() {
        let mk = |ok: u64, busy: u64, lat: &[f64], wall: f64, observes: u64| LoadReport {
            sent: ok,
            ok,
            busy,
            errors: 0,
            retries: busy,
            reconnects: 1,
            faults: 0,
            acked_observes: ok,
            lost: 0,
            failed_connections: 0,
            conn_failures: Vec::new(),
            connections: 1,
            wall_secs: wall,
            achieved_qps: ok as f64 / wall,
            p50_us: percentile_slice(lat, 50.0).unwrap_or(0.0),
            p99_us: percentile_slice(lat, 99.0).unwrap_or(0.0),
            max_us: lat.iter().cloned().fold(0.0, f64::max),
            setup_p50_us: 0.0,
            setup_p99_us: 0.0,
            setup_max_us: 0.0,
            latency: report_histogram(lat, LATENCY_HIST_HI_US),
            setup: report_histogram(&[], SETUP_HIST_HI_US),
            server: StatsSnapshot {
                observes,
                machines: 10,
                ..StatsSnapshot::default()
            },
        };
        // A fast member and a slow one, with very different reject rates.
        let fast: Vec<f64> = (0..100).map(|i| 100.0 + i as f64).collect();
        let slow: Vec<f64> = (0..100).map(|i| 10_000.0 + i as f64).collect();
        let mut merged = mk(100, 0, &fast, 1.0, 100);
        let b = mk(100, 300, &slow, 2.0, 100);
        merged.merge(&b);

        assert_eq!(merged.sent, 200);
        assert_eq!(merged.ok, 200);
        assert_eq!(merged.busy, 300);
        assert_eq!(merged.connections, 2);
        assert_eq!(merged.server.observes, 200);
        // Rates come from merged counts: 300/(200+300), not (0 + 0.75)/2.
        assert!((merged.reject_rate() - 0.6).abs() < 1e-12);
        // wall = max (parallel members), qps = merged resolved / wall.
        assert!((merged.wall_secs - 2.0).abs() < 1e-12);
        assert!((merged.achieved_qps - 100.0).abs() < 1e-9);
        // The merged p50 sits between the two clusters of latencies —
        // neither member's own p50 (≈150 and ≈10050) nor their average.
        assert!(merged.p50_us > 200.0 && merged.p50_us < 10_000.0);
        // p99 lands in the slow member's cluster; max is exact.
        assert!(merged.p99_us > 10_000.0);
        assert!((merged.max_us - 10_099.0).abs() < 1e-9);
        assert_eq!(merged.latency.count(), 200);
    }

    #[test]
    fn paced_replay_respects_target() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        // Pacing sleeps between 64-request chunks, so the plan must span
        // several chunks for the meter to engage at all — 8 ticks of one
        // machine is exactly one chunk, which a fast frontend resolves in
        // a couple of milliseconds, no pacing involved.
        let cfg = LoadgenConfig {
            machines: 1,
            ticks: 32,
            connections: 1,
            target_qps: 2_000,
            predicts: false,
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        // Unambitious bound: pacing must not *exceed* the target by 5x
        // (it may undershoot on a loaded CI box).
        assert!(
            report.achieved_qps < 10_000.0,
            "pacing ignored: {} qps",
            report.achieved_qps
        );
        server.shutdown();
    }

    /// The acceptance invariant for chaos mode: with ~5% injected faults
    /// (including dropped connections) the replay completes and no
    /// acknowledged sample is lost.
    #[test]
    fn chaos_replay_loses_no_acknowledged_samples() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let cfg = LoadgenConfig {
            machines: 4,
            ticks: 16,
            connections: 2,
            predicts: true,
            chaos: Some(FaultPlan::new(77, 0.05).with_max_delay(Duration::from_micros(200))),
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert!(report.faults > 0, "chaos plan never fired");
        assert_eq!(report.lost, 0, "acked samples vanished: {report:?}");
        assert_eq!(report.ok + report.errors, report.sent);
        server.shutdown();
    }

    /// A connection that cannot make progress is captured in the report
    /// instead of aborting the whole run (regression: the old harness
    /// panicked on the first failed connection thread).
    #[test]
    fn failed_connections_are_captured_not_fatal() {
        let server = Server::start(ServeConfig::default().with_shards(1)).unwrap();
        let cfg = LoadgenConfig {
            machines: 2,
            ticks: 4,
            connections: 2,
            predicts: false,
            // Drop every single operation: no connection can ever resolve
            // a request, so every retry budget exhausts.
            chaos: Some(
                FaultPlan::new(5, 1.0).with_kinds(oc_serve::fault::FaultKinds {
                    delays: false,
                    partials: false,
                    drops: true,
                }),
            ),
            ..LoadgenConfig::default()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert_eq!(report.failed_connections, 2, "{:?}", report.conn_failures);
        assert_eq!(report.conn_failures.len(), 2);
        assert_eq!(report.ok, 0);
        server.shutdown();
    }
}
