//! `oc-client` — a typed, retrying client for the `oc-serve` protocol.
//!
//! `oc-serve` deliberately answers with retryable failures under load
//! (`BUSY` from a full shard queue, `ERR timeout` at the idle deadline,
//! `ERR conn-limit` at the connection cap) and may close connections a
//! hand-rolled socket loop would misread as fatal. This crate owns the
//! client-side half of that contract:
//!
//! * [`client`] — [`Client`]: one logical connection with transparent
//!   reconnect, bounded exponential backoff with deterministic (seeded)
//!   jitter, typed request helpers, and windowed pipelining for bulk
//!   ingest. Re-sending after an ambiguous failure is safe because server
//!   ingestion is idempotent per `(tick, task)`.
//! * [`loadgen`] — the replay harness: drives a generated cell through
//!   [`Client`]s, captures per-connection failures into the report
//!   instead of aborting, and optionally wraps every connection in the
//!   seeded fault-injection plan from [`oc_serve::fault`] (chaos mode).
//! * [`fanin`] — the high fan-in driver: one event-loop thread (via the
//!   vendored `oc-reactor` poller) multiplexing thousands of
//!   connections at a low per-connection rate, the shape of a real
//!   node-agent fleet. Frames are pre-encoded once and tick fields
//!   patched in place; responses are byte-compared. Reports
//!   per-connection setup time separately from steady-state latency.
//! * [`cluster`] — [`ClusterClient`]: one client over an N-process
//!   `oc-cluster` ring. Routes every call to the key's owner via the
//!   shared consistent-hash ring, mirrors ingest to the replica (so a
//!   SIGKILLed member loses nothing), absorbs `ERR not-mine` redirects,
//!   and fails over when a member dies.
//! * [`fleet`] — the fleet driver: replays a synthetic fleet against
//!   every ring member in parallel, folds the per-member reports with
//!   [`LoadReport::merge`], and proves served-vs-offline prediction
//!   identity after failures.
//!
//! # Examples
//!
//! ```
//! use oc_client::{Client, ClientConfig};
//! use oc_serve::{ServeConfig, Server};
//! use oc_trace::ids::{CellId, JobId, TaskId};
//! use oc_trace::MachineId;
//!
//! let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
//! let mut client = Client::connect(server.addr(), ClientConfig::default()).unwrap();
//! let cell = CellId::new("demo");
//! for tick in 0..30 {
//!     client
//!         .observe(&cell, MachineId(0), TaskId::new(JobId(1), 0), 0.2, 0.5, tick)
//!         .unwrap();
//! }
//! let peak = client.predict(&cell, MachineId(0)).unwrap();
//! assert!(peak > 0.0);
//! drop(client);
//! let stats = server.shutdown();
//! assert_eq!(stats.observes, 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod error;
pub mod fanin;
pub mod fleet;
pub mod loadgen;
mod pipe;

pub use client::{Client, ClientConfig, ClientMetrics, RetryPolicy};
pub use cluster::{ClusterClient, ClusterClientConfig, ClusterMetrics};
pub use error::ClientError;
pub use fanin::FaninConfig;
pub use fleet::FleetConfig;
pub use loadgen::{LoadReport, LoadgenConfig};
