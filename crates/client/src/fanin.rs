//! High fan-in load driver: many connections, low per-connection rate.
//!
//! The thread-per-connection harness in [`crate::loadgen`] tops out at a
//! few hundred connections — beyond that the client machine spends its
//! time context-switching instead of driving load. This module is the
//! client-side mirror of the server's reactor frontend: **one** driver
//! thread multiplexes every connection over the vendored `oc-reactor`
//! poller, so `--connections 10000 --rate-per-conn 100` is a realistic
//! node-agent fleet rather than a thread-pool stress test.
//!
//! # How it drives load
//!
//! * Each connection impersonates one machine (`machine id == connection
//!   index`, zero-padded so every frame template has identical layout)
//!   streaming a synthetic cell called `fanin`.
//! * The whole replay is `BATCH` frames: a per-connection byte buffer is
//!   encoded **once** at setup, and only the fixed-width (10-digit,
//!   zero-padded) tick fields are patched in place before each send —
//!   the steady state allocates nothing and re-encodes nothing.
//! * Sends follow a globally staggered schedule: with `N` connections at
//!   `R` requests/sec each, one frame is due every `batch / (R * N)`
//!   seconds, rotating round-robin across connections. Arrivals at the
//!   server are smooth, not phase-locked bursts.
//! * Responses are verified by direct byte comparison (`BATCHR <n>`
//!   header, then `OK`/`BUSY`/`ERR` per line). There are no retries: a
//!   `BUSY` is counted and dropped, which is exactly what a fleet of
//!   fire-and-forget node agents does.
//!
//! Connect/setup time is measured per connection and reported separately
//! (`setup_*` fields in [`LoadReport`]) so the one-off connection storm
//! does not pollute steady-state latency percentiles; steady-state
//! latency here is *frame* latency (send → last response line).

use crate::error::ClientError;
use crate::loadgen::{fetch_stats, LoadReport};
use oc_reactor::{Events, Interest, Poller};
use oc_serve::proto::MAX_BATCH;
use oc_stats::percentile_slice;
use oc_telemetry::trace;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Attempts per connection before the connection counts as failed.
const CONNECT_ATTEMPTS: u32 = 3;

/// Upper bound on one poller wait, so the safety deadline is checked
/// even when nothing is due and nothing is readable.
const MAX_WAIT: Duration = Duration::from_millis(100);

/// Read scratch shared by every connection (responses are tiny; one
/// syscall usually drains several frames' worth of replies).
const READ_SCRATCH: usize = 256 * 1024;

/// Maximum frames in flight (sent, response not yet complete) per
/// connection. Without this cap an overloaded run keeps stuffing frames
/// into full socket buffers, and every TCP window update then moves a
/// dribble of bytes with a full syscall round trip on both sides —
/// measured as ~90% of one core spent in system time. With the cap,
/// every frame write completes in full and the run degrades into
/// closed-loop pipelining at server capacity instead.
const MAX_INFLIGHT: u64 = 2;

/// Width of the zero-padded machine field (supports 99 999 connections).
const MACHINE_PAD: usize = 5;

/// Width of the zero-padded, patched-in-place tick field.
const TICK_PAD: usize = 10;

/// Configuration for a fan-in run ([`run`]).
#[derive(Debug, Clone)]
pub struct FaninConfig {
    /// Concurrent connections to open (each impersonates one machine).
    pub connections: usize,
    /// Per-connection request rate, `OBSERVE` lines per second.
    pub rate_per_conn: u64,
    /// Sub-requests per `BATCH` frame (`1..=MAX_BATCH`).
    pub batch: usize,
    /// Distinct tasks per machine; each frame covers `batch / tasks`
    /// ticks for every task. Must not exceed `batch`.
    pub tasks: usize,
    /// Ticks of history to stream per machine; together with `batch` and
    /// `tasks` this determines the frame count per connection.
    pub ticks: u64,
}

impl Default for FaninConfig {
    fn default() -> FaninConfig {
        FaninConfig {
            connections: 10_000,
            rate_per_conn: 128,
            batch: 64,
            tasks: 8,
            ticks: 288,
        }
    }
}

impl FaninConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ClientError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ClientError> {
        if self.connections == 0 {
            return Err(ClientError::Config("connections must be >= 1".into()));
        }
        if self.rate_per_conn == 0 {
            return Err(ClientError::Config("rate_per_conn must be >= 1".into()));
        }
        if self.batch == 0 || self.batch > MAX_BATCH {
            return Err(ClientError::Config(format!(
                "batch must be in 1..={MAX_BATCH}"
            )));
        }
        if self.tasks == 0 || self.tasks > self.batch {
            return Err(ClientError::Config("tasks must be in 1..=batch".into()));
        }
        if self.ticks == 0 {
            return Err(ClientError::Config("ticks must be >= 1".into()));
        }
        Ok(())
    }

    /// Ticks each frame advances: `ceil(batch / tasks)`.
    fn ticks_per_frame(&self) -> u64 {
        (self.batch.div_ceil(self.tasks)) as u64
    }

    /// Frames each connection sends: `ceil(ticks / ticks_per_frame)`.
    fn frames_per_conn(&self) -> u64 {
        self.ticks.div_ceil(self.ticks_per_frame())
    }
}

/// Frame geometry shared by every connection: where the tick fields sit
/// in the (identically laid out) templates and what each response frame
/// must look like.
struct FrameLayout {
    /// Byte offset of each line's tick field within the frame.
    tick_offsets: Vec<usize>,
    /// Tick delta of each line relative to the frame's base tick
    /// (`line i` samples task `i % tasks` at `base + i / tasks`).
    line_delta: Vec<u64>,
    /// Ticks the base advances per frame.
    ticks_per_frame: u64,
    /// Sub-requests per frame.
    batch: usize,
    /// The exact `BATCHR <batch>` header every response must open with.
    expected_header: Vec<u8>,
}

impl FrameLayout {
    fn new(cfg: &FaninConfig) -> FrameLayout {
        let (_, tick_offsets) = build_template(cfg, 0);
        let line_delta = (0..cfg.batch).map(|i| (i / cfg.tasks) as u64).collect();
        FrameLayout {
            tick_offsets,
            line_delta,
            ticks_per_frame: cfg.ticks_per_frame(),
            batch: cfg.batch,
            expected_header: format!("BATCHR {}", cfg.batch).into_bytes(),
        }
    }
}

/// Patches a zero-padded decimal into `buf` (the field's exact bytes).
fn patch_decimal(buf: &mut [u8], mut v: u64) {
    for slot in buf.iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        v /= 10;
    }
}

/// Builds one frame template for `machine`, returning the bytes and the
/// byte offset of each line's tick field. Machine ids are zero-padded to
/// [`MACHINE_PAD`] digits so every template shares one layout.
fn build_template(cfg: &FaninConfig, machine: usize) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::with_capacity(16 + cfg.batch * 48);
    let mut tick_offsets = Vec::with_capacity(cfg.batch);
    buf.extend_from_slice(format!("BATCH {}\n", cfg.batch).as_bytes());
    for i in 0..cfg.batch {
        let task = i % cfg.tasks;
        buf.extend_from_slice(
            format!("OBSERVE fanin {machine:0>MACHINE_PAD$} {task}:0 0.200000 0.500000 ")
                .as_bytes(),
        );
        tick_offsets.push(buf.len());
        buf.extend_from_slice(&[b'0'; TICK_PAD]);
        buf.push(b'\n');
    }
    (buf, tick_offsets)
}

/// One multiplexed connection's state.
struct FConn {
    stream: TcpStream,
    /// The frame buffer: template with the machine id baked in; only the
    /// tick fields change between sends.
    buf: Vec<u8>,
    /// Bytes of the in-flight frame already written (== `buf.len()` when
    /// no frame is being written).
    outpos: usize,
    /// Whether a frame is currently being written out.
    writing: bool,
    /// Frames that came due while a previous write was still blocked.
    owed: u64,
    frames_sent: u64,
    frames_done: u64,
    /// Base tick for the next frame.
    next_tick: u64,
    /// Response lines still expected for the frame at the head of
    /// `sent_at` (0 ⇒ the next line must be a `BATCHR` header).
    body_left: usize,
    /// Unparsed tail of the last read (always shorter than one line).
    partial: Vec<u8>,
    /// Send instants of in-flight frames, oldest first.
    sent_at: VecDeque<Instant>,
    /// Whether the poller currently watches this fd for writability.
    want_write: bool,
    /// Set on a fatal transport or protocol error; the connection stops
    /// participating in the schedule.
    failed: Option<String>,
}

impl FConn {
    /// Frames sent whose responses have not fully arrived.
    fn in_flight(&self) -> u64 {
        self.frames_sent - self.frames_done
    }
}

/// Tallies shared across the whole run.
#[derive(Default)]
struct Tally {
    ok: u64,
    busy: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

/// Raw fd helper; the non-Unix arm is unreachable because
/// [`Poller::new`] fails with `Unsupported` first.
#[cfg(unix)]
fn raw_fd(s: &TcpStream) -> oc_reactor::RawFd {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd(_s: &TcpStream) -> oc_reactor::RawFd {
    0
}

/// Connects with bounded retries, measuring total setup time (µs).
fn connect_one(addr: SocketAddr) -> Result<(TcpStream, f64), String> {
    let start = Instant::now();
    let mut last = String::new();
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(1 << attempt));
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let cfg = stream
                    .set_nodelay(true)
                    .and_then(|()| stream.set_nonblocking(true));
                match cfg {
                    Ok(()) => return Ok((stream, start.elapsed().as_secs_f64() * 1e6)),
                    Err(e) => last = format!("socket setup: {e}"),
                }
            }
            Err(e) => last = format!("connect: {e}"),
        }
    }
    Err(last)
}

/// Runs a fan-in replay against `addr` and gathers a [`LoadReport`].
///
/// Steady-state latency percentiles in the report are **frame**
/// latencies (send to last response line of the frame); `setup_*`
/// percentiles cover per-connection connect/setup time. `achieved_qps`
/// counts resolved sub-requests (`ok + busy + errors`) over the replay
/// wall time, which starts *after* every connection is set up. The
/// final `STATS` snapshot is ordered behind every acknowledged sample
/// (shard snapshots flow through the same bounded queues), so `lost`
/// is an exact accounting, not a race.
///
/// # Errors
///
/// [`ClientError::Config`] for an invalid config, [`ClientError::Io`]
/// when the poller cannot be created or *no* connection could be
/// established, and any error of the final `STATS` fetch. Individual
/// connection failures mid-run are captured in the report instead.
pub fn run(addr: SocketAddr, cfg: &FaninConfig) -> Result<LoadReport, ClientError> {
    cfg.validate()?;
    let _ = oc_reactor::raise_nofile_limit();
    let poller = Poller::new().map_err(ClientError::Io)?;
    let _span = trace::span_ab("fanin.run", cfg.connections as u64, cfg.rate_per_conn);
    let layout = FrameLayout::new(cfg);
    let frames_per_conn = cfg.frames_per_conn();

    // Phase 1: connect serially, measuring per-connection setup time.
    let mut conns: Vec<FConn> = Vec::with_capacity(cfg.connections);
    let mut setup_us: Vec<f64> = Vec::with_capacity(cfg.connections);
    let mut conn_failures: Vec<String> = Vec::new();
    for i in 0..cfg.connections {
        match connect_one(addr) {
            Ok((stream, us)) => {
                poller
                    .register(raw_fd(&stream), conns.len(), Interest::READABLE)
                    .map_err(ClientError::Io)?;
                let (buf, _) = build_template(cfg, i);
                let outpos = buf.len();
                conns.push(FConn {
                    stream,
                    buf,
                    outpos,
                    writing: false,
                    owed: 0,
                    frames_sent: 0,
                    frames_done: 0,
                    next_tick: 0,
                    body_left: 0,
                    partial: Vec::new(),
                    sent_at: VecDeque::with_capacity(4),
                    want_write: false,
                    failed: None,
                });
                setup_us.push(us);
            }
            Err(why) => conn_failures.push(format!("connection {i}: {why}")),
        }
    }
    let n_conns = conns.len();
    if n_conns == 0 {
        return Err(ClientError::Io(std::io::Error::other(format!(
            "no connection could be established ({})",
            conn_failures
                .first()
                .map(String::as_str)
                .unwrap_or("no detail")
        ))));
    }

    // Phase 2: the staggered replay. Global frame `k` is due at
    // `start + k * stagger` on connection `k % n_conns`.
    let frame_interval = Duration::from_secs_f64(cfg.batch as f64 / cfg.rate_per_conn as f64);
    let stagger = frame_interval / n_conns as u32;
    let total_frames = frames_per_conn * n_conns as u64;
    let expected_wall = stagger * total_frames as u32;
    let mut tally = Tally {
        latencies_us: Vec::with_capacity(total_frames as usize),
        ..Tally::default()
    };
    let mut scratch = vec![0u8; READ_SCRATCH];
    let mut events = Events::with_capacity(1024);
    let start = Instant::now();
    let hard_deadline = start + expected_wall * 3 + Duration::from_secs(30);
    let mut next_send: u64 = 0;
    let mut remaining = n_conns;
    while remaining > 0 {
        let now = Instant::now();
        if now > hard_deadline {
            for c in conns.iter_mut() {
                if c.failed.is_none() && c.frames_done < frames_per_conn {
                    c.failed = Some(format!(
                        "replay deadline exceeded ({}/{frames_per_conn} frames)",
                        c.frames_done
                    ));
                }
            }
            break;
        }
        // Launch every frame that has come due.
        while next_send < total_frames && start + stagger * next_send as u32 <= now {
            let ci = (next_send % n_conns as u64) as usize;
            next_send += 1;
            let conn = &mut conns[ci];
            if conn.failed.is_some() {
                continue;
            }
            if conn.writing || conn.in_flight() >= MAX_INFLIGHT {
                conn.owed += 1;
            } else {
                start_frame(conn, &layout, now);
                pump_write(conn, ci, &poller, &layout);
                if conn_settled(conn, frames_per_conn) {
                    remaining -= 1;
                }
            }
        }
        // Sleep until the next due send, a response, or the sweep bound.
        let timeout = if next_send < total_frames {
            (start + stagger * next_send as u32).saturating_duration_since(Instant::now())
        } else {
            MAX_WAIT
        };
        if poller
            .wait(&mut events, Some(timeout.min(MAX_WAIT)))
            .is_err()
        {
            break;
        }
        for ev in &events {
            let token = ev.token();
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            if conn.failed.is_some() {
                continue;
            }
            let settled_before = conn_settled(conn, frames_per_conn);
            if ev.is_writable() && conn.writing {
                pump_write(conn, token, &poller, &layout);
            }
            if ev.is_readable() && conn.failed.is_none() {
                pump_read(conn, token, &poller, &mut scratch, &layout, &mut tally);
            }
            if !settled_before && conn_settled(conn, frames_per_conn) {
                remaining -= 1;
            }
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    // Phase 3: close everything, then snapshot the server.
    for (i, c) in conns.iter_mut().enumerate() {
        if let Some(why) = c.failed.take() {
            conn_failures.push(format!("connection {i}: {why}"));
        }
    }
    let sent: u64 = conns.iter().map(|c| c.frames_sent * cfg.batch as u64).sum();
    drop(conns);
    drop(poller);
    let server = fetch_stats(addr)?;

    let accounted = server.observes + server.stale + server.errors;
    let q = |p: f64| percentile_slice(&tally.latencies_us, p).unwrap_or(0.0);
    let resolved = tally.ok + tally.busy + tally.errors;
    Ok(LoadReport {
        sent,
        ok: tally.ok,
        busy: tally.busy,
        errors: tally.errors,
        retries: 0,
        reconnects: 0,
        faults: 0,
        acked_observes: tally.ok,
        lost: tally.ok.saturating_sub(accounted),
        failed_connections: conn_failures.len() as u64,
        conn_failures,
        connections: cfg.connections as u64,
        wall_secs,
        achieved_qps: if wall_secs > 0.0 {
            resolved as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: q(50.0),
        p99_us: q(99.0),
        max_us: tally.latencies_us.iter().cloned().fold(0.0, f64::max),
        setup_p50_us: percentile_slice(&setup_us, 50.0).unwrap_or(0.0),
        setup_p99_us: percentile_slice(&setup_us, 99.0).unwrap_or(0.0),
        setup_max_us: setup_us.iter().cloned().fold(0.0, f64::max),
        latency: crate::loadgen::report_histogram(
            &tally.latencies_us,
            crate::loadgen::LATENCY_HIST_HI_US,
        ),
        setup: crate::loadgen::report_histogram(&setup_us, crate::loadgen::SETUP_HIST_HI_US),
        server,
    })
}

/// Whether the connection no longer participates in the run.
fn conn_settled(conn: &FConn, frames_per_conn: u64) -> bool {
    conn.failed.is_some() || conn.frames_done >= frames_per_conn
}

/// Patches the next frame's tick fields into the buffer and marks it
/// in flight.
fn start_frame(conn: &mut FConn, layout: &FrameLayout, now: Instant) {
    for (&off, &delta) in layout.tick_offsets.iter().zip(&layout.line_delta) {
        patch_decimal(&mut conn.buf[off..off + TICK_PAD], conn.next_tick + delta);
    }
    conn.next_tick += layout.ticks_per_frame;
    conn.outpos = 0;
    conn.writing = true;
    conn.frames_sent += 1;
    conn.sent_at.push_back(now);
}

/// Writes as much of the in-flight frame as the socket accepts; on
/// completion, immediately starts any owed frames. Adjusts the poller's
/// write interest to match.
fn pump_write(conn: &mut FConn, token: usize, poller: &Poller, layout: &FrameLayout) {
    loop {
        while conn.outpos < conn.buf.len() {
            match conn.stream.write(&conn.buf[conn.outpos..]) {
                Ok(0) => {
                    fail(conn, poller, "write returned 0 (peer gone)".into());
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    set_write_interest(conn, token, poller, true);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    fail(conn, poller, format!("write: {e}"));
                    return;
                }
            }
        }
        conn.writing = false;
        if conn.owed == 0 || conn.in_flight() >= MAX_INFLIGHT {
            break;
        }
        conn.owed -= 1;
        start_frame(conn, layout, Instant::now());
    }
    set_write_interest(conn, token, poller, false);
}

/// Marks the connection failed and stops polling it.
fn fail(conn: &mut FConn, poller: &Poller, why: String) {
    conn.failed = Some(why);
    let _ = poller.deregister(raw_fd(&conn.stream));
}

/// Flips the poller's write interest for the connection when it changed.
fn set_write_interest(conn: &mut FConn, token: usize, poller: &Poller, want: bool) {
    if conn.want_write == want {
        return;
    }
    conn.want_write = want;
    let interest = if want {
        Interest::READABLE | Interest::WRITABLE
    } else {
        Interest::READABLE
    };
    if poller
        .reregister(raw_fd(&conn.stream), token, interest)
        .is_err()
    {
        conn.failed = Some("poller reregister failed".into());
    }
}

/// Drains the socket and verifies response lines against the expected
/// `BATCHR` framing, recording frame latencies as frames complete.
/// Completed frames free in-flight slots, so owed frames may start here.
fn pump_read(
    conn: &mut FConn,
    token: usize,
    poller: &Poller,
    scratch: &mut [u8],
    layout: &FrameLayout,
    tally: &mut Tally,
) {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                fail(conn, poller, "server closed the connection".into());
                return;
            }
            Ok(n) => {
                if let Err(why) = consume(conn, &scratch[..n], layout, tally) {
                    fail(conn, poller, why);
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                fail(conn, poller, format!("read: {e}"));
                return;
            }
        }
    }
    if conn.owed > 0 && !conn.writing && conn.in_flight() < MAX_INFLIGHT {
        conn.owed -= 1;
        start_frame(conn, layout, Instant::now());
        pump_write(conn, token, poller, layout);
    }
}

/// Parses `data` (plus any carried partial line) as response lines.
fn consume(
    conn: &mut FConn,
    mut data: &[u8],
    layout: &FrameLayout,
    tally: &mut Tally,
) -> Result<(), String> {
    // Finish a carried partial line first.
    if !conn.partial.is_empty() {
        match data.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut line = std::mem::take(&mut conn.partial);
                line.extend_from_slice(&data[..nl]);
                data = &data[nl + 1..];
                take_line(conn, &line, layout, tally)?;
            }
            None => {
                conn.partial.extend_from_slice(data);
                return Ok(());
            }
        }
    }
    while let Some(nl) = data.iter().position(|&b| b == b'\n') {
        let (line, rest) = data.split_at(nl);
        data = &rest[1..];
        take_line(conn, line, layout, tally)?;
    }
    conn.partial.extend_from_slice(data);
    Ok(())
}

/// Verifies one response line. Headers must match `BATCHR <batch>`
/// exactly; body lines are `OK` / `BUSY` / `ERR …`. Anything else is a
/// protocol violation and fails the connection.
fn take_line(
    conn: &mut FConn,
    line: &[u8],
    layout: &FrameLayout,
    tally: &mut Tally,
) -> Result<(), String> {
    if conn.body_left == 0 {
        if line != layout.expected_header.as_slice() {
            return Err(format!(
                "expected {:?}, got {:?}",
                String::from_utf8_lossy(&layout.expected_header),
                String::from_utf8_lossy(line)
            ));
        }
        conn.body_left = layout.batch;
        return Ok(());
    }
    match line {
        b"OK" => tally.ok += 1,
        b"BUSY" => tally.busy += 1,
        l if l.starts_with(b"ERR") => tally.errors += 1,
        other => {
            return Err(format!(
                "unexpected body line {:?}",
                String::from_utf8_lossy(other)
            ));
        }
    }
    conn.body_left -= 1;
    if conn.body_left == 0 {
        conn.frames_done += 1;
        if let Some(sent) = conn.sent_at.pop_front() {
            tally.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::{Frontend, ServeConfig, Server};

    fn small_cfg() -> FaninConfig {
        FaninConfig {
            connections: 8,
            rate_per_conn: 4_000,
            batch: 16,
            tasks: 4,
            ticks: 8,
        }
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        for bad in [
            FaninConfig {
                connections: 0,
                ..small_cfg()
            },
            FaninConfig {
                rate_per_conn: 0,
                ..small_cfg()
            },
            FaninConfig {
                batch: 0,
                ..small_cfg()
            },
            FaninConfig {
                batch: MAX_BATCH + 1,
                ..small_cfg()
            },
            FaninConfig {
                tasks: 17,
                ..small_cfg()
            },
            FaninConfig {
                ticks: 0,
                ..small_cfg()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
        assert!(small_cfg().validate().is_ok());
    }

    #[test]
    fn frame_geometry() {
        let cfg = small_cfg();
        assert_eq!(cfg.ticks_per_frame(), 4);
        assert_eq!(cfg.frames_per_conn(), 2);
        let (buf, offsets) = build_template(&cfg, 3);
        assert_eq!(offsets.len(), cfg.batch);
        assert!(buf.starts_with(b"BATCH 16\n"));
        // Machine ids are zero-padded to a fixed width, so every
        // connection's template has identical tick-field offsets.
        assert!(buf.windows(6).any(|w| w == b"00003 "));
        for &off in &offsets {
            assert_eq!(&buf[off..off + TICK_PAD], &[b'0'; TICK_PAD]);
            assert_eq!(buf[off + TICK_PAD], b'\n');
        }
        let layout = FrameLayout::new(&cfg);
        // Line i samples task i % tasks at tick base + i / tasks.
        assert_eq!(layout.line_delta[0], 0);
        assert_eq!(layout.line_delta[3], 0);
        assert_eq!(layout.line_delta[4], 1);
        assert_eq!(layout.line_delta[15], 3);
    }

    #[test]
    fn patch_decimal_zero_pads() {
        let mut buf = [0u8; TICK_PAD];
        patch_decimal(&mut buf, 42);
        assert_eq!(&buf, b"0000000042");
        patch_decimal(&mut buf, 9_999_999_999);
        assert_eq!(&buf, b"9999999999");
    }

    /// The acceptance smoke: a small fan-in run against the reactor
    /// frontend resolves every request with nothing lost.
    #[cfg(unix)]
    #[test]
    fn fanin_replay_loses_nothing_on_reactor_frontend() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(2)
                .with_max_connections(64),
        )
        .unwrap();
        let cfg = small_cfg();
        let report = run(server.addr(), &cfg).unwrap();
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert_eq!(report.connections, 8);
        // 8 conns x 2 frames x 16 lines.
        assert_eq!(report.sent, 256);
        assert_eq!(report.ok + report.busy, 256);
        assert_eq!(report.errors, 0);
        assert_eq!(report.lost, 0);
        assert!(report.setup_p50_us > 0.0);
        assert!(report.setup_max_us >= report.setup_p50_us);
        // Every OK is accounted for on the server (fresh or stale).
        assert_eq!(report.server.observes + report.server.stale, report.ok);
        server.shutdown();
    }

    /// The fan-in driver speaks the same wire protocol to the threaded
    /// frontend.
    #[cfg(unix)]
    #[test]
    fn fanin_replay_works_on_threaded_frontend() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_frontend(Frontend::Threaded)
                .with_max_connections(16),
        )
        .unwrap();
        let cfg = FaninConfig {
            connections: 4,
            ..small_cfg()
        };
        let report = run(server.addr(), &cfg).unwrap();
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert_eq!(report.sent, 128);
        assert_eq!(report.ok + report.busy, 128);
        assert_eq!(report.lost, 0);
        server.shutdown();
    }
}
