//! `loadgen` binary: replay a generated cell against `oc-serve`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--machines N] [--ticks N] [--connections N]
//!         [--qps N] [--seed U64] [--no-predicts] [--batch N] [--chaos RATE]
//!         [--chaos-seed U64] [--out BENCH_serve.json] [--trace-out FILE]
//! ```
//!
//! Without `--addr` an in-process server is started (4 shards, default
//! queues) and four phases run: a **sustained** phase on the default
//! config, a **serve_batched** phase replaying the same workload with
//! `BATCH` framing (`--batch`, default 32) paced at 3x the sustained
//! target (so server-side queueing stays comparable while throughput
//! triples), a **batched-chaos** phase repeating it under seeded fault
//! injection (the `--chaos` rate, default 2%) to prove framing loses no
//! acknowledged samples, and an **overload** phase against a deliberately
//! tiny queue
//! (`queue_depth = 8`) to demonstrate `BUSY` backpressure. With `--addr`
//! only the sustained phase runs, against the external server, honoring
//! `--batch` as given (default 1 = unframed).
//!
//! `--chaos RATE` injects seeded faults (delays, partial reads/writes,
//! dropped connections) into that fraction of client socket operations;
//! the run must still finish with `lost == 0` — every acknowledged sample
//! accounted for on the server — which the process enforces by exiting
//! nonzero otherwise.
//!
//! With `--out`, a JSON report in the style of `BENCH_hot_path.json` is
//! written; otherwise the same JSON goes to stdout.
//!
//! With `--trace-out FILE`, structured tracing is enabled for the run and
//! the drained client-side spans/events (`loadgen.conn` spans,
//! `client.retry.*` / `client.reconnect` events) are written to FILE as
//! JSONL on exit — see `docs/OPERATIONS.md` for the event dictionary.

use oc_client::loadgen::{run, LoadgenConfig};
use oc_client::LoadReport;
use oc_serve::fault::FaultPlan;
use oc_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;

struct Args {
    addr: Option<SocketAddr>,
    cfg: LoadgenConfig,
    chaos_rate: Option<f64>,
    chaos_seed: u64,
    out: Option<String>,
    trace_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--machines N] [--ticks N] \
         [--connections N] [--qps N] [--seed U64] [--no-predicts] [--batch N] \
         [--chaos RATE] [--chaos-seed U64] [--out FILE] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        cfg: LoadgenConfig::default(),
        chaos_rate: None,
        chaos_seed: 42,
        out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = Some(val("--addr").parse().unwrap_or_else(|_| usage())),
            "--machines" => {
                out.cfg.machines = val("--machines").parse().unwrap_or_else(|_| usage())
            }
            "--ticks" => out.cfg.ticks = val("--ticks").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                out.cfg.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--qps" => out.cfg.target_qps = val("--qps").parse().unwrap_or_else(|_| usage()),
            "--seed" => out.cfg.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--no-predicts" => out.cfg.predicts = false,
            "--batch" => out.cfg.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--chaos" => out.chaos_rate = Some(val("--chaos").parse().unwrap_or_else(|_| usage())),
            "--chaos-seed" => {
                out.chaos_seed = val("--chaos-seed").parse().unwrap_or_else(|_| usage())
            }
            "--out" => out.out = Some(val("--out")),
            "--trace-out" => out.trace_out = Some(val("--trace-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if let Some(rate) = out.chaos_rate {
        out.cfg.chaos = Some(FaultPlan::new(out.chaos_seed, rate));
    }
    out
}

fn phase_json(label: &str, report: &LoadReport) -> String {
    eprintln!(
        "loadgen[{label}]: {} reqs in {:.2}s = {:.0} qps, p50 {:.0}us p99 {:.0}us, \
         busy {} ({:.2}%), errors {}, retries {}, faults {}, lost {}, failed conns {}",
        report.sent,
        report.wall_secs,
        report.achieved_qps,
        report.p50_us,
        report.p99_us,
        report.busy,
        report.reject_rate() * 100.0,
        report.errors,
        report.retries,
        report.faults,
        report.lost,
        report.failed_connections,
    );
    for why in &report.conn_failures {
        eprintln!("loadgen[{label}]:   failed: {why}");
    }
    report.to_json(label)
}

fn write_trace(path: &str) -> std::io::Result<usize> {
    let events = oc_telemetry::trace::drain();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    oc_telemetry::trace::write_jsonl(&mut w, &events)?;
    Ok(events.len())
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.trace_out.is_some() {
        oc_telemetry::trace::enable();
    }
    let mut phases: Vec<String> = Vec::new();
    let mut lost_total = 0u64;

    let result = (|| -> Result<(), oc_client::ClientError> {
        match args.addr {
            Some(addr) => {
                let report = run(addr, &args.cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("sustained", &report));
            }
            None => {
                // Sustained phase: default server, default (deep) queues.
                let server = Server::start(ServeConfig::default())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &args.cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("sustained", &report));
                server.shutdown();

                // Batched phase: same workload with BATCH framing, paced
                // at 3x the sustained target — shows what the
                // zero-allocation data plane absorbs once per-line round
                // trips stop dominating, while keeping the offered load
                // paced so server-side queueing latency stays comparable
                // to the sustained phase.
                let mut batched_cfg = args.cfg.clone();
                batched_cfg.batch = if args.cfg.batch > 1 {
                    args.cfg.batch
                } else {
                    32
                };
                batched_cfg.target_qps = args.cfg.target_qps.saturating_mul(3);
                let server = Server::start(ServeConfig::default())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &batched_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("serve_batched", &report));
                server.shutdown();

                // Batched chaos phase: the same framed replay under
                // seeded fault injection; acked samples must all land.
                let mut chaos_cfg = batched_cfg.clone();
                chaos_cfg.chaos = Some(FaultPlan::new(
                    args.chaos_seed,
                    args.chaos_rate.unwrap_or(0.02),
                ));
                let server = Server::start(ServeConfig::default())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &chaos_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("batched-chaos", &report));
                server.shutdown();

                // Overload phase: tiny queues, open throttle, so bounded
                // queues visibly reject with BUSY instead of buffering.
                let server =
                    Server::start(ServeConfig::default().with_shards(2).with_queue_depth(8))
                        .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let mut overload_cfg = args.cfg.clone();
                overload_cfg.target_qps = 0;
                overload_cfg.connections = overload_cfg.connections.max(4);
                let report = run(server.addr(), &overload_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("overload-q8", &report));
                server.shutdown();
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        return ExitCode::FAILURE;
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve_loadgen\",\n",
            "  \"command\": \"cargo run --release -p oc-client --bin loadgen\",\n",
            "  \"workload\": {{\"preset\": \"{:?}\", \"machines\": {}, \"ticks\": {}, ",
            "\"connections\": {}, \"target_qps\": {}, \"predicts\": {}, ",
            "\"batch\": {}, \"chaos_rate\": {}, \"chaos_seed\": {}}},\n",
            "  \"phases\": [\n    {}\n  ],\n",
            "  \"notes\": \"sustained = default 4-shard server with 4096-deep queues; ",
            "serve_batched = same workload with BATCH framing (32 sub-requests/frame ",
            "unless --batch overrides) paced at 3x the sustained target so queueing ",
            "latency stays comparable while throughput triples; batched-chaos = the framed ",
            "replay under seeded fault injection (lost must be 0); overload-q8 = 2 shards ",
            "with queue_depth 8 at open throttle to surface BUSY backpressure. busy counts ",
            "client-absorbed retries; reject_rate = busy/(ok+busy), retry_ratio = ",
            "busy/sent. Latencies are client-observed (include pipelining queue time). ",
            "Absolute numbers vary by host.\"\n}}\n"
        ),
        args.cfg.preset,
        args.cfg.machines,
        args.cfg.ticks,
        args.cfg.connections,
        args.cfg.target_qps,
        args.cfg.predicts,
        args.cfg.batch,
        args.chaos_rate.unwrap_or(0.0),
        args.chaos_seed,
        phases.join(",\n    "),
    );

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("loadgen: wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &args.trace_out {
        oc_telemetry::trace::disable();
        match write_trace(path) {
            Ok(n) => eprintln!("loadgen: wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("loadgen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lost_total > 0 {
        eprintln!("loadgen: FAIL — {lost_total} acknowledged samples unaccounted for");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
