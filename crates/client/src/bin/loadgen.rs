//! `loadgen` binary: replay a generated cell against `oc-serve`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--machines N] [--ticks N] [--connections N]
//!         [--qps N] [--rate-per-conn R] [--seed U64] [--no-predicts]
//!         [--batch N] [--chaos RATE] [--chaos-seed U64] [--frontend F]
//!         [--out BENCH_serve.json] [--trace-out FILE]
//! ```
//!
//! Without `--addr` an in-process server is started (4 shards, default
//! queues) and five phases run: a **sustained** phase on the default
//! config, a **serve_batched** phase replaying the same workload with
//! `BATCH` framing (`--batch`, default 32) paced at 3x the sustained
//! target (so server-side queueing stays comparable while throughput
//! triples), a **batched-chaos** phase repeating it under seeded fault
//! injection (the `--chaos` rate, default 2%) to prove framing loses no
//! acknowledged samples, an **overload** phase against a deliberately
//! tiny queue (`queue_depth = 8`) to demonstrate `BUSY` backpressure,
//! and a **reactor-10k** phase driving 10 000 concurrent connections at
//! a low per-connection rate (107 lines/s/conn ≈ 1.07M qps offered, the
//! fan-in driver from `oc_client::fanin`) against a reactor-frontend
//! server in a *child process* — two processes because one address space
//! cannot hold 20 000 socket fds under the default `RLIMIT_NOFILE` hard
//! cap.
//!
//! With `--addr` only one phase runs against the external server:
//! **sustained** by default, or a **fanin** phase when `--rate-per-conn`
//! is given (then `--connections` is the fan-in width and `--batch`
//! defaults to 64). Without `--addr`, `--rate-per-conn` overrides the
//! reactor-10k phase's per-connection rate.
//!
//! `--chaos RATE` injects seeded faults (delays, partial reads/writes,
//! dropped connections) into that fraction of client socket operations;
//! the run must still finish with `lost == 0` — every acknowledged sample
//! accounted for on the server — which the process enforces by exiting
//! nonzero otherwise.
//!
//! `--frontend threaded|reactor` selects the frontend of every
//! in-process (and child) server; the default is the reactor.
//!
//! With `--out`, a JSON report in the style of `BENCH_hot_path.json` is
//! written; otherwise the same JSON goes to stdout.
//!
//! With `--trace-out FILE`, structured tracing is enabled for the run and
//! the drained client-side spans/events (`loadgen.conn` spans,
//! `client.retry.*` / `client.reconnect` events) are written to FILE as
//! JSONL on exit — see `docs/OPERATIONS.md` for the event dictionary.

use oc_client::fanin::{self, FaninConfig};
use oc_client::loadgen::{request_shutdown, run, LoadgenConfig};
use oc_client::LoadReport;
use oc_serve::fault::FaultPlan;
use oc_serve::{Frontend, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, ExitCode, Stdio};

struct Args {
    addr: Option<SocketAddr>,
    cfg: LoadgenConfig,
    rate_per_conn: Option<u64>,
    frontend: Option<Frontend>,
    chaos_rate: Option<f64>,
    chaos_seed: u64,
    out: Option<String>,
    trace_out: Option<String>,
    /// Hidden mode: run as the benchmark's server child process.
    serve_child: bool,
    /// Server tuning consumed by `--serve-child` (and forwarded to the
    /// reactor-10k child): shards, queue depth, connection cap, reactor
    /// threads.
    serve_cfg: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--machines N] [--ticks N] \
         [--connections N] [--qps N] [--rate-per-conn R] [--seed U64] \
         [--no-predicts] [--batch N] [--chaos RATE] [--chaos-seed U64] \
         [--frontend threaded|reactor] [--out FILE] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        cfg: LoadgenConfig::default(),
        rate_per_conn: None,
        frontend: None,
        chaos_rate: None,
        chaos_seed: 42,
        out: None,
        trace_out: None,
        serve_child: false,
        serve_cfg: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = Some(val("--addr").parse().unwrap_or_else(|_| usage())),
            "--machines" => {
                out.cfg.machines = val("--machines").parse().unwrap_or_else(|_| usage())
            }
            "--ticks" => out.cfg.ticks = val("--ticks").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                out.cfg.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--qps" => out.cfg.target_qps = val("--qps").parse().unwrap_or_else(|_| usage()),
            "--rate-per-conn" => {
                out.rate_per_conn = Some(val("--rate-per-conn").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => out.cfg.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--no-predicts" => out.cfg.predicts = false,
            "--batch" => out.cfg.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--chaos" => out.chaos_rate = Some(val("--chaos").parse().unwrap_or_else(|_| usage())),
            "--chaos-seed" => {
                out.chaos_seed = val("--chaos-seed").parse().unwrap_or_else(|_| usage())
            }
            "--frontend" => {
                out.frontend = Some(val("--frontend").parse().unwrap_or_else(|_| usage()))
            }
            "--out" => out.out = Some(val("--out")),
            "--trace-out" => out.trace_out = Some(val("--trace-out")),
            "--serve-child" => out.serve_child = true,
            "--shards" => {
                out.serve_cfg.shards = val("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--queue-depth" => {
                out.serve_cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                out.serve_cfg.max_connections =
                    val("--max-connections").parse().unwrap_or_else(|_| usage())
            }
            "--reactor-threads" => {
                out.serve_cfg.reactor_threads =
                    val("--reactor-threads").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if let Some(rate) = out.chaos_rate {
        out.cfg.chaos = Some(FaultPlan::new(out.chaos_seed, rate));
    }
    if let Some(f) = out.frontend {
        out.serve_cfg.frontend = f;
    }
    out
}

fn phase_json(label: &str, report: &LoadReport) -> String {
    eprintln!(
        "loadgen[{label}]: {} reqs in {:.2}s = {:.0} qps, p50 {:.0}us p99 {:.0}us, \
         busy {} ({:.2}%), errors {}, retries {}, faults {}, lost {}, failed conns {}",
        report.sent,
        report.wall_secs,
        report.achieved_qps,
        report.p50_us,
        report.p99_us,
        report.busy,
        report.reject_rate() * 100.0,
        report.errors,
        report.retries,
        report.faults,
        report.lost,
        report.failed_connections,
    );
    for why in &report.conn_failures {
        eprintln!("loadgen[{label}]:   failed: {why}");
    }
    report.to_json(label)
}

fn write_trace(path: &str) -> std::io::Result<usize> {
    let events = oc_telemetry::trace::drain();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    oc_telemetry::trace::write_jsonl(&mut w, &events)?;
    Ok(events.len())
}

/// Hidden `--serve-child` mode: start a server on an ephemeral port,
/// announce it as `ADDR <addr>` on stdout, and block until a client
/// sends `SHUTDOWN`.
fn serve_child(mut cfg: ServeConfig) -> ExitCode {
    cfg.addr = "127.0.0.1:0".to_string();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen[serve-child]: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ADDR {}", server.addr());
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    ExitCode::SUCCESS
}

/// Spawns this binary as a `--serve-child` server and parses the
/// announced address.
fn spawn_server_child(serve_cfg: &ServeConfig) -> std::io::Result<(Child, SocketAddr)> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--serve-child")
        .args(["--shards", &serve_cfg.shards.to_string()])
        .args(["--queue-depth", &serve_cfg.queue_depth.to_string()])
        .args(["--max-connections", &serve_cfg.max_connections.to_string()])
        .args(["--reactor-threads", &serve_cfg.reactor_threads.to_string()])
        .args(["--frontend", &serve_cfg.frontend.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line
        .strip_prefix("ADDR ")
        .map(str::trim)
        .and_then(|a| a.parse::<SocketAddr>().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other(format!(
                "server child did not announce an address (got {line:?})"
            )))
        }
    }
}

/// Runs the reactor-10k phase: a child-process reactor server and the
/// single-threaded fan-in driver at 10 000 connections.
fn reactor_10k(args: &Args) -> Result<LoadReport, oc_client::ClientError> {
    let mut serve_cfg = ServeConfig::default()
        .with_shards(args.serve_cfg.shards.min(2))
        .with_queue_depth(65_536)
        .with_max_connections(10_100)
        .with_reactor_threads(1);
    serve_cfg.frontend = args.serve_cfg.frontend;
    // Tuned operating point for one reactor thread on one core: 10 000
    // conns x 107 lines/s/conn offers ~1.07M qps, just under the
    // measured ~1.1M saturation, and 128-line frames keep per-conn
    // in-flight bytes low enough that full socket buffers don't degrade
    // into TCP-window-dribble syscall amplification.
    let fanin_cfg = FaninConfig {
        rate_per_conn: args.rate_per_conn.unwrap_or(107),
        batch: if args.cfg.batch > 1 {
            args.cfg.batch
        } else {
            128
        },
        ..FaninConfig::default()
    };
    let (mut child, addr) = spawn_server_child(&serve_cfg).map_err(oc_client::ClientError::Io)?;
    let result = fanin::run(addr, &fanin_cfg);
    let _ = request_shutdown(addr);
    let _ = child.wait();
    result
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.serve_child {
        return serve_child(args.serve_cfg);
    }
    if args.trace_out.is_some() {
        oc_telemetry::trace::enable();
    }
    let mut phases: Vec<String> = Vec::new();
    let mut lost_total = 0u64;

    let result = (|| -> Result<(), oc_client::ClientError> {
        match args.addr {
            Some(addr) => match args.rate_per_conn {
                Some(rate) => {
                    // High fan-in replay against the external server.
                    let cfg = FaninConfig {
                        connections: args.cfg.connections,
                        rate_per_conn: rate,
                        batch: if args.cfg.batch > 1 {
                            args.cfg.batch
                        } else {
                            64
                        },
                        ticks: args.cfg.ticks,
                        ..FaninConfig::default()
                    };
                    let cfg = FaninConfig {
                        tasks: cfg.tasks.min(cfg.batch),
                        ..cfg
                    };
                    let report = fanin::run(addr, &cfg)?;
                    lost_total += report.lost;
                    phases.push(phase_json("fanin", &report));
                }
                None => {
                    let report = run(addr, &args.cfg)?;
                    lost_total += report.lost;
                    phases.push(phase_json("sustained", &report));
                }
            },
            None => {
                let base_serve = || {
                    let mut cfg = ServeConfig::default();
                    if let Some(f) = args.frontend {
                        cfg.frontend = f;
                    }
                    cfg
                };
                // Sustained phase: default server, default (deep) queues.
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &args.cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("sustained", &report));
                server.shutdown();

                // Batched phase: same workload with BATCH framing, paced
                // at 3x the sustained target — shows what the
                // zero-allocation data plane absorbs once per-line round
                // trips stop dominating, while keeping the offered load
                // paced so server-side queueing latency stays comparable
                // to the sustained phase.
                let mut batched_cfg = args.cfg.clone();
                batched_cfg.batch = if args.cfg.batch > 1 {
                    args.cfg.batch
                } else {
                    32
                };
                batched_cfg.target_qps = args.cfg.target_qps.saturating_mul(3);
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &batched_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("serve_batched", &report));
                server.shutdown();

                // Batched chaos phase: the same framed replay under
                // seeded fault injection; acked samples must all land.
                let mut chaos_cfg = batched_cfg.clone();
                chaos_cfg.chaos = Some(FaultPlan::new(
                    args.chaos_seed,
                    args.chaos_rate.unwrap_or(0.02),
                ));
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &chaos_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("batched-chaos", &report));
                server.shutdown();

                // Overload phase: tiny queues, open throttle, so bounded
                // queues visibly reject with BUSY instead of buffering.
                let server = Server::start(base_serve().with_shards(2).with_queue_depth(8))
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let mut overload_cfg = args.cfg.clone();
                overload_cfg.target_qps = 0;
                overload_cfg.connections = overload_cfg.connections.max(4);
                let report = run(server.addr(), &overload_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("overload-q8", &report));
                server.shutdown();

                // Fan-in phase: 10k connections at a low per-connection
                // rate against the reactor frontend, server in a child
                // process (20k fds don't fit one RLIMIT_NOFILE budget).
                let report = reactor_10k(&args)?;
                lost_total += report.lost;
                phases.push(phase_json("reactor-10k", &report));
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        return ExitCode::FAILURE;
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve_loadgen\",\n",
            "  \"command\": \"cargo run --release -p oc-client --bin loadgen\",\n",
            "  \"workload\": {{\"preset\": \"{:?}\", \"machines\": {}, \"ticks\": {}, ",
            "\"connections\": {}, \"target_qps\": {}, \"predicts\": {}, ",
            "\"batch\": {}, \"chaos_rate\": {}, \"chaos_seed\": {}}},\n",
            "  \"phases\": [\n    {}\n  ],\n",
            "  \"notes\": \"sustained = default 4-shard server with 4096-deep queues; ",
            "serve_batched = same workload with BATCH framing (32 sub-requests/frame ",
            "unless --batch overrides) paced at 3x the sustained target so queueing ",
            "latency stays comparable while throughput triples; batched-chaos = the framed ",
            "replay under seeded fault injection (lost must be 0); overload-q8 = 2 shards ",
            "with queue_depth 8 at open throttle to surface BUSY backpressure; ",
            "reactor-10k = 10000 connections from the single-threaded fan-in driver ",
            "(128-line BATCH frames, no retries) against a 2-shard reactor-frontend server ",
            "in a child process — its latencies are frame (not line) latencies and ",
            "setup_* report per-connection connect time. busy counts ",
            "client-absorbed retries; reject_rate = busy/(ok+busy), retry_ratio = ",
            "busy/sent. Latencies are client-observed (include pipelining queue time). ",
            "Absolute numbers vary by host.\"\n}}\n"
        ),
        args.cfg.preset,
        args.cfg.machines,
        args.cfg.ticks,
        args.cfg.connections,
        args.cfg.target_qps,
        args.cfg.predicts,
        args.cfg.batch,
        args.chaos_rate.unwrap_or(0.0),
        args.chaos_seed,
        phases.join(",\n    "),
    );

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("loadgen: wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &args.trace_out {
        oc_telemetry::trace::disable();
        match write_trace(path) {
            Ok(n) => eprintln!("loadgen: wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("loadgen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lost_total > 0 {
        eprintln!("loadgen: FAIL — {lost_total} acknowledged samples unaccounted for");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
