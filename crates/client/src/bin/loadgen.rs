//! `loadgen` binary: replay a generated cell against `oc-serve`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--cluster H:P,H:P,...] [--machines N]
//!         [--ticks N] [--connections N] [--qps N] [--rate-per-conn R]
//!         [--seed U64] [--no-predicts] [--batch N] [--chaos RATE]
//!         [--chaos-seed U64] [--frontend F]
//!         [--out BENCH_serve.json] [--trace-out FILE]
//! ```
//!
//! Without `--addr`/`--cluster` an in-process server is started (4
//! shards, default queues) and eight phases run: a **sustained** phase on the default
//! config, a **serve_batched** phase replaying the same workload with
//! `BATCH` framing (`--batch`, default 32) paced at 3x the sustained
//! target (so server-side queueing stays comparable while throughput
//! triples), a **batched-chaos** phase repeating it under seeded fault
//! injection (the `--chaos` rate, default 2%) to prove framing loses no
//! acknowledged samples, an **overload** phase against a deliberately
//! tiny queue (`queue_depth = 8`) to demonstrate `BUSY` backpressure,
//! and a **reactor-10k** phase driving 10 000 concurrent connections at
//! a low per-connection rate (107 lines/s/conn ≈ 1.07M qps offered, the
//! fan-in driver from `oc_client::fanin`) against a reactor-frontend
//! server in a *child process* — two processes because one address space
//! cannot hold 20 000 socket fds under the default `RLIMIT_NOFILE` hard
//! cap.
//!
//! Three cluster phases close the pipeline, each against a 3-process
//! `oc-cluster` ring of child processes: **cluster-chaos** replays a
//! mirrored fleet in two segments with one member SIGKILLed between
//! them — `lost` is the count of machines whose served prediction is
//! *not* bit-identical to an offline recompute of the full sample
//! stream (served-vs-offline final-state identity, the strongest form
//! of the ledger) and must be 0; **cluster-replace** SIGKILLs a member
//! mid-fleet and replaces it *into the same ring slot* (state replayed
//! from the survivors' handoff logs, generation bumped and pushed), the
//! second segment driven by a `ClusterClient` holding the stale spec
//! that must auto-adopt the new ring; **cluster-1m** streams 1 000 000
//! simulated machines across the ring (no mirroring, bounded per-task
//! history) and reports the merged fleet throughput, with
//! `server_machines` proving full coverage.
//!
//! With `--cluster H:P,H:P,...` one **cluster** phase drives an
//! external member ring (started e.g. by `oc-clusterd`, which shares
//! the default ring seed/vnodes) with `--machines`/`--ticks` shaping
//! the fleet.
//!
//! With `--addr` only one phase runs against the external server:
//! **sustained** by default, or a **fanin** phase when `--rate-per-conn`
//! is given (then `--connections` is the fan-in width and `--batch`
//! defaults to 64). Without `--addr`, `--rate-per-conn` overrides the
//! reactor-10k phase's per-connection rate.
//!
//! `--chaos RATE` injects seeded faults (delays, partial reads/writes,
//! dropped connections) into that fraction of client socket operations;
//! the run must still finish with `lost == 0` — every acknowledged sample
//! accounted for on the server — which the process enforces by exiting
//! nonzero otherwise.
//!
//! `--frontend threaded|reactor` selects the frontend of every
//! in-process (and child) server; the default is the reactor.
//!
//! With `--out`, a JSON report in the style of `BENCH_hot_path.json` is
//! written; otherwise the same JSON goes to stdout.
//!
//! With `--trace-out FILE`, structured tracing is enabled for the run and
//! the drained client-side spans/events (`loadgen.conn` spans,
//! `client.retry.*` / `client.reconnect` events) are written to FILE as
//! JSONL on exit — see `docs/OPERATIONS.md` for the event dictionary.

use oc_client::fanin::{self, FaninConfig};
use oc_client::fleet::{self, FleetConfig};
use oc_client::loadgen::{request_shutdown, run, LoadgenConfig};
use oc_client::{ClusterClient, ClusterClientConfig, LoadReport};
use oc_cluster::{Cluster, ClusterConfig, RingSpec};
use oc_serve::fault::FaultPlan;
use oc_serve::{Frontend, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, ExitCode, Stdio};

struct Args {
    addr: Option<SocketAddr>,
    /// External cluster member addresses (`--cluster`), ring order.
    cluster: Option<Vec<SocketAddr>>,
    cfg: LoadgenConfig,
    rate_per_conn: Option<u64>,
    frontend: Option<Frontend>,
    chaos_rate: Option<f64>,
    chaos_seed: u64,
    out: Option<String>,
    trace_out: Option<String>,
    /// Hidden mode: run as the benchmark's server child process.
    serve_child: bool,
    /// Server tuning consumed by `--serve-child` (and forwarded to the
    /// reactor-10k child): shards, queue depth, connection cap, reactor
    /// threads.
    serve_cfg: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--cluster H:P,H:P,...] \
         [--machines N] [--ticks N] \
         [--connections N] [--qps N] [--rate-per-conn R] [--seed U64] \
         [--no-predicts] [--batch N] [--chaos RATE] [--chaos-seed U64] \
         [--frontend threaded|reactor] [--out FILE] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        cluster: None,
        cfg: LoadgenConfig::default(),
        rate_per_conn: None,
        frontend: None,
        chaos_rate: None,
        chaos_seed: 42,
        out: None,
        trace_out: None,
        serve_child: false,
        serve_cfg: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = Some(val("--addr").parse().unwrap_or_else(|_| usage())),
            "--cluster" => {
                let list: Result<Vec<SocketAddr>, _> =
                    val("--cluster").split(',').map(str::parse).collect();
                out.cluster = Some(list.unwrap_or_else(|_| usage()));
            }
            "--machines" => {
                out.cfg.machines = val("--machines").parse().unwrap_or_else(|_| usage())
            }
            "--ticks" => out.cfg.ticks = val("--ticks").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                out.cfg.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--qps" => out.cfg.target_qps = val("--qps").parse().unwrap_or_else(|_| usage()),
            "--rate-per-conn" => {
                out.rate_per_conn = Some(val("--rate-per-conn").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => out.cfg.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--no-predicts" => out.cfg.predicts = false,
            "--batch" => out.cfg.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--chaos" => out.chaos_rate = Some(val("--chaos").parse().unwrap_or_else(|_| usage())),
            "--chaos-seed" => {
                out.chaos_seed = val("--chaos-seed").parse().unwrap_or_else(|_| usage())
            }
            "--frontend" => {
                out.frontend = Some(val("--frontend").parse().unwrap_or_else(|_| usage()))
            }
            "--out" => out.out = Some(val("--out")),
            "--trace-out" => out.trace_out = Some(val("--trace-out")),
            "--serve-child" => out.serve_child = true,
            "--shards" => {
                out.serve_cfg.shards = val("--shards").parse().unwrap_or_else(|_| usage())
            }
            "--queue-depth" => {
                out.serve_cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                out.serve_cfg.max_connections =
                    val("--max-connections").parse().unwrap_or_else(|_| usage())
            }
            "--reactor-threads" => {
                out.serve_cfg.reactor_threads =
                    val("--reactor-threads").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if let Some(rate) = out.chaos_rate {
        out.cfg.chaos = Some(FaultPlan::new(out.chaos_seed, rate));
    }
    if let Some(f) = out.frontend {
        out.serve_cfg.frontend = f;
    }
    out
}

fn phase_json(label: &str, report: &LoadReport) -> String {
    eprintln!(
        "loadgen[{label}]: {} reqs in {:.2}s = {:.0} qps, p50 {:.0}us p99 {:.0}us, \
         busy {} ({:.2}%), errors {}, retries {}, faults {}, lost {}, failed conns {}",
        report.sent,
        report.wall_secs,
        report.achieved_qps,
        report.p50_us,
        report.p99_us,
        report.busy,
        report.reject_rate() * 100.0,
        report.errors,
        report.retries,
        report.faults,
        report.lost,
        report.failed_connections,
    );
    for why in &report.conn_failures {
        eprintln!("loadgen[{label}]:   failed: {why}");
    }
    report.to_json(label)
}

fn write_trace(path: &str) -> std::io::Result<usize> {
    let events = oc_telemetry::trace::drain();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    oc_telemetry::trace::write_jsonl(&mut w, &events)?;
    Ok(events.len())
}

/// Hidden `--serve-child` mode: start a server on an ephemeral port,
/// announce it as `ADDR <addr>` on stdout, and block until a client
/// sends `SHUTDOWN`.
fn serve_child(mut cfg: ServeConfig) -> ExitCode {
    cfg.addr = "127.0.0.1:0".to_string();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen[serve-child]: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ADDR {}", server.addr());
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    ExitCode::SUCCESS
}

/// Spawns this binary as a `--serve-child` server and parses the
/// announced address.
fn spawn_server_child(serve_cfg: &ServeConfig) -> std::io::Result<(Child, SocketAddr)> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--serve-child")
        .args(["--shards", &serve_cfg.shards.to_string()])
        .args(["--queue-depth", &serve_cfg.queue_depth.to_string()])
        .args(["--max-connections", &serve_cfg.max_connections.to_string()])
        .args(["--reactor-threads", &serve_cfg.reactor_threads.to_string()])
        .args(["--frontend", &serve_cfg.frontend.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line
        .strip_prefix("ADDR ")
        .map(str::trim)
        .and_then(|a| a.parse::<SocketAddr>().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other(format!(
                "server child did not announce an address (got {line:?})"
            )))
        }
    }
}

/// Runs the reactor-10k phase: a child-process reactor server and the
/// single-threaded fan-in driver at 10 000 connections.
fn reactor_10k(args: &Args) -> Result<LoadReport, oc_client::ClientError> {
    let mut serve_cfg = ServeConfig::default()
        .with_shards(args.serve_cfg.shards.min(2))
        .with_queue_depth(65_536)
        .with_max_connections(10_100)
        .with_reactor_threads(1);
    serve_cfg.frontend = args.serve_cfg.frontend;
    // Tuned operating point for one reactor thread on one core: 10 000
    // conns x 107 lines/s/conn offers ~1.07M qps, just under the
    // measured ~1.1M saturation, and 128-line frames keep per-conn
    // in-flight bytes low enough that full socket buffers don't degrade
    // into TCP-window-dribble syscall amplification.
    let fanin_cfg = FaninConfig {
        rate_per_conn: args.rate_per_conn.unwrap_or(107),
        batch: if args.cfg.batch > 1 {
            args.cfg.batch
        } else {
            128
        },
        ..FaninConfig::default()
    };
    let (mut child, addr) = spawn_server_child(&serve_cfg).map_err(oc_client::ClientError::Io)?;
    let result = fanin::run(addr, &fanin_cfg);
    let _ = request_shutdown(addr);
    let _ = child.wait();
    result
}

/// Splices extra numeric fields into a phase's JSON object (the
/// hand-rolled reports close with `}`; cluster phases add process
/// bookkeeping the generic report has no slot for).
fn with_extras(mut json: String, extras: &[(&str, u64)]) -> String {
    json.pop();
    for (key, value) in extras {
        json.push_str(&format!(",\"{key}\":{value}"));
    }
    json.push('}');
    json
}

/// Fleet size of the cluster-chaos phase.
const CHAOS_MACHINES: u64 = 3000;
/// Samples per machine in the cluster-chaos phase.
const CHAOS_TICKS: u64 = 30;
/// Fleet size of the cluster-1m phase.
const ONE_M_MACHINES: u64 = 1_000_000;
/// Fleet size of the cluster-replace phase.
const REPLACE_MACHINES: u64 = 600;
/// Samples per machine in the cluster-replace phase.
const REPLACE_TICKS: u64 = 30;

/// cluster-chaos: a 3-process ring, a mirrored fleet driven in two
/// segments with member 0 SIGKILLed between them, and `lost` replaced
/// by the served-vs-offline identity count — each machine's final
/// prediction must be bit-identical to an offline recompute of its full
/// sample stream, or it counts as lost.
fn cluster_chaos() -> Result<LoadReport, oc_client::ClientError> {
    let cluster_cfg = ClusterConfig {
        nodes: 3,
        shards: 1,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&cluster_cfg).map_err(oc_client::ClientError::Io)?;
    let spec = cluster.spec();
    let addrs = cluster.addrs();
    let first = FleetConfig {
        cell: "chaos".to_string(),
        machines: CHAOS_MACHINES,
        first_tick: 0,
        ticks: CHAOS_TICKS / 2,
        mirror: true,
        batch: 64,
        window: 32,
        // Mid-run snapshots would double-count when the segment reports
        // merge; only the post-kill survivors' state matters.
        fetch_stats: false,
    };
    let r1 = fleet::run(spec, &addrs, &cluster.alive(), &first)?;

    // SIGKILL mid-run: no drain, no goodbye. Everything member 0 owned
    // is now served by its ring successors, which mirrored the stream.
    cluster.kill(0).map_err(oc_client::ClientError::Io)?;

    let second = FleetConfig {
        first_tick: CHAOS_TICKS / 2,
        ticks: CHAOS_TICKS - CHAOS_TICKS / 2,
        fetch_stats: true,
        ..first.clone()
    };
    let r2 = fleet::run(spec, &addrs, &cluster.alive(), &second)?;
    let mut report = r1;
    report.merge(&r2);

    // Counter arithmetic cannot account a killed member (its acks died
    // with it; its mirrors did not). The identity sweep is the honest
    // ledger: state, not bookkeeping.
    report.lost = fleet::verify(
        spec,
        &addrs,
        &cluster.alive(),
        "chaos",
        CHAOS_MACHINES,
        CHAOS_TICKS,
    )?;
    let _ = cluster.shutdown();
    Ok(report)
}

/// cluster-replace: a 3-process ring, a mirrored fleet driven halfway,
/// member 0 SIGKILLed and **replaced into its slot** — the replacement
/// rebuilds its state by replaying the survivors' handoff logs, the
/// ring generation bumps, and the supervisor pushes the new description
/// to every member. The second half is then driven through a
/// [`ClusterClient`] that still holds the generation-0 spec and the
/// dead member's address: it must discover the death, adopt the pushed
/// ring *on its own* (no operator `adopt` call), and finish with zero
/// served-vs-offline mismatches. Returns the merged report plus the
/// client's adoption count and the post-replace mirror coverage
/// percentage (machines resident on exactly owner + replica).
fn cluster_replace() -> Result<(LoadReport, u64, u64), oc_client::ClientError> {
    let cluster_cfg = ClusterConfig {
        nodes: 3,
        shards: 1,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::start(&cluster_cfg).map_err(oc_client::ClientError::Io)?;
    let spec0 = cluster.spec();
    let stale_addrs = cluster.addrs();
    let seg = REPLACE_TICKS / 2;
    let first = FleetConfig {
        cell: "replace".to_string(),
        machines: REPLACE_MACHINES,
        first_tick: 0,
        ticks: seg,
        mirror: true,
        batch: 64,
        window: 32,
        fetch_stats: false,
    };
    let r1 = fleet::run(spec0, &stale_addrs, &cluster.alive(), &first)?;

    // SIGKILL, then replace into the same slot. No traffic lands between
    // the kill and the replacement, so the survivors' handoff logs hold
    // every acknowledged sample the dead member ever saw (the divergence
    // window caveat in OPERATIONS.md §5.7).
    cluster.kill(0).map_err(oc_client::ClientError::Io)?;
    let replay = cluster.replace(0).map_err(oc_client::ClientError::Io)?;
    eprintln!(
        "loadgen[cluster-replace]: replayed {} lines from {} survivors ({} rejected)",
        replay.replayed, replay.sources, replay.rejected
    );

    // The client still believes in generation 0 and the dead address.
    // Its first contact trips on the dead member, probes a survivor's
    // RING, and adopts the bumped generation before any mirror queues.
    // Pipelined ingest for the second half: 64-line frames, 8 in
    // flight per member (small fleet — deeper windows would just sit
    // on one member's queue while verify waits).
    let mut ccfg = ClusterClientConfig::default();
    ccfg.client = ccfg.client.with_batch(64);
    ccfg.pipeline_frames = 8;
    let mut cc = ClusterClient::connect(spec0, &stale_addrs, ccfg)?;
    let _ = cc.stats()?;
    let second = FleetConfig {
        first_tick: seg,
        ticks: REPLACE_TICKS - seg,
        fetch_stats: true,
        ..first
    };
    let r2 = fleet::run_routed(&mut cc, &second)?;
    let adoptions = cc.metrics().adoptions;
    let mut report = r1;
    report.merge(&r2);

    // Coverage: with redundancy restored, every machine is resident on
    // exactly two members (owner + replica), nowhere else.
    let coverage = report.server.machines * 100 / (2 * REPLACE_MACHINES);

    // The honest ledger, as in cluster-chaos: every machine's served
    // prediction vs an offline recompute of its full 30-tick stream —
    // now served partly by a process that was not alive for the first
    // half of that stream.
    let addrs = cluster.addrs();
    report.lost = fleet::verify(
        cluster.spec(),
        &addrs,
        &cluster.alive(),
        "replace",
        REPLACE_MACHINES,
        REPLACE_TICKS,
    )?;
    let _ = cluster.shutdown();
    Ok((report, adoptions, coverage))
}

/// cluster-1m: 1 000 000 simulated machines streamed across a
/// 3-process ring (no mirroring — this phase measures fleet-scale
/// coverage and merged throughput, not failover). `server_machines` in
/// the merged report must count the whole fleet.
fn cluster_1m() -> Result<LoadReport, oc_client::ClientError> {
    let cluster_cfg = ClusterConfig {
        nodes: 3,
        shards: 1,
        // Bound per-task history: 1M IncrementalViews at the paper's
        // default window would hold samples nobody reads at this scale.
        history_samples: Some(32),
        // First-observe allocation for a third of a million machines per
        // member makes ingest lumpy; a deeper queue rides the lumps out
        // instead of converting them into BUSY storms.
        queue_depth: 16_384,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(&cluster_cfg).map_err(oc_client::ClientError::Io)?;
    let cfg = FleetConfig {
        cell: "m1".to_string(),
        machines: ONE_M_MACHINES,
        first_tick: 0,
        ticks: 2,
        mirror: false,
        batch: 512,
        // 8 frames x 512 lines = 4096 lines in flight per member, a
        // quarter of the shard queue depth: open throttle without a
        // BUSY storm, and frames near MAX_BATCH amortize the BATCHR
        // framing and write syscalls over the most lines.
        window: 8,
        fetch_stats: true,
    };
    let report = fleet::run(cluster.spec(), &cluster.addrs(), &cluster.alive(), &cfg)?;
    let _ = cluster.shutdown();
    Ok(report)
}

/// `--cluster` mode: one fleet phase against an external member ring
/// sharing the default ring seed/vnodes (what `oc-clusterd` starts).
fn cluster_external(
    addrs: &[SocketAddr],
    args: &Args,
) -> Result<LoadReport, oc_client::ClientError> {
    let spec = RingSpec::new(addrs.len());
    let alive = vec![true; addrs.len()];
    let cfg = FleetConfig {
        cell: "fleet".to_string(),
        machines: args.cfg.machines as u64,
        first_tick: 0,
        ticks: args.cfg.ticks,
        mirror: true,
        batch: if args.cfg.batch > 1 {
            args.cfg.batch
        } else {
            64
        },
        window: 32,
        fetch_stats: true,
    };
    fleet::run(spec, addrs, &alive, &cfg)
}

fn main() -> ExitCode {
    oc_cluster::run_child_if_node();
    let args = parse_args();
    if args.serve_child {
        return serve_child(args.serve_cfg);
    }
    if args.trace_out.is_some() {
        oc_telemetry::trace::enable();
    }
    let mut phases: Vec<String> = Vec::new();
    let mut lost_total = 0u64;

    let result = (|| -> Result<(), oc_client::ClientError> {
        if let Some(members) = &args.cluster {
            let report = cluster_external(members, &args)?;
            lost_total += report.lost;
            phases.push(with_extras(
                phase_json("cluster", &report),
                &[("processes", members.len() as u64), ("killed", 0)],
            ));
            return Ok(());
        }
        match args.addr {
            Some(addr) => match args.rate_per_conn {
                Some(rate) => {
                    // High fan-in replay against the external server.
                    let cfg = FaninConfig {
                        connections: args.cfg.connections,
                        rate_per_conn: rate,
                        batch: if args.cfg.batch > 1 {
                            args.cfg.batch
                        } else {
                            64
                        },
                        ticks: args.cfg.ticks,
                        ..FaninConfig::default()
                    };
                    let cfg = FaninConfig {
                        tasks: cfg.tasks.min(cfg.batch),
                        ..cfg
                    };
                    let report = fanin::run(addr, &cfg)?;
                    lost_total += report.lost;
                    phases.push(phase_json("fanin", &report));
                }
                None => {
                    let report = run(addr, &args.cfg)?;
                    lost_total += report.lost;
                    phases.push(phase_json("sustained", &report));
                }
            },
            None => {
                let base_serve = || {
                    let mut cfg = ServeConfig::default();
                    if let Some(f) = args.frontend {
                        cfg.frontend = f;
                    }
                    cfg
                };
                // Sustained phase: default server, default (deep) queues.
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &args.cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("sustained", &report));
                server.shutdown();

                // Batched phase: same workload with BATCH framing, paced
                // at 3x the sustained target — shows what the
                // zero-allocation data plane absorbs once per-line round
                // trips stop dominating, while keeping the offered load
                // paced so server-side queueing latency stays comparable
                // to the sustained phase.
                let mut batched_cfg = args.cfg.clone();
                batched_cfg.batch = if args.cfg.batch > 1 {
                    args.cfg.batch
                } else {
                    32
                };
                batched_cfg.target_qps = args.cfg.target_qps.saturating_mul(3);
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &batched_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("serve_batched", &report));
                server.shutdown();

                // Batched chaos phase: the same framed replay under
                // seeded fault injection; acked samples must all land.
                let mut chaos_cfg = batched_cfg.clone();
                chaos_cfg.chaos = Some(FaultPlan::new(
                    args.chaos_seed,
                    args.chaos_rate.unwrap_or(0.02),
                ));
                let server = Server::start(base_serve())
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let report = run(server.addr(), &chaos_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("batched-chaos", &report));
                server.shutdown();

                // Overload phase: tiny queues, open throttle, so bounded
                // queues visibly reject with BUSY instead of buffering.
                let server = Server::start(base_serve().with_shards(2).with_queue_depth(8))
                    .map_err(|e| oc_client::ClientError::Config(e.to_string()))?;
                let mut overload_cfg = args.cfg.clone();
                overload_cfg.target_qps = 0;
                overload_cfg.connections = overload_cfg.connections.max(4);
                let report = run(server.addr(), &overload_cfg)?;
                lost_total += report.lost;
                phases.push(phase_json("overload-q8", &report));
                server.shutdown();

                // Fan-in phase: 10k connections at a low per-connection
                // rate against the reactor frontend, server in a child
                // process (20k fds don't fit one RLIMIT_NOFILE budget).
                let report = reactor_10k(&args)?;
                lost_total += report.lost;
                phases.push(phase_json("reactor-10k", &report));

                // Cluster chaos phase: 3 member processes, one
                // SIGKILLed mid-fleet; lost = served-vs-offline
                // prediction identity mismatches.
                let report = cluster_chaos()?;
                lost_total += report.lost;
                phases.push(with_extras(
                    phase_json("cluster-chaos", &report),
                    &[("processes", 3), ("killed", 1)],
                ));

                // Cluster replacement phase: SIGKILL + same-slot replace
                // with handoff replay; a stale-spec client must adopt
                // the pushed generation on its own.
                let (report, adoptions, coverage) = cluster_replace()?;
                lost_total += report.lost;
                phases.push(with_extras(
                    phase_json("cluster-replace", &report),
                    &[
                        ("processes", 3),
                        ("killed", 1),
                        ("replaced", 1),
                        ("adoptions", adoptions),
                        ("mirror_coverage_pct", coverage),
                    ],
                ));

                // Cluster fleet-scale phase: 1M machines across the ring.
                let report = cluster_1m()?;
                lost_total += report.lost;
                phases.push(with_extras(
                    phase_json("cluster-1m", &report),
                    &[("processes", 3), ("killed", 0)],
                ));
            }
        }
        Ok(())
    })();

    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        return ExitCode::FAILURE;
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve_loadgen\",\n",
            "  \"command\": \"cargo run --release -p oc-client --bin loadgen\",\n",
            "  \"workload\": {{\"preset\": \"{:?}\", \"machines\": {}, \"ticks\": {}, ",
            "\"connections\": {}, \"target_qps\": {}, \"predicts\": {}, ",
            "\"batch\": {}, \"chaos_rate\": {}, \"chaos_seed\": {}}},\n",
            "  \"phases\": [\n    {}\n  ],\n",
            "  \"notes\": \"sustained = default 4-shard server with 4096-deep queues; ",
            "serve_batched = same workload with BATCH framing (32 sub-requests/frame ",
            "unless --batch overrides), paced at 3x the sustained target when --qps is ",
            "set and at open throttle otherwise — on a single core both open-throttle ",
            "phases saturate the same shard-worker ceiling, so framing shows up as fewer ",
            "syscalls per line rather than a higher qps; batched-chaos = the framed ",
            "replay under seeded fault injection (lost must be 0); overload-q8 = 2 shards ",
            "with queue_depth 8 at open throttle to surface BUSY backpressure; ",
            "reactor-10k = 10000 connections from the single-threaded fan-in driver ",
            "(128-line BATCH frames, no retries) against a 2-shard reactor-frontend server ",
            "in a child process — its latencies are frame (not line) latencies and ",
            "setup_* report per-connection connect time; cluster-chaos = a 3000-machine ",
            "mirrored fleet over a 3-process consistent-hash ring with one member ",
            "SIGKILLed mid-run — lost counts machines whose served prediction is not ",
            "bit-identical to an offline recompute (state identity, not counter ",
            "arithmetic); cluster-replace = a 600-machine mirrored fleet with member 0 ",
            "SIGKILLed mid-run and replaced into its ring slot (state replayed from the ",
            "survivors' handoff logs, generation bumped and pushed via RINGSET) — the ",
            "second half is driven by a ClusterClient still holding the generation-0 ",
            "spec, which must auto-adopt the new ring (adoptions >= 1), and ",
            "mirror_coverage_pct must be 100 (every machine resident on exactly owner + ",
            "replica after redundancy is restored); cluster-1m = 1000000 machines x 2 ",
            "ticks across the same ring, ",
            "unmirrored, server_machines proving full coverage. Cluster-phase latency ",
            "percentiles are recomputed from merged per-member histograms. busy counts ",
            "client-absorbed retries; reject_rate = busy/(ok+busy), retry_ratio = ",
            "busy/sent. Latencies are client-observed (include pipelining queue time). ",
            "Absolute numbers vary by host.\"\n}}\n"
        ),
        args.cfg.preset,
        args.cfg.machines,
        args.cfg.ticks,
        args.cfg.connections,
        args.cfg.target_qps,
        args.cfg.predicts,
        args.cfg.batch,
        args.chaos_rate.unwrap_or(0.0),
        args.chaos_seed,
        phases.join(",\n    "),
    );

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("loadgen: wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &args.trace_out {
        oc_telemetry::trace::disable();
        match write_trace(path) {
            Ok(n) => eprintln!("loadgen: wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("loadgen: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lost_total > 0 {
        eprintln!("loadgen: FAIL — {lost_total} acknowledged samples unaccounted for");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
