//! The typed client: one connection, transparent reconnect, bounded retry.
//!
//! # Retry semantics
//!
//! A [`Client::request`] distinguishes four failure classes:
//!
//! * **`BUSY`** — the shard queue was full. The request was *not* applied;
//!   re-sending is always safe. Retried after a seeded exponential backoff.
//! * **`ERR timeout` / `ERR conn-limit`** — the server closed (or refused)
//!   this connection but is otherwise healthy. The connection is dropped
//!   and the request retried on a fresh one after backoff.
//! * **Transient I/O** (reset, broken pipe, EOF, deadline…) — the fate of
//!   an in-flight request is unknown: it may or may not have been applied.
//!   Re-sending is still safe because ingestion is idempotent — a repeated
//!   `OBSERVE` for a still-pending tick updates in place bit-identically,
//!   a repeated one for a flushed tick is counted `stale`, and
//!   `PREDICT`/`ADMIT` are read-only. The client reconnects and re-sends.
//! * **Everything else** (`ERR shutdown`, parse errors, non-transient I/O)
//!   — terminal; surfaced to the caller immediately.
//!
//! Backoff is exponential (`base * 2^attempt`, capped) with deterministic
//! jitter from a seeded [`SmallRng`], so two clients created with
//! different seeds never stampede in lockstep and a failing run replays
//! identically.
//!
//! # Pipelining
//!
//! [`Client::pipeline_with`] streams a slice of requests through bounded
//! windows: up to [`ClientConfig::pipeline_window`] requests are written
//! before the first response is awaited (the protocol answers strictly in
//! order, so responses match requests FIFO). Retryable failures re-queue
//! their request *ahead* of everything not yet written, preserving
//! submission order as closely as a retry allows.

use crate::error::ClientError;
use oc_serve::fault::{FaultCounters, FaultPlan, FaultStream};
use oc_serve::proto::{
    parse_batchr_header, push_u64, ErrCode, ProtoError, ProtoScratch, Request, Response,
    StatsSnapshot, MAX_BATCH,
};
use oc_telemetry::{trace, Counter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded-retry policy.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// First backoff; doubles each retry.
    pub base: Duration,
    /// Upper bound on one backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// 6 attempts, 5 ms initial backoff, capped at 500 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
        }
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for one TCP connect.
    pub connect_timeout: Duration,
    /// Deadline for one response read; elapsing counts as a transient
    /// failure (reconnect + retry).
    pub response_timeout: Duration,
    /// Deadline for one socket write.
    pub write_timeout: Duration,
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Seed for backoff jitter and fault sub-schedules. Give every client
    /// of a run a distinct seed.
    pub seed: u64,
    /// Client-side fault injection (chaos testing); `None` in production.
    pub faults: Option<FaultPlan>,
    /// Max requests in flight before the oldest response is awaited.
    pub pipeline_window: usize,
    /// Sub-requests per `BATCH` wire frame in pipelined ingest (`1`
    /// disables framing). Runs of consecutive data-plane requests
    /// (`OBSERVE`/`PREDICT`/`ADMIT`) are framed transparently — responses
    /// still resolve per request, in order — amortizing one round of
    /// server-side parse/dispatch bookkeeping per frame. Control verbs
    /// are never framed.
    pub batch: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            response_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            seed: 0,
            faults: None,
            pipeline_window: 512,
            batch: 1,
        }
    }
}

impl ClientConfig {
    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the jitter/fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables client-side fault injection.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the pipelining window.
    pub fn with_pipeline_window(mut self, window: usize) -> Self {
        self.pipeline_window = window;
        self
    }

    /// Sets the `BATCH` frame size for pipelined ingest (1 = off).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Config`] for a zero window, zero attempt
    /// budget, or invalid fault plan.
    pub fn validate(&self) -> Result<(), ClientError> {
        if self.retry.max_attempts == 0 {
            return Err(ClientError::Config("max_attempts must be >= 1".into()));
        }
        if self.pipeline_window == 0 {
            return Err(ClientError::Config("pipeline_window must be >= 1".into()));
        }
        if self.batch == 0 || self.batch > MAX_BATCH {
            return Err(ClientError::Config(format!(
                "batch must be in 1..={MAX_BATCH}"
            )));
        }
        if let Some(plan) = &self.faults {
            plan.validate()
                .map_err(|e| ClientError::Config(e.to_string()))?;
        }
        Ok(())
    }
}

/// Counters of everything the retry machinery did on one client.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientMetrics {
    /// Request attempts beyond the first (all causes).
    pub retries: u64,
    /// Connections re-established after the first.
    pub reconnects: u64,
    /// Retries caused by `BUSY` backpressure.
    pub busy_retries: u64,
    /// Retries caused by transient I/O failures (including `ERR timeout`
    /// and `ERR conn-limit` reconnects).
    pub io_retries: u64,
}

/// Cached handles into the process-wide metrics registry
/// ([`oc_telemetry::global_metrics`]); bumped alongside the per-client
/// [`ClientMetrics`] so a multi-client process (e.g. loadgen) gets one
/// aggregate view without collecting every client by hand.
#[derive(Debug)]
struct GlobalCounters {
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    busy_retries: Arc<Counter>,
    io_retries: Arc<Counter>,
}

impl GlobalCounters {
    fn new() -> GlobalCounters {
        let m = oc_telemetry::global_metrics();
        GlobalCounters {
            retries: m.counter("client.retries"),
            reconnects: m.counter("client.reconnects"),
            busy_retries: m.counter("client.retries.busy"),
            io_retries: m.counter("client.retries.io"),
        }
    }
}

/// One logical connection to an `oc-serve` server.
///
/// # Examples
///
/// ```no_run
/// use oc_client::{Client, ClientConfig};
///
/// let mut client = Client::connect("127.0.0.1:7071".parse().unwrap(),
///                                  ClientConfig::default()).unwrap();
/// let stats = client.stats().unwrap();
/// println!("server has {} machines", stats.machines);
/// ```
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<Conn>,
    rng: SmallRng,
    /// Connect epoch; salts the fault sub-seed so every reconnect gets a
    /// fresh deterministic schedule.
    epoch: u64,
    metrics: ClientMetrics,
    global: GlobalCounters,
    fault_counters: Arc<FaultCounters>,
}

/// The two halves of an established connection, boxed so the fault
/// wrapper is transparent to the rest of the client.
struct Conn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Conn { .. }")
    }
}

/// I/O error kinds treated as transient: the connection is torn down and
/// the request retried on a fresh one.
fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        ConnectionReset
            | ConnectionAborted
            | ConnectionRefused
            | BrokenPipe
            | UnexpectedEof
            | WouldBlock
            | TimedOut
            | Interrupted
    )
}

/// What one write+read attempt produced.
enum Attempt {
    /// A response that terminates the retry loop.
    Done(Response),
    /// `BUSY`: back off and re-send on the same connection.
    Busy,
    /// `ERR timeout` / `ERR conn-limit` / transient I/O: reconnect and
    /// re-send. Carries a description for the exhaustion error.
    Transient(String),
}

impl Client {
    /// Connects to `addr`, retrying transient connect failures within the
    /// configured budget.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Config`] for an invalid config and
    /// [`ClientError::Exhausted`]/[`ClientError::Io`] when the server
    /// cannot be reached.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Result<Client, ClientError> {
        cfg.validate()?;
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xC11E_57A9);
        let mut client = Client {
            addr,
            cfg,
            conn: None,
            rng,
            epoch: 0,
            metrics: ClientMetrics::default(),
            global: GlobalCounters::new(),
            fault_counters: Arc::new(FaultCounters::default()),
        };
        for attempt in 0..client.cfg.retry.max_attempts {
            match client.ensure_conn() {
                Ok(_) => return Ok(client),
                Err(e) if is_transient(&e) => client.backoff(attempt),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        Err(ClientError::Exhausted {
            attempts: client.cfg.retry.max_attempts,
            last: format!("could not connect to {addr}"),
        })
    }

    /// What the retry machinery has done so far.
    pub fn metrics(&self) -> ClientMetrics {
        self.metrics
    }

    /// Faults injected by this client's own fault plan.
    pub fn faults_injected(&self) -> u64 {
        self.fault_counters.total()
    }

    fn ensure_conn(&mut self) -> std::io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.response_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        let read_half = stream.try_clone()?;
        if self.epoch > 0 {
            self.metrics.reconnects += 1;
            self.global.reconnects.inc();
            trace::event("client.reconnect", self.epoch, 0);
        }
        let (r, w): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match &self.cfg.faults {
            Some(plan) => {
                // Salt by seed and epoch so every client and every
                // reconnect runs a distinct deterministic schedule.
                let base = self.cfg.seed.wrapping_shl(20).wrapping_add(self.epoch * 2);
                (
                    Box::new(FaultStream::new(
                        read_half,
                        plan,
                        plan.stream_seed(base),
                        Arc::clone(&self.fault_counters),
                    )),
                    Box::new(FaultStream::new(
                        stream,
                        plan,
                        plan.stream_seed(base + 1),
                        Arc::clone(&self.fault_counters),
                    )),
                )
            }
            None => (Box::new(read_half), Box::new(stream)),
        };
        self.epoch += 1;
        self.conn = Some(Conn {
            reader: BufReader::new(r),
            writer: BufWriter::new(w),
        });
        Ok(())
    }

    /// Sleeps `min(cap, base * 2^attempt)` scaled by a seeded jitter
    /// factor in `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32) {
        let base = self.cfg.retry.base.as_secs_f64();
        let cap = self.cfg.retry.cap.as_secs_f64();
        let exp = base * f64::from(2u32.saturating_pow(attempt.min(16)));
        let jitter = 0.5 + 0.5 * self.rng.random::<f64>();
        std::thread::sleep(Duration::from_secs_f64(exp.min(cap) * jitter));
    }

    /// Writes `line` and reads one response on the current connection.
    fn try_once(&mut self, line: &str) -> Result<Attempt, ClientError> {
        if let Err(e) = self.ensure_conn() {
            return if is_transient(&e) {
                self.conn = None;
                Ok(Attempt::Transient(e.to_string()))
            } else {
                Err(ClientError::Io(e))
            };
        }
        let conn = self.conn.as_mut().expect("ensured above");
        let io = (|| -> std::io::Result<String> {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.write_all(b"\n")?;
            conn.writer.flush()?;
            let mut buf = String::new();
            if conn.reader.read_line(&mut buf)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(buf)
        })();
        let buf = match io {
            Ok(buf) => buf,
            Err(e) if is_transient(&e) => {
                self.conn = None;
                return Ok(Attempt::Transient(e.to_string()));
            }
            Err(e) => return Err(ClientError::Io(e)),
        };
        let resp = Response::parse(buf.trim_end()).map_err(ClientError::Proto)?;
        Ok(self.classify(resp))
    }

    /// Maps a response onto the retry ladder.
    fn classify(&mut self, resp: Response) -> Attempt {
        match resp {
            Response::Busy => Attempt::Busy,
            Response::Err {
                code: code @ (ErrCode::Timeout | ErrCode::ConnLimit),
                detail,
            } => {
                // The server closed (or refused) this connection; it is
                // useless now, but a fresh one may succeed.
                self.conn = None;
                Attempt::Transient(format!("{}: {detail}", code.as_str()))
            }
            other => Attempt::Done(other),
        }
    }

    /// Records one `BUSY` retry (per-client and process-wide) and emits a
    /// `client.retry.busy` trace event (`a` = requests affected).
    fn note_busy(&mut self, affected: u64) {
        self.metrics.busy_retries += 1;
        self.global.busy_retries.inc();
        trace::event("client.retry.busy", affected, 0);
    }

    /// Records one transient-I/O retry and emits `client.retry.io`
    /// (`a` = requests re-queued by the failure).
    fn note_io(&mut self, affected: u64) {
        self.metrics.io_retries += 1;
        self.global.io_retries.inc();
        trace::event("client.retry.io", affected, 0);
    }

    /// Records `n` request attempts beyond the first.
    fn note_retries(&mut self, n: u64) {
        self.metrics.retries += n;
        self.global.retries.add(n);
    }

    /// Sends one request, retrying `BUSY` and transient failures within
    /// the budget. Non-retryable `ERR` responses are returned as
    /// [`Response::Err`] values, not errors.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when the budget runs out; terminal
    /// transport and protocol failures as their own variants.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let line = req.encode();
        let mut last = String::new();
        for attempt in 0..self.cfg.retry.max_attempts {
            if attempt > 0 {
                self.note_retries(1);
            }
            match self.try_once(&line)? {
                Attempt::Done(resp) => return Ok(resp),
                Attempt::Busy => {
                    self.note_busy(1);
                    last = "BUSY".to_string();
                    self.backoff(attempt);
                }
                Attempt::Transient(what) => {
                    self.note_io(1);
                    last = what;
                    self.backoff(attempt);
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.cfg.retry.max_attempts,
            last,
        })
    }

    /// Streams a usage sample. `Ok` means *accepted for ingestion* (the
    /// server acknowledges on enqueue); apply outcomes surface in `STATS`.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a non-`OK` response (e.g.
    /// `ERR stale` is impossible here — staleness is counted server-side —
    /// but `ERR shutdown` is not) becomes [`ClientError::Server`].
    pub fn observe(
        &mut self,
        cell: &oc_trace::ids::CellId,
        machine: oc_trace::MachineId,
        task: oc_trace::ids::TaskId,
        usage: f64,
        limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            mem: None,
            tick,
        };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::unexpected("OK", &other)),
        }
    }

    /// Reports one multi-resource sample: CPU plus memory lanes in a
    /// single `OBSERVE` line (`usage` and `limit` become `cpu,mem` pairs
    /// on the wire). The first vector sample flips the machine's
    /// server-side view into vector mode for good.
    ///
    /// # Errors
    ///
    /// As [`Client::observe`].
    #[allow(clippy::too_many_arguments)]
    pub fn observe_vec(
        &mut self,
        cell: &oc_trace::ids::CellId,
        machine: oc_trace::MachineId,
        task: oc_trace::ids::TaskId,
        usage: f64,
        limit: f64,
        mem_usage: f64,
        mem_limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            mem: Some((mem_usage, mem_limit)),
            tick,
        };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::unexpected("OK", &other)),
        }
    }

    /// Fetches the predicted peak for one machine.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a non-`PRED` response
    /// becomes [`ClientError::Server`].
    pub fn predict(
        &mut self,
        cell: &oc_trace::ids::CellId,
        machine: oc_trace::MachineId,
    ) -> Result<f64, ClientError> {
        let req = Request::Predict {
            cell: cell.clone(),
            machine,
            vector: false,
        };
        match self.request(&req)? {
            Response::Pred { peak, .. } => Ok(peak),
            other => Err(ClientError::unexpected("PRED", &other)),
        }
    }

    /// Fetches the predicted `(cpu, mem)` peaks for one machine via the
    /// multi-resource `PREDICT ... *` form.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a scalar `PRED` (server
    /// that never saw vector samples still answers both lanes — memory is
    /// `0`) or non-`PRED` response becomes [`ClientError::Server`].
    pub fn predict_vec(
        &mut self,
        cell: &oc_trace::ids::CellId,
        machine: oc_trace::MachineId,
    ) -> Result<(f64, f64), ClientError> {
        let req = Request::Predict {
            cell: cell.clone(),
            machine,
            vector: true,
        };
        match self.request(&req)? {
            Response::Pred {
                peak,
                mem: Some(mem),
            } => Ok((peak, mem)),
            Response::Pred { peak, mem: None } => Err(ClientError::unexpected(
                "PRED cpu,mem",
                &Response::Pred { peak, mem: None },
            )),
            other => Err(ClientError::unexpected("PRED", &other)),
        }
    }

    /// Runs an admission check: would adding `limit` keep the machine's
    /// projected peak under capacity?
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a non-`ADMITTED` response
    /// becomes [`ClientError::Server`].
    pub fn admit(
        &mut self,
        cell: &oc_trace::ids::CellId,
        machine: oc_trace::MachineId,
        limit: f64,
    ) -> Result<(bool, f64), ClientError> {
        let req = Request::Admit {
            cell: cell.clone(),
            machine,
            limit,
        };
        match self.request(&req)? {
            Response::Admitted { admit, projected } => Ok((admit, projected)),
            other => Err(ClientError::unexpected("ADMITTED", &other)),
        }
    }

    /// Fetches the merged server counters.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a non-`STATS` response
    /// becomes [`ClientError::Server`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::unexpected("STATS", &other)),
        }
    }

    /// Fetches the server's merged metrics exposition (the `METRICS`
    /// verb) as a name → value map. Not to be confused with
    /// [`Client::metrics`], which reports this *client's* retry counters;
    /// this call reports the *server's* unified registry — see
    /// `docs/OPERATIONS.md` for the metric dictionary.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures; a non-`METRICS` response
    /// or an undecodable exposition becomes [`ClientError::Server`].
    pub fn server_metrics(&mut self) -> Result<BTreeMap<String, f64>, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { exposition } => {
                oc_telemetry::metrics::parse_exposition(&exposition).ok_or(ClientError::Server {
                    expected: "METRICS",
                    got: exposition,
                })
            }
            other => Err(ClientError::unexpected("METRICS", &other)),
        }
    }

    /// Asks the server to shut down. Success if the server acknowledged
    /// or was already shutting down.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::request`] failures.
    pub fn request_shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok
            | Response::Err {
                code: ErrCode::Shutdown,
                ..
            } => Ok(()),
            other => Err(ClientError::unexpected("OK", &other)),
        }
    }

    /// Streams `reqs` through bounded pipelined windows; `on_resp(index,
    /// response, latency_us)` fires once per request, in resolution order
    /// (usually submission order; retries resolve late).
    ///
    /// Responses match requests FIFO because the protocol answers in
    /// order. `BUSY`, `ERR timeout`/`conn-limit`, and transient I/O
    /// failures re-queue the affected requests ahead of everything not
    /// yet written; a window that makes zero progress counts one strike,
    /// and `max_attempts` consecutive strikes exhaust the budget.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] after `max_attempts` zero-progress
    /// windows; terminal transport and protocol failures as their own
    /// variants.
    pub fn pipeline_with<F>(&mut self, reqs: &[Request], mut on_resp: F) -> Result<(), ClientError>
    where
        F: FnMut(usize, &Response, f64),
    {
        let mut todo: VecDeque<usize> = (0..reqs.len()).collect();
        let mut strikes = 0u32;
        let mut last = String::new();
        while !todo.is_empty() {
            if strikes >= self.cfg.retry.max_attempts {
                return Err(ClientError::Exhausted {
                    attempts: self.cfg.retry.max_attempts,
                    last,
                });
            }
            if let Err(e) = self.ensure_conn() {
                if is_transient(&e) {
                    self.note_io(0);
                    last = e.to_string();
                    self.backoff(strikes);
                    strikes += 1;
                    continue;
                }
                return Err(ClientError::Io(e));
            }
            let window: Vec<usize> = {
                let n = todo.len().min(self.cfg.pipeline_window);
                todo.drain(..n).collect()
            };
            match self.run_window(reqs, &window, &mut todo, &mut on_resp)? {
                WindowOutcome::Progress => strikes = 0,
                WindowOutcome::Stalled(what) => {
                    last = what;
                    self.backoff(strikes);
                    strikes += 1;
                }
            }
        }
        Ok(())
    }

    /// Writes one window and drains its responses. Unresolved indices go
    /// back onto the *front* of `todo`, in order.
    ///
    /// With `cfg.batch > 1`, consecutive data-plane requests (`OBSERVE`,
    /// `PREDICT`, `ADMIT`) are framed as `BATCH` frames of up to
    /// `cfg.batch` sub-requests; control verbs and singleton runs are
    /// sent bare. The reply stream stays one line per request in order,
    /// with a `BATCHR <n>` header preceding each frame's replies.
    fn run_window<F>(
        &mut self,
        reqs: &[Request],
        window: &[usize],
        todo: &mut VecDeque<usize>,
        on_resp: &mut F,
    ) -> Result<WindowOutcome, ClientError>
    where
        F: FnMut(usize, &Response, f64),
    {
        let frames = plan_frames(reqs, window, self.cfg.batch);
        let conn = self.conn.as_mut().expect("caller ensured a connection");
        let wrote = (|| -> std::io::Result<Vec<Instant>> {
            let mut stamps = Vec::with_capacity(window.len());
            let mut line = Vec::new();
            for frame in &frames {
                line.clear();
                if frame.batched {
                    line.extend_from_slice(b"BATCH ");
                    push_u64(&mut line, frame.len as u64);
                    line.push(b'\n');
                }
                for &idx in &window[frame.start..frame.start + frame.len] {
                    stamps.push(Instant::now());
                    reqs[idx].encode_into(&mut line);
                    line.push(b'\n');
                }
                conn.writer.write_all(&line)?;
            }
            conn.writer.flush()?;
            Ok(stamps)
        })();
        let stamps = match wrote {
            Ok(stamps) => stamps,
            Err(e) if is_transient(&e) => {
                // Nothing in this window is resolved; the server discards
                // any truncated trailing line, so a clean re-send of the
                // whole window is safe.
                self.conn = None;
                self.note_io(window.len() as u64);
                self.note_retries(window.len() as u64);
                requeue_front(todo, window.iter().copied());
                return Ok(WindowOutcome::Stalled(e.to_string()));
            }
            Err(e) => return Err(ClientError::Io(e)),
        };

        let mut resolved = false;
        let mut deferred: Vec<usize> = Vec::new();
        let mut stalled: Option<String> = None;
        let mut scratch = ProtoScratch::new();
        let mut buf = String::new();
        'frames: for frame in &frames {
            if frame.batched {
                let conn = self.conn.as_mut().expect("frame holds the connection");
                buf.clear();
                let read = match conn.reader.read_line(&mut buf) {
                    Ok(0) => Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                };
                if let Err(e) = read {
                    if !is_transient(&e) {
                        return Err(ClientError::Io(e));
                    }
                    // The whole frame (and everything after it) is gone;
                    // re-send the lot (idempotent, see module docs).
                    self.conn = None;
                    let rest: Vec<usize> = window[frame.start..].to_vec();
                    self.note_io(rest.len() as u64);
                    self.note_retries(rest.len() as u64);
                    requeue_front(todo, deferred.iter().copied().chain(rest));
                    stalled = Some(e.to_string());
                    break 'frames;
                }
                // A count mismatch means the reply stream is out of step
                // with what we sent: unrecoverable, so fail loudly rather
                // than mis-attributing responses.
                match parse_batchr_header(buf.trim_end(), &mut scratch) {
                    Ok(Some(n)) if n == frame.len => {}
                    Ok(_) => {
                        return Err(ClientError::Proto(ProtoError::BadResponse {
                            line: buf.trim_end().chars().take(80).collect(),
                        }))
                    }
                    Err(e) => return Err(ClientError::Proto(e)),
                }
            }
            for (k, &idx) in window[frame.start..frame.start + frame.len]
                .iter()
                .enumerate()
            {
                let pos = frame.start + k;
                let conn = self.conn.as_mut().expect("window holds the connection");
                buf.clear();
                let read = match conn.reader.read_line(&mut buf) {
                    Ok(0) => Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                };
                if let Err(e) = read {
                    if !is_transient(&e) {
                        return Err(ClientError::Io(e));
                    }
                    // This and all later responses of the window are gone;
                    // re-send the lot (idempotent, see module docs).
                    self.conn = None;
                    let rest: Vec<usize> = window[pos..].to_vec();
                    self.note_io(rest.len() as u64);
                    self.note_retries(rest.len() as u64);
                    requeue_front(todo, deferred.iter().copied().chain(rest));
                    stalled = Some(e.to_string());
                    break 'frames;
                }
                let resp = Response::parse(buf.trim_end()).map_err(ClientError::Proto)?;
                match self.classify(resp) {
                    Attempt::Done(resp) => {
                        on_resp(idx, &resp, stamps[pos].elapsed().as_secs_f64() * 1e6);
                        resolved = true;
                    }
                    Attempt::Busy => {
                        self.note_busy(1);
                        self.note_retries(1);
                        deferred.push(idx);
                    }
                    Attempt::Transient(what) => {
                        // classify() dropped the connection (server closed
                        // it); later responses cannot arrive.
                        let rest: Vec<usize> = window[pos + 1..].to_vec();
                        self.note_io(1 + rest.len() as u64);
                        self.note_retries(1 + rest.len() as u64);
                        deferred.push(idx);
                        requeue_front(todo, deferred.iter().copied().chain(rest));
                        stalled = Some(what);
                        break 'frames;
                    }
                }
            }
        }
        if let Some(what) = stalled {
            return Ok(if resolved {
                WindowOutcome::Progress
            } else {
                WindowOutcome::Stalled(what)
            });
        }
        requeue_front(todo, deferred.iter().copied());
        Ok(if resolved || window.is_empty() {
            WindowOutcome::Progress
        } else {
            WindowOutcome::Stalled("every request in the window was deferred".to_string())
        })
    }

    /// Writes `n` requests as one frame — a `BATCH` wrapper when more
    /// than one — and flushes, reading nothing back. The cluster
    /// pipeline keeps several frames in flight per member and drains
    /// them later with [`Client::read_frame_replies`]. A transient
    /// transport failure drops the connection and comes back as
    /// [`FrameIo::Lost`]; nothing of the frame counts as delivered.
    pub(crate) fn write_frame<'a, I>(&mut self, n: usize, reqs: I) -> Result<FrameIo, ClientError>
    where
        I: IntoIterator<Item = &'a Request>,
    {
        if let Err(e) = self.ensure_conn() {
            return if is_transient(&e) {
                self.conn = None;
                Ok(FrameIo::Lost)
            } else {
                Err(ClientError::Io(e))
            };
        }
        let conn = self.conn.as_mut().expect("ensured above");
        let io = (|| -> std::io::Result<()> {
            let mut line = Vec::with_capacity(n * 48);
            if n > 1 {
                line.extend_from_slice(b"BATCH ");
                push_u64(&mut line, n as u64);
                line.push(b'\n');
            }
            for req in reqs {
                req.encode_into(&mut line);
                line.push(b'\n');
            }
            conn.writer.write_all(&line)?;
            conn.writer.flush()
        })();
        match io {
            Ok(()) => Ok(FrameIo::Done),
            Err(e) if is_transient(&e) => {
                self.conn = None;
                Ok(FrameIo::Lost)
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Drains one frame's replies — a `BATCHR` header when `n > 1`, then
    /// `n` response lines — appending the raw responses to `out`. No
    /// retry classification happens here; the pipelined caller owns
    /// busy/redirect/failover handling. On a transient failure (or a
    /// server-side `ERR timeout`/`conn-limit` close) the partial replies
    /// are rolled back so the caller can treat the whole frame as
    /// unacknowledged and replay it; replays of already-applied samples
    /// are stale no-ops server-side.
    pub(crate) fn read_frame_replies(
        &mut self,
        n: usize,
        out: &mut Vec<Response>,
    ) -> Result<FrameIo, ClientError> {
        let from = out.len();
        let mut buf = String::new();
        let mut scratch = ProtoScratch::new();
        let total = if n > 1 { n + 1 } else { n };
        for i in 0..total {
            buf.clear();
            let read = match self.conn.as_mut() {
                Some(conn) => match conn.reader.read_line(&mut buf) {
                    Ok(0) => Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                },
                None => {
                    out.truncate(from);
                    return Ok(FrameIo::Lost);
                }
            };
            if let Err(e) = read {
                if !is_transient(&e) {
                    return Err(ClientError::Io(e));
                }
                self.conn = None;
                out.truncate(from);
                return Ok(FrameIo::Lost);
            }
            if i == 0 && n > 1 {
                // The header count always matches `n`: members write it
                // up front from the frame header and answer one line per
                // sub-request even when rejecting. A mismatch means the
                // reply stream is out of step — unrecoverable.
                match parse_batchr_header(buf.trim_end(), &mut scratch) {
                    Ok(Some(k)) if k == n => continue,
                    Ok(_) => {
                        return Err(ClientError::Proto(ProtoError::BadResponse {
                            line: buf.trim_end().chars().take(80).collect(),
                        }))
                    }
                    Err(e) => return Err(ClientError::Proto(e)),
                }
            }
            let resp = Response::parse(buf.trim_end()).map_err(ClientError::Proto)?;
            if matches!(
                &resp,
                Response::Err {
                    code: ErrCode::Timeout | ErrCode::ConnLimit,
                    ..
                }
            ) {
                // The server is closing this connection; later frames
                // cannot be answered. Same ladder as `classify`.
                self.conn = None;
                out.truncate(from);
                return Ok(FrameIo::Lost);
            }
            out.push(resp);
        }
        Ok(FrameIo::Done)
    }
}

/// Outcome of one low-level frame I/O step on the pipelined cluster
/// path.
#[derive(Debug)]
pub(crate) enum FrameIo {
    /// The step completed.
    Done,
    /// A transient failure dropped the connection; the frame involved
    /// is wholly unacknowledged.
    Lost,
}

/// One contiguous run of window positions written as a unit.
struct Frame {
    /// First window position of the run.
    start: usize,
    /// Number of positions in the run.
    len: usize,
    /// Whether the run is wrapped in a `BATCH` frame.
    batched: bool,
}

/// True for the data-plane verbs the protocol allows inside `BATCH`.
fn is_batchable(req: &Request) -> bool {
    matches!(
        req,
        Request::Observe { .. } | Request::Predict { .. } | Request::Admit { .. }
    )
}

/// Splits window positions into frames: maximal runs of consecutive
/// batchable requests, chunked to at most `batch` sub-requests each.
/// Singleton runs skip the frame overhead and go bare.
fn plan_frames(reqs: &[Request], window: &[usize], batch: usize) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut pos = 0;
    while pos < window.len() {
        if batch > 1 && is_batchable(&reqs[window[pos]]) {
            let mut end = pos + 1;
            while end < window.len() && end - pos < batch && is_batchable(&reqs[window[end]]) {
                end += 1;
            }
            frames.push(Frame {
                start: pos,
                len: end - pos,
                batched: end - pos > 1,
            });
            pos = end;
        } else {
            frames.push(Frame {
                start: pos,
                len: 1,
                batched: false,
            });
            pos += 1;
        }
    }
    frames
}

/// How one pipelined window ended.
enum WindowOutcome {
    /// At least one request resolved; the strike counter resets.
    Progress,
    /// Zero requests resolved; one strike.
    Stalled(String),
}

/// Pushes `indices` onto the front of `todo`, preserving their order.
fn requeue_front(todo: &mut VecDeque<usize>, indices: impl DoubleEndedIterator<Item = usize>) {
    for idx in indices.rev() {
        todo.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::config::ServeConfig;
    use oc_serve::server::Server;
    use oc_trace::ids::{CellId, JobId, TaskId};
    use oc_trace::MachineId;

    fn cell() -> CellId {
        CellId::new("t")
    }

    fn task(i: u32) -> TaskId {
        TaskId::new(JobId(1), i)
    }

    #[test]
    fn typed_round_trip() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let mut c = Client::connect(server.addr(), ClientConfig::default()).unwrap();
        for t in 0..30u64 {
            c.observe(&cell(), MachineId(0), task(0), 0.2, 0.5, t)
                .unwrap();
        }
        let peak = c.predict(&cell(), MachineId(0)).unwrap();
        assert!(peak > 0.0 && peak <= 0.5);
        let (admit, projected) = c.admit(&cell(), MachineId(0), 0.1).unwrap();
        assert!(projected >= peak);
        assert!(admit || projected > 1.0);
        let stats = c.stats().unwrap();
        assert_eq!(stats.observes, 30);
        assert_eq!(c.metrics().retries, 0);
        let m = c.server_metrics().unwrap();
        assert_eq!(m.get("serve.observes"), Some(&30.0));
        assert_eq!(m.get("serve.machines"), Some(&1.0));
        assert!(m.contains_key("serve.latency_us.p99"));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn vector_round_trip_reports_both_lanes() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let mut c = Client::connect(server.addr(), ClientConfig::default()).unwrap();
        // Memory hog, CPU mouse: scalar PREDICT would look harmless.
        for t in 0..30u64 {
            c.observe_vec(&cell(), MachineId(0), task(0), 0.1, 0.5, 0.8, 0.9, t)
                .unwrap();
        }
        let (cpu, mem) = c.predict_vec(&cell(), MachineId(0)).unwrap();
        assert!(cpu > 0.0 && cpu <= 0.5, "cpu {cpu}");
        assert!(mem > 0.0 && mem <= 0.9, "mem {mem}");
        assert!(mem > cpu, "memory lane must dominate: cpu {cpu} mem {mem}");
        // The scalar form still answers on the same machine (CPU lane).
        let peak = c.predict(&cell(), MachineId(0)).unwrap();
        assert!(peak > 0.0 && peak <= 0.5, "scalar peak {peak}");
        drop(c);
        server.shutdown();
    }

    #[test]
    fn reconnects_after_a_server_side_close() {
        // Tiny idle timeout: the server will close our connection; the
        // next request must transparently reconnect.
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_idle_timeout(Duration::from_millis(80)),
        )
        .unwrap();
        let reconnects_before = oc_telemetry::global_metrics()
            .counter("client.reconnects")
            .get();
        let mut c = Client::connect(server.addr(), ClientConfig::default()).unwrap();
        c.observe(&cell(), MachineId(0), task(0), 0.2, 0.5, 1)
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // The server has closed the idle connection by now.
        c.observe(&cell(), MachineId(0), task(0), 0.3, 0.5, 2)
            .unwrap();
        assert!(c.metrics().reconnects >= 1, "{:?}", c.metrics());
        // The process-wide registry moves with the per-client counters
        // (>=: other tests in this process may reconnect concurrently).
        let reconnects_after = oc_telemetry::global_metrics()
            .counter("client.reconnects")
            .get();
        assert!(reconnects_after > reconnects_before);
        let stats = c.stats().unwrap();
        assert_eq!(stats.observes, 2);
        assert_eq!(stats.timeouts, 1);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn retries_past_the_connection_cap() {
        let server = Server::start(
            ServeConfig::default()
                .with_shards(1)
                .with_max_connections(1),
        )
        .unwrap();
        // Occupy the only slot…
        let mut holder = Client::connect(server.addr(), ClientConfig::default()).unwrap();
        holder
            .observe(&cell(), MachineId(0), task(0), 0.2, 0.5, 1)
            .unwrap();
        // …then let a second client fight for it while the holder leaves.
        let addr = server.addr();
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            drop(holder);
        });
        let mut c = Client::connect(
            addr,
            ClientConfig::default().with_retry(RetryPolicy {
                max_attempts: 20,
                base: Duration::from_millis(20),
                cap: Duration::from_millis(100),
            }),
        )
        .unwrap();
        let stats = c.stats().unwrap();
        assert!(stats.conn_rejects >= 1, "cap never hit: {stats:?}");
        release.join().unwrap();
        drop(c);
        server.shutdown();
    }

    #[test]
    fn chaos_does_not_lose_acknowledged_samples() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let plan = FaultPlan::new(42, 0.08).with_max_delay(Duration::from_micros(200));
        let mut c = Client::connect(
            server.addr(),
            ClientConfig::default().with_seed(7).with_faults(plan),
        )
        .unwrap();
        let mut acked = 0u64;
        for t in 0..200u64 {
            c.observe(
                &cell(),
                MachineId(0),
                task(0),
                0.2 + (t as f64) * 1e-3,
                0.9,
                t,
            )
            .unwrap();
            acked += 1;
        }
        assert!(c.faults_injected() > 0, "fault plan never fired");
        drop(c);
        let stats = server.shutdown();
        // Idempotent retries may re-apply (observes > acked) or go stale,
        // but an acknowledged sample can never vanish without a counter.
        assert!(
            stats.observes + stats.stale >= acked,
            "lost acked samples: {stats:?} vs {acked} acked"
        );
    }

    #[test]
    fn pipeline_resolves_every_request_in_order() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let mut c = Client::connect(
            server.addr(),
            ClientConfig::default().with_pipeline_window(16),
        )
        .unwrap();
        let mut reqs: Vec<Request> = Vec::new();
        for t in 0..100u64 {
            reqs.push(Request::Observe {
                cell: cell(),
                machine: MachineId(3),
                task: task(0),
                usage: 0.1,
                limit: 0.5,
                mem: None,
                tick: t,
            });
        }
        reqs.push(Request::Predict {
            cell: cell(),
            machine: MachineId(3),
            vector: false,
        });
        let mut seen: Vec<usize> = Vec::new();
        let mut preds = 0;
        c.pipeline_with(&reqs, |idx, resp, lat_us| {
            seen.push(idx);
            assert!(lat_us >= 0.0);
            if let Response::Pred { peak, .. } = resp {
                assert!(*peak > 0.0);
                preds += 1;
            }
        })
        .unwrap();
        assert_eq!(preds, 1);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..reqs.len()).collect::<Vec<_>>());
        assert_eq!(
            seen, sorted,
            "no retries, so resolution order == submission order"
        );
        drop(c);
        let stats = server.shutdown();
        assert_eq!(stats.observes, 100);
    }

    #[test]
    fn pipeline_survives_chaos_without_losing_acks() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        // Buffered windows make few, large socket ops, so the per-op rate
        // is high to get a meaningful fault count over one small replay.
        let plan = FaultPlan::new(1234, 0.25).with_max_delay(Duration::from_micros(200));
        let mut c = Client::connect(
            server.addr(),
            ClientConfig::default()
                .with_seed(9)
                .with_faults(plan)
                .with_pipeline_window(32)
                .with_retry(RetryPolicy {
                    max_attempts: 12,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                }),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..400u64)
            .map(|t| Request::Observe {
                cell: cell(),
                machine: MachineId(0),
                task: task((t % 3) as u32),
                usage: 0.1,
                limit: 0.5,
                mem: None,
                tick: t / 3,
            })
            .collect();
        let mut acked = 0u64;
        c.pipeline_with(&reqs, |_, resp, _| {
            if matches!(resp, Response::Ok) {
                acked += 1;
            }
        })
        .unwrap();
        assert_eq!(acked, 400, "every request must eventually resolve OK");
        assert!(c.faults_injected() > 0);
        drop(c);
        let stats = server.shutdown();
        assert!(
            stats.observes + stats.stale >= acked,
            "lost acked samples: {stats:?}"
        );
    }

    #[test]
    fn config_validation() {
        assert!(ClientConfig::default().validate().is_ok());
        let mut zero_attempts = ClientConfig::default();
        zero_attempts.retry.max_attempts = 0;
        assert!(zero_attempts.validate().is_err());
        assert!(ClientConfig::default()
            .with_pipeline_window(0)
            .validate()
            .is_err());
        assert!(ClientConfig::default()
            .with_faults(FaultPlan::new(0, 7.0))
            .validate()
            .is_err());
        assert!(ClientConfig::default().with_batch(0).validate().is_err());
        assert!(ClientConfig::default()
            .with_batch(MAX_BATCH + 1)
            .validate()
            .is_err());
        assert!(ClientConfig::default()
            .with_batch(MAX_BATCH)
            .validate()
            .is_ok());
    }

    #[test]
    fn batched_pipeline_matches_unbatched() {
        let mk_reqs = || -> Vec<Request> {
            let mut reqs: Vec<Request> = Vec::new();
            for t in 0..100u64 {
                reqs.push(Request::Observe {
                    cell: cell(),
                    machine: MachineId(t as u32 % 4),
                    task: task(0),
                    usage: 0.1 + (t as f64) * 0.003,
                    limit: 0.5,
                    mem: None,
                    tick: t / 4,
                });
                if t % 10 == 9 {
                    reqs.push(Request::Predict {
                        cell: cell(),
                        machine: MachineId(t as u32 % 4),
                        vector: false,
                    });
                }
            }
            reqs
        };
        let run = |batch: usize| -> (Vec<u64>, StatsSnapshot) {
            let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
            let mut c = Client::connect(
                server.addr(),
                ClientConfig::default()
                    .with_pipeline_window(32)
                    .with_batch(batch),
            )
            .unwrap();
            let reqs = mk_reqs();
            let mut peaks: Vec<u64> = Vec::new();
            c.pipeline_with(&reqs, |_, resp, _| {
                if let Response::Pred { peak, .. } = resp {
                    peaks.push(peak.to_bits());
                }
            })
            .unwrap();
            drop(c);
            (peaks, server.shutdown())
        };
        let (plain_peaks, plain_stats) = run(1);
        let (batched_peaks, batched_stats) = run(8);
        assert_eq!(plain_peaks.len(), 10);
        assert_eq!(
            plain_peaks, batched_peaks,
            "batching must not change prediction bits"
        );
        assert_eq!(plain_stats.observes, batched_stats.observes);
        assert_eq!(plain_stats.predicts, batched_stats.predicts);
    }

    #[test]
    fn batched_pipeline_survives_chaos() {
        let server = Server::start(ServeConfig::default().with_shards(2)).unwrap();
        let plan = FaultPlan::new(4321, 0.2).with_max_delay(Duration::from_micros(200));
        let mut c = Client::connect(
            server.addr(),
            ClientConfig::default()
                .with_seed(11)
                .with_faults(plan)
                .with_pipeline_window(32)
                .with_batch(8)
                .with_retry(RetryPolicy {
                    max_attempts: 12,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(20),
                }),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..400u64)
            .map(|t| Request::Observe {
                cell: cell(),
                machine: MachineId(t as u32 % 8),
                task: task(0),
                usage: 0.2,
                limit: 0.5,
                mem: None,
                tick: t / 3,
            })
            .collect();
        let mut acked = 0u64;
        c.pipeline_with(&reqs, |_, resp, _| {
            if matches!(resp, Response::Ok) {
                acked += 1;
            }
        })
        .unwrap();
        assert_eq!(acked, 400, "every request must eventually resolve OK");
        assert!(c.faults_injected() > 0);
        drop(c);
        let stats = server.shutdown();
        assert!(
            stats.observes + stats.stale >= acked,
            "lost acked samples: {stats:?}"
        );
    }
}
