//! [`ClusterClient`] — one client over an N-process ring.
//!
//! A `ClusterClient` holds one [`Client`] per member and routes every
//! data-plane call by the key's [`oc_serve::shard::key_hash`] through a
//! shared [`HashRing`]: `OBSERVE`/`PREDICT`/`ADMIT` go to the live
//! owner, and (with mirroring on) every `OBSERVE` is also queued for
//! the key's replica — the ring successor, which is exactly the node
//! that takes over if the owner dies. Because both copies see the same
//! ordered per-machine stream, the replica's state is bit-identical and
//! so are its predictions; a SIGKILLed owner therefore loses nothing an
//! acknowledged sample ever carried.
//!
//! Failure handling:
//!
//! * `ERR not-mine` (a member enforcing its [`oc_serve::config::OwnershipMap`])
//!   bumps `cluster.redirects` and the call retries on the replica,
//!   then on any other live member.
//! * A terminal transport error marks the member dead, replays its
//!   still-queued mirrors to the takeover targets
//!   (`cluster.replica_replays`), and re-routes the call.
//!
//! One degradation is deliberate: members classify keys against the
//! *all-alive* ring (a process cannot observe peer deaths), so after a
//! failure the new replica of a failed-over key would answer
//! `not-mine` to mirrors. Mirrors are therefore only sent to targets
//! that were owner or replica under the full ring — redundancy for the
//! failed-over range is restored by replacing the member and adopting a
//! generation-bumped [`RingSpec`], not by re-replication in place. See
//! `docs/OPERATIONS.md` §5.6.

use crate::client::{Client, ClientConfig};
use crate::error::ClientError;
use oc_cluster::{HashRing, RingSpec};
use oc_serve::proto::{ErrCode, Request, Response, StatsSnapshot};
use oc_serve::shard::key_hash;
use oc_telemetry::Counter;
use oc_trace::ids::{CellId, MachineId, TaskId};
use std::net::SocketAddr;
use std::sync::Arc;

/// Mirrors queued per replica before an automatic flush.
const MIRROR_FLUSH_AT: usize = 64;

/// Shape of a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Per-member connection config; the seed is salted by member index
    /// so backoff jitter never locksteps across the fleet.
    pub client: ClientConfig,
    /// Mirror every `OBSERVE` to the key's replica. Costs one extra
    /// write per sample; buys SIGKILL survival.
    pub mirror: bool,
}

impl Default for ClusterClientConfig {
    /// Mirroring on — the cluster's reason to exist.
    fn default() -> ClusterClientConfig {
        ClusterClientConfig {
            client: ClientConfig::default(),
            mirror: true,
        }
    }
}

/// What a [`ClusterClient`] did across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// `ERR not-mine` responses that forced a re-route.
    pub redirects: u64,
    /// Queued mirrors force-flushed by a member death, delivered to
    /// their targets (including the takeover target) before any read
    /// could observe a gap.
    pub replica_replays: u64,
    /// Queued mirrors dropped because their *target* died (the owner
    /// still holds the data; redundancy is degraded, not lost).
    pub mirror_drops: u64,
    /// Members marked dead after a terminal transport error.
    pub failovers: u64,
}

/// Handles into the process-wide registry mirroring [`ClusterMetrics`];
/// names documented in `docs/OPERATIONS.md`.
#[derive(Debug)]
struct GlobalCounters {
    redirects: Arc<Counter>,
    replica_replays: Arc<Counter>,
}

impl GlobalCounters {
    fn new() -> GlobalCounters {
        let m = oc_telemetry::global_metrics();
        GlobalCounters {
            redirects: m.counter("cluster.redirects"),
            replica_replays: m.counter("cluster.replica_replays"),
        }
    }
}

/// One logical client over a multi-process ring.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    addrs: Vec<SocketAddr>,
    alive: Vec<bool>,
    clients: Vec<Option<Client>>,
    /// Mirrors not yet written, per target member.
    pending: Vec<Vec<Request>>,
    cfg: ClusterClientConfig,
    metrics: ClusterMetrics,
    global: GlobalCounters,
}

impl ClusterClient {
    /// Builds a client over the ring `spec` describes, with one address
    /// per member. Connections are opened lazily, on first use.
    ///
    /// # Errors
    ///
    /// [`ClientError::Config`] when `addrs` does not match `spec.nodes`
    /// or the per-member config is invalid.
    pub fn connect(
        spec: RingSpec,
        addrs: &[SocketAddr],
        cfg: ClusterClientConfig,
    ) -> Result<ClusterClient, ClientError> {
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        cfg.client.validate()?;
        Ok(ClusterClient {
            ring: spec.build(),
            addrs: addrs.to_vec(),
            alive: vec![true; spec.nodes],
            clients: (0..spec.nodes).map(|_| None).collect(),
            pending: vec![Vec::new(); spec.nodes],
            cfg,
            metrics: ClusterMetrics::default(),
            global: GlobalCounters::new(),
        })
    }

    /// The liveness mask this client has inferred, by ring index.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// What this client did so far.
    pub fn metrics(&self) -> ClusterMetrics {
        self.metrics
    }

    /// Switches to a new membership (e.g. after a retired member was
    /// replaced under a bumped generation). Pending mirrors are flushed
    /// under the *old* ring first; all members start presumed alive.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterClient::connect`]-style validation.
    pub fn adopt(&mut self, spec: RingSpec, addrs: &[SocketAddr]) -> Result<(), ClientError> {
        self.flush_mirrors()?;
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        self.ring = spec.build();
        self.addrs = addrs.to_vec();
        self.alive = vec![true; spec.nodes];
        self.clients = (0..spec.nodes).map(|_| None).collect();
        self.pending = vec![Vec::new(); spec.nodes];
        Ok(())
    }

    /// The lazily-opened client for member `index`.
    fn client(&mut self, index: usize) -> Result<&mut Client, ClientError> {
        if self.clients[index].is_none() {
            let cfg = self
                .cfg
                .client
                .clone()
                .with_seed(self.cfg.client.seed.wrapping_add(index as u64 + 1));
            self.clients[index] = Some(Client::connect(self.addrs[index], cfg)?);
        }
        Ok(self.clients[index].as_mut().expect("just connected"))
    }

    /// Marks `index` dead after a terminal failure: drops its
    /// connection, abandons mirrors *targeted at* it, and replays every
    /// other queued mirror immediately — keys the dead member owned now
    /// resolve to their replica, and the replica's queue holds exactly
    /// the samples it has not yet seen.
    fn mark_dead(&mut self, index: usize) {
        if !self.alive[index] {
            return;
        }
        self.alive[index] = false;
        self.clients[index] = None;
        self.metrics.failovers += 1;
        let dropped = std::mem::take(&mut self.pending[index]);
        self.metrics.mirror_drops += dropped.len() as u64;
        let replayed: u64 = self.pending.iter().map(|q| q.len() as u64).sum();
        if replayed > 0 {
            self.metrics.replica_replays += replayed;
            self.global.replica_replays.add(replayed);
            // Flush failures cascade into further mark_dead calls;
            // recursion depth is bounded by membership.
            let _ = self.flush_mirrors();
        }
    }

    /// Writes every queued mirror to its (live) target. Called before
    /// reads so replicas are never behind acknowledged ingest, and on
    /// failover to complete the takeover target's stream.
    ///
    /// # Errors
    ///
    /// Only non-transport errors propagate; a member that fails
    /// mid-flush is marked dead (degrading redundancy, never losing
    /// owner-held data).
    pub fn flush_mirrors(&mut self) -> Result<(), ClientError> {
        for index in 0..self.pending.len() {
            if self.pending[index].is_empty() {
                continue;
            }
            if !self.alive[index] {
                let dropped = std::mem::take(&mut self.pending[index]);
                self.metrics.mirror_drops += dropped.len() as u64;
                continue;
            }
            let batch = std::mem::take(&mut self.pending[index]);
            let outcome = self
                .client(index)
                .and_then(|c| c.pipeline_with(&batch, |_, _, _| {}));
            if let Err(e) = outcome {
                match e {
                    ClientError::Io(_) | ClientError::Exhausted { .. } => {
                        self.metrics.mirror_drops += batch.len() as u64;
                        self.mark_dead(index);
                    }
                    other => return Err(other),
                }
            }
        }
        Ok(())
    }

    /// Queues a mirror of `req` for member `target`, flushing when the
    /// queue fills.
    fn queue_mirror(&mut self, target: usize, req: Request) -> Result<(), ClientError> {
        self.pending[target].push(req);
        if self.pending[target].len() >= MIRROR_FLUSH_AT {
            self.flush_mirrors()?;
        }
        Ok(())
    }

    /// Candidate members for a key, preference-ordered: live owner,
    /// live replica, then every other live member.
    fn candidates(&self, hash: u64) -> Vec<usize> {
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        let mut order = Vec::with_capacity(self.alive.len());
        order.extend(owner);
        order.extend(replica.filter(|r| Some(*r) != owner));
        for (i, &alive) in self.alive.iter().enumerate() {
            if alive && !order.contains(&i) {
                order.push(i);
            }
        }
        order
    }

    /// Sends `req` to the key's owner, falling over on `not-mine`
    /// redirects and member deaths.
    fn send_routed(&mut self, hash: u64, req: &Request) -> Result<Response, ClientError> {
        loop {
            let order = self.candidates(hash);
            if order.is_empty() {
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "no live ring member".to_string(),
                });
            }
            let mut redirected = false;
            for index in order {
                let outcome = self.client(index).and_then(|c| c.request(req));
                match outcome {
                    Ok(Response::Err {
                        code: ErrCode::NotMine,
                        ..
                    }) => {
                        self.metrics.redirects += 1;
                        self.global.redirects.inc();
                        redirected = true;
                    }
                    Ok(resp) => return Ok(resp),
                    Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                        self.mark_dead(index);
                        // Membership changed; recompute the order.
                        redirected = false;
                        break;
                    }
                    Err(other) => return Err(other),
                }
            }
            if redirected {
                // Every live member redirected: the ring disagrees with
                // the servers' ownership maps (stale spec).
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "every live member answered not-mine; re-resolve the ring".to_string(),
                });
            }
        }
    }

    /// Streams a usage sample to the key's owner and (with mirroring
    /// on) queues it for the replica.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion and non-`OK` responses.
    pub fn observe(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        task: TaskId,
        usage: f64,
        limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            tick,
        };
        match self.send_routed(hash, &req)? {
            Response::Ok => {}
            other => return Err(ClientError::unexpected("OK", &other)),
        }
        if self.cfg.mirror {
            if let Some(target) = self.mirror_target(hash) {
                self.queue_mirror(target, req)?;
            }
        }
        Ok(())
    }

    /// Where a mirror of this key may go: the current replica, but only
    /// if it held a role under the full ring (members enforce all-alive
    /// ownership; anything else would bounce with `not-mine`).
    fn mirror_target(&self, hash: u64) -> Option<usize> {
        let all = vec![true; self.alive.len()];
        let (o_all, r_all) = self.ring.routes(hash, &all);
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        replica
            .filter(|r| Some(*r) == o_all || Some(*r) == r_all)
            .filter(|r| Some(*r) != owner)
    }

    /// Fetches the predicted peak for one machine from its owner.
    /// Queued mirrors are flushed first so a failover between this call
    /// and the ingest that preceded it cannot lose acknowledged state.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`PRED` response becomes
    /// [`ClientError::Server`].
    pub fn predict(&mut self, cell: &CellId, machine: MachineId) -> Result<f64, ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Predict {
            cell: cell.clone(),
            machine,
        };
        match self.send_routed(hash, &req)? {
            Response::Pred { peak } => Ok(peak),
            other => Err(ClientError::unexpected("PRED", &other)),
        }
    }

    /// Runs an admission check against the machine's owner.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`ADMITTED` response becomes
    /// [`ClientError::Server`].
    pub fn admit(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        limit: f64,
    ) -> Result<(bool, f64), ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Admit {
            cell: cell.clone(),
            machine,
            limit,
        };
        match self.send_routed(hash, &req)? {
            Response::Admitted { admit, projected } => Ok((admit, projected)),
            other => Err(ClientError::unexpected("ADMITTED", &other)),
        }
    }

    /// Cluster-wide `STATS`: every live member's snapshot folded through
    /// [`StatsSnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Propagates per-member request failures (a member that dies here
    /// is marked dead and skipped).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.flush_mirrors()?;
        let mut merged = StatsSnapshot::default();
        for index in 0..self.alive.len() {
            if !self.alive[index] {
                continue;
            }
            match self.client(index).and_then(|c| c.stats()) {
                Ok(s) => merged.merge(&s),
                Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                    self.mark_dead(index);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::config::ServeConfig;
    use oc_serve::server::Server;
    use oc_trace::ids::JobId;

    /// An in-process 3-member ring (cargo's test harness owns `main`,
    /// so child processes are out; ownership maps make in-process
    /// servers behave exactly like cluster members).
    fn ring_servers(nodes: usize) -> (RingSpec, Vec<Server>, Vec<SocketAddr>) {
        let spec = RingSpec::new(nodes);
        let ring = spec.build();
        let servers: Vec<Server> = (0..nodes)
            .map(|i| {
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(ring.ownership_for(i));
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (spec, servers, addrs)
    }

    fn fleet_of(n: u32) -> (CellId, Vec<MachineId>) {
        (CellId::new("cc"), (0..n).map(MachineId).collect())
    }

    #[test]
    fn routes_and_mirrors_across_members() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(40);
        let task = TaskId::new(JobId(1), 0);
        for &m in &machines {
            for t in 0..5 {
                cc.observe(&cell, m, task, 0.2 + 0.01 * f64::from(m.0), 0.5, t)
                    .expect("observe");
            }
        }
        cc.flush_mirrors().expect("flush");
        let stats = cc.stats().expect("stats");
        // Owner + replica each ingested every sample.
        assert_eq!(stats.observes, 40 * 5 * 2);
        assert_eq!(stats.machines, 80, "each machine lives on two members");
        assert_eq!(cc.metrics().redirects, 0, "routed sends never redirect");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn predictions_survive_member_shutdown() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(30);
        let task = TaskId::new(JobId(2), 0);
        for t in 0..8 {
            for &m in &machines {
                let usage = 0.05 + 0.4 * f64::from((m.0 * 13 + t * 7) % 89) / 89.0;
                cc.observe(&cell, m, task, usage, 0.5, u64::from(t))
                    .expect("observe");
            }
        }
        let before: Vec<f64> = machines
            .iter()
            .map(|&m| cc.predict(&cell, m).expect("predict"))
            .collect();

        // Stop member 0 abruptly; the client discovers the death on its
        // next send and fails over to the replicas.
        let mut servers = servers;
        servers.remove(0).shutdown();
        for (i, &m) in machines.iter().enumerate() {
            let after = cc.predict(&cell, m).expect("predict after death");
            assert_eq!(
                after.to_bits(),
                before[i].to_bits(),
                "machine {} diverged after failover",
                m.0
            );
        }
        assert!(!cc.alive()[0], "member 0 marked dead");
        assert!(cc.metrics().failovers >= 1);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn remote_member_redirects_to_owner() {
        let (spec, _servers, addrs) = ring_servers(3);
        let ring = spec.build();
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(3), 0);
        // Find a machine whose owner is NOT member 0, then force the
        // first attempt at member 0 by shrinking the ring view.
        let all = vec![true; 3];
        let m = (0..200)
            .map(MachineId)
            .find(|m| {
                let h = key_hash(&(cell.clone(), *m));
                let (o, r) = ring.routes(h, &all);
                o != Some(0) && r != Some(0)
            })
            .expect("some machine avoids member 0");
        // A direct client pointed at the remote member sees the redirect
        // error the ClusterClient would absorb.
        let mut direct = Client::connect(addrs[0], ClientConfig::default()).expect("connect");
        let resp = direct
            .request(&Request::Observe {
                cell: cell.clone(),
                machine: m,
                task,
                usage: 0.3,
                limit: 0.5,
                tick: 0,
            })
            .expect("request");
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::NotMine,
                    ..
                }
            ),
            "expected not-mine, got {resp:?}"
        );
        // The routed path lands it on the owner without surfacing an
        // error, and redirect-free.
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        cc.observe(&cell, m, task, 0.3, 0.5, 1).expect("routed");
        assert_eq!(cc.metrics().redirects, 0);
    }

    #[test]
    fn membership_mismatch_is_a_config_error() {
        let spec = RingSpec::new(3);
        let addrs: Vec<SocketAddr> = vec!["127.0.0.1:1".parse().expect("addr")];
        let err = ClusterClient::connect(spec, &addrs, ClusterClientConfig::default());
        assert!(matches!(err, Err(ClientError::Config(_))));
    }
}
