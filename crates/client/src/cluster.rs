//! [`ClusterClient`] — one client over an N-process ring.
//!
//! A `ClusterClient` holds one [`Client`] per member and routes every
//! data-plane call by the key's [`oc_serve::shard::key_hash`] through a
//! shared [`HashRing`]: `OBSERVE`/`PREDICT`/`ADMIT` go to the live
//! owner, and (with mirroring on) every `OBSERVE` is also queued for
//! the key's replica — the ring successor, which is exactly the node
//! that takes over if the owner dies. Because both copies see the same
//! ordered per-machine stream, the replica's state is bit-identical and
//! so are its predictions; a SIGKILLed owner therefore loses nothing an
//! acknowledged sample ever carried.
//!
//! Failure handling:
//!
//! * `ERR not-mine` (a member enforcing its [`oc_serve::config::OwnershipMap`])
//!   bumps `cluster.redirects` and the call retries on the replica,
//!   then on any other live member.
//! * A terminal transport error marks the member dead, replays its
//!   still-queued mirrors to the takeover targets
//!   (`cluster.replica_replays`), and re-routes the call.
//!
//! One degradation is deliberate: members classify keys against the
//! *all-alive* ring (a process cannot observe peer deaths), so after a
//! failure the new replica of a failed-over key would answer
//! `not-mine` to mirrors. Mirrors are therefore only sent to targets
//! that were owner or replica under the full ring — redundancy for the
//! failed-over range is restored by replacing the member and adopting a
//! generation-bumped [`RingSpec`], not by re-replication in place. See
//! `docs/OPERATIONS.md` §5.6.
//!
//! Adoption is automatic: after a member death, after an all-members
//! `not-mine` exhaustion, or when a member's `STATS` epoch word changes,
//! the client probes a live member with `RING` and adopts the described
//! membership when its *full 64-bit* generation is strictly newer and
//! the address list is complete (`cluster.adoptions`). The packed epoch
//! is only the change hint — generations 2^16 apart alias in it, so the
//! epoch is compared as a whole word and never decides which ring is
//! newer (PROTOCOL.md §7.3–7.4).

use crate::client::{Client, ClientConfig, FrameIo};
use crate::error::ClientError;
use crate::pipe::{Entry, EntryKind, MemberPipe};
use oc_cluster::{HashRing, RingSpec};
use oc_serve::proto::{ErrCode, Request, Response, StatsSnapshot};
use oc_serve::shard::key_hash;
use oc_telemetry::{Counter, Gauge};
use oc_trace::ids::{CellId, MachineId, TaskId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mirrors queued per replica before an automatic flush.
const MIRROR_FLUSH_AT: usize = 64;

/// Shape of a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Per-member connection config; the seed is salted by member index
    /// so backoff jitter never locksteps across the fleet.
    pub client: ClientConfig,
    /// Mirror every `OBSERVE` to the key's replica. Costs one extra
    /// write per sample; buys SIGKILL survival.
    pub mirror: bool,
    /// Frames the pipelined ingest path keeps in flight per member
    /// before blocking on acks ([`ClusterClient::observe_pipelined`]).
    /// Each frame carries up to `client.batch` lines.
    pub pipeline_frames: usize,
}

impl Default for ClusterClientConfig {
    /// Mirroring on — the cluster's reason to exist.
    fn default() -> ClusterClientConfig {
        ClusterClientConfig {
            client: ClientConfig::default(),
            mirror: true,
            pipeline_frames: 16,
        }
    }
}

/// What a [`ClusterClient`] did across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// `ERR not-mine` responses that forced a re-route.
    pub redirects: u64,
    /// Queued mirrors force-flushed by a member death, delivered to
    /// their targets (including the takeover target) before any read
    /// could observe a gap.
    pub replica_replays: u64,
    /// Queued mirrors dropped because their *target* died (the owner
    /// still holds the data; redundancy is degraded, not lost).
    pub mirror_drops: u64,
    /// Members marked dead after a terminal transport error.
    pub failovers: u64,
    /// Newer ring descriptions adopted from a member's `RING` answer
    /// (a replacement or resize the client discovered on its own).
    pub adoptions: u64,
    /// Frames written by the pipelined ingest path.
    pub frames: u64,
    /// Pipelined frames that coalesced more than one line — a
    /// same-member run batched into a single round trip.
    pub coalesced_runs: u64,
    /// Member failures (or transport drops) that displaced a non-empty
    /// unacknowledged pipelined tail for in-order replay.
    pub replayed_tails: u64,
}

/// Handles into the process-wide registry mirroring [`ClusterMetrics`];
/// names documented in `docs/OPERATIONS.md`.
#[derive(Debug)]
struct GlobalCounters {
    redirects: Arc<Counter>,
    replica_replays: Arc<Counter>,
    adoptions: Arc<Counter>,
    pipeline_frames: Arc<Counter>,
    pipeline_coalesced: Arc<Counter>,
    pipeline_replayed: Arc<Counter>,
    pipeline_inflight: Arc<Gauge>,
}

impl GlobalCounters {
    fn new() -> GlobalCounters {
        let m = oc_telemetry::global_metrics();
        GlobalCounters {
            redirects: m.counter("cluster.redirects"),
            replica_replays: m.counter("cluster.replica_replays"),
            adoptions: m.counter("cluster.adoptions"),
            pipeline_frames: m.counter("cluster.pipeline.frames"),
            pipeline_coalesced: m.counter("cluster.pipeline.coalesced_runs"),
            pipeline_replayed: m.counter("cluster.pipeline.replayed_tails"),
            pipeline_inflight: m.gauge("cluster.pipeline.inflight_frames"),
        }
    }
}

/// One logical client over a multi-process ring.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    addrs: Vec<SocketAddr>,
    alive: Vec<bool>,
    clients: Vec<Option<Client>>,
    /// Mirrors not yet written, per target member.
    pending: Vec<Vec<Request>>,
    /// Each member's epoch word from its last `STATS` answer (`0` =
    /// never seen). Compared as the *full word* — the low 16 bits alone
    /// alias generations 2^16 apart.
    last_epoch: Vec<u64>,
    /// Re-entrancy guard: a probe triggered while another probe's
    /// adoption is flushing must not recurse.
    probing: bool,
    /// Per-member pipelined ingest state (`pipes[i]` ↔ `addrs[i]`).
    pipes: Vec<MemberPipe>,
    /// Lines not yet on any pipe: fresh ingest is routed through here,
    /// and replayed tails / redirected lines come back through it.
    waiting: VecDeque<Entry>,
    /// Consecutive transport failures per member on the pipelined path
    /// (the pipe-level analogue of [`Client`]'s per-request retries);
    /// reset by any successful frame drain.
    pipe_strikes: Vec<u32>,
    /// Per-frame ack latencies `(latency_us, resolved_lines)` from the
    /// pipelined path, drained by the fleet driver.
    frame_lats: Vec<(f64, u64)>,
    /// Lines resolved `OK` / with a server error / rejected `BUSY` on
    /// the pipelined path (owner sends only; mirrors are not counted).
    pipelined_ok: u64,
    pipelined_err: u64,
    pipelined_busy: u64,
    /// Jitter source for pipelined backoff ([`Client`]'s is private and
    /// per-connection; the pipeline backs off per *member*).
    rng: SmallRng,
    cfg: ClusterClientConfig,
    metrics: ClusterMetrics,
    global: GlobalCounters,
}

impl ClusterClient {
    /// Builds a client over the ring `spec` describes, with one address
    /// per member. Connections are opened lazily, on first use.
    ///
    /// # Errors
    ///
    /// [`ClientError::Config`] when `addrs` does not match `spec.nodes`
    /// or the per-member config is invalid.
    pub fn connect(
        spec: RingSpec,
        addrs: &[SocketAddr],
        cfg: ClusterClientConfig,
    ) -> Result<ClusterClient, ClientError> {
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        cfg.client.validate()?;
        if cfg.pipeline_frames == 0 {
            return Err(ClientError::Config(
                "pipeline_frames must be at least 1".to_string(),
            ));
        }
        let rng = SmallRng::seed_from_u64(cfg.client.seed ^ 0x9E37_79B9_7F4A_7C15);
        Ok(ClusterClient {
            ring: spec.build(),
            addrs: addrs.to_vec(),
            alive: vec![true; spec.nodes],
            clients: (0..spec.nodes).map(|_| None).collect(),
            pending: vec![Vec::new(); spec.nodes],
            last_epoch: vec![0; spec.nodes],
            probing: false,
            pipes: (0..spec.nodes).map(|_| MemberPipe::default()).collect(),
            waiting: VecDeque::new(),
            pipe_strikes: vec![0; spec.nodes],
            frame_lats: Vec::new(),
            pipelined_ok: 0,
            pipelined_err: 0,
            pipelined_busy: 0,
            rng,
            cfg,
            metrics: ClusterMetrics::default(),
            global: GlobalCounters::new(),
        })
    }

    /// The liveness mask this client has inferred, by ring index.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// What this client did so far.
    pub fn metrics(&self) -> ClusterMetrics {
        self.metrics
    }

    /// Switches to a new membership (e.g. after a retired member was
    /// replaced under a bumped generation). Pipelined frames are settled
    /// and pending mirrors flushed under the *old* ring first (lines the
    /// pipeline had not yet sent survive the swap and re-route under the
    /// new ring); all members start presumed alive.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterClient::connect`]-style validation.
    pub fn adopt(&mut self, spec: RingSpec, addrs: &[SocketAddr]) -> Result<(), ClientError> {
        self.settle_pipes()?;
        let mut delivered = 0u64;
        self.flush_mirrors_inner(&mut delivered)?;
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        self.ring = spec.build();
        self.addrs = addrs.to_vec();
        self.alive = vec![true; spec.nodes];
        self.clients = (0..spec.nodes).map(|_| None).collect();
        self.pending = vec![Vec::new(); spec.nodes];
        self.last_epoch = vec![0; spec.nodes];
        self.pipes = (0..spec.nodes).map(|_| MemberPipe::default()).collect();
        self.pipe_strikes = vec![0; spec.nodes];
        // Unsent lines re-route from scratch: their redirect counts
        // referred to the old ring's candidate order.
        for e in &mut self.waiting {
            if let EntryKind::Send { tried } = &mut e.kind {
                *tried = 0;
            }
        }
        Ok(())
    }

    /// The lazily-opened client for member `index`.
    fn client(&mut self, index: usize) -> Result<&mut Client, ClientError> {
        if self.clients[index].is_none() {
            let cfg = self
                .cfg
                .client
                .clone()
                .with_seed(self.cfg.client.seed.wrapping_add(index as u64 + 1));
            self.clients[index] = Some(Client::connect(self.addrs[index], cfg)?);
        }
        Ok(self.clients[index].as_mut().expect("just connected"))
    }

    /// Marks `index` dead after a terminal failure: drops its
    /// connection, abandons mirrors *targeted at* it, and replays every
    /// other queued mirror immediately — keys the dead member owned now
    /// resolve to their replica, and the replica's queue holds exactly
    /// the samples it has not yet seen.
    fn mark_dead(&mut self, index: usize) {
        if !self.alive[index] {
            return;
        }
        self.displace_pipe(index);
        self.alive[index] = false;
        self.clients[index] = None;
        self.metrics.failovers += 1;
        let dropped = std::mem::take(&mut self.pending[index]);
        self.metrics.mirror_drops += dropped.len() as u64;
        let queued: u64 = self.pending.iter().map(|q| q.len() as u64).sum();
        if queued > 0 {
            // Only mirrors that actually reached their takeover target
            // count as replays; a flush that fails (a second death,
            // cascading into another mark_dead) records drops instead.
            let mut delivered = 0u64;
            let _ = self.flush_mirrors_inner(&mut delivered);
            self.metrics.replica_replays += delivered;
            self.global.replica_replays.add(delivered);
        }
        // The supervisor may already have replaced the member under a
        // bumped generation: ask a survivor before giving up on the slot.
        self.probe_ring();
    }

    /// Writes every queued mirror to its (live) target. Called before
    /// reads so replicas are never behind acknowledged ingest, and on
    /// failover to complete the takeover target's stream.
    ///
    /// # Errors
    ///
    /// Only non-transport errors propagate; a member that fails
    /// mid-flush is marked dead (degrading redundancy, never losing
    /// owner-held data).
    pub fn flush_mirrors(&mut self) -> Result<(), ClientError> {
        // Pipelined mirrors ride the pipes; settle those first.
        self.pump(true)?;
        let mut delivered = 0u64;
        self.flush_mirrors_inner(&mut delivered)
    }

    /// [`ClusterClient::flush_mirrors`], counting successfully written
    /// mirrors into `delivered` so failover accounting can distinguish
    /// replays that happened from replays that turned into drops.
    fn flush_mirrors_inner(&mut self, delivered: &mut u64) -> Result<(), ClientError> {
        for index in 0..self.pending.len() {
            // A cascading mark_dead can probe and adopt a new membership
            // mid-flush, swapping the queues out from under this loop.
            if index >= self.pending.len() {
                break;
            }
            if self.pending[index].is_empty() {
                continue;
            }
            if !self.alive[index] {
                let dropped = std::mem::take(&mut self.pending[index]);
                self.metrics.mirror_drops += dropped.len() as u64;
                continue;
            }
            let batch = std::mem::take(&mut self.pending[index]);
            let outcome = self
                .client(index)
                .and_then(|c| c.pipeline_with(&batch, |_, _, _| {}));
            match outcome {
                Ok(()) => *delivered += batch.len() as u64,
                Err(e) => match e {
                    ClientError::Io(_) | ClientError::Exhausted { .. } => {
                        self.metrics.mirror_drops += batch.len() as u64;
                        self.mark_dead(index);
                    }
                    other => return Err(other),
                },
            }
        }
        Ok(())
    }

    /// Asks a live member for the current `RING` description and adopts
    /// it when its full 64-bit generation is strictly newer than the
    /// local ring's **and** the address list is complete. Returns
    /// whether a new membership was adopted. Probe transport errors are
    /// swallowed — the next data-plane call rediscovers them.
    fn probe_ring(&mut self) -> bool {
        if self.probing {
            return false;
        }
        self.probing = true;
        let adopted = self.probe_ring_inner();
        self.probing = false;
        if adopted {
            self.metrics.adoptions += 1;
            self.global.adoptions.inc();
        }
        adopted
    }

    fn probe_ring_inner(&mut self) -> bool {
        for index in 0..self.alive.len() {
            if !self.alive[index] {
                continue;
            }
            // Pipelined replies still in flight would interleave with
            // the probe's answer on this connection; drain them first
            // (open frames are not on the wire and can wait).
            let mut broken = false;
            while self.alive[index] && self.pipes[index].inflight_len() > 0 {
                match self.drain_oldest(index) {
                    Ok(Drain::Ok { .. }) => {}
                    Ok(Drain::Lost) | Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken || !self.alive[index] {
                continue;
            }
            let resp = match self.client(index).and_then(|c| c.request(&Request::Ring)) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let Response::Ring {
                nodes,
                vnodes,
                seed,
                generation,
                addrs,
                ..
            } = resp
            else {
                // Standalone servers answer ERR; nothing to adopt.
                continue;
            };
            if generation <= self.ring.spec().generation {
                // The cluster is on our ring (or this member lags);
                // adopting would only repeat the current state.
                return false;
            }
            if nodes == 0 || vnodes == 0 || addrs.len() != nodes as usize {
                // A newer ring whose membership is not fully known yet;
                // maybe another member has the complete description.
                continue;
            }
            let parsed: Option<Vec<SocketAddr>> = addrs.iter().map(|a| a.parse().ok()).collect();
            let Some(parsed) = parsed else { continue };
            let spec = RingSpec {
                nodes: nodes as usize,
                vnodes: vnodes as usize,
                seed,
                generation,
            };
            return self.adopt(spec, &parsed).is_ok();
        }
        false
    }

    /// Queues a mirror of `req` for member `target`, flushing when the
    /// queue fills.
    fn queue_mirror(&mut self, target: usize, req: Request) -> Result<(), ClientError> {
        self.pending[target].push(req);
        if self.pending[target].len() >= MIRROR_FLUSH_AT {
            self.flush_mirrors()?;
        }
        Ok(())
    }

    /// Candidate members for a key, preference-ordered: live owner,
    /// live replica, then every other live member.
    fn candidates(&self, hash: u64) -> Vec<usize> {
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        let mut order = Vec::with_capacity(self.alive.len());
        order.extend(owner);
        order.extend(replica.filter(|r| Some(*r) != owner));
        for (i, &alive) in self.alive.iter().enumerate() {
            if alive && !order.contains(&i) {
                order.push(i);
            }
        }
        order
    }

    /// Sends `req` to the key's owner, falling over on `not-mine`
    /// redirects and member deaths.
    fn send_routed(&mut self, hash: u64, req: &Request) -> Result<Response, ClientError> {
        // Sync requests share connections with pipelined frames; settle
        // those first so the reply streams cannot interleave.
        self.pump(true)?;
        loop {
            let order = self.candidates(hash);
            if order.is_empty() {
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "no live ring member".to_string(),
                });
            }
            let mut redirected = false;
            for index in order {
                let outcome = self.client(index).and_then(|c| c.request(req));
                match outcome {
                    Ok(Response::Err {
                        code: ErrCode::NotMine,
                        ..
                    }) => {
                        self.metrics.redirects += 1;
                        self.global.redirects.inc();
                        redirected = true;
                    }
                    Ok(resp) => return Ok(resp),
                    Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                        self.mark_dead(index);
                        // Membership changed; recompute the order.
                        redirected = false;
                        break;
                    }
                    Err(other) => return Err(other),
                }
            }
            if redirected {
                // Every live member redirected: the ring disagrees with
                // the servers' ownership maps (stale spec). If the
                // members serve a newer generation, adopt it and retry;
                // a second full redirect round cannot adopt again (the
                // generation is no longer newer) and exhausts below.
                if self.probe_ring() {
                    continue;
                }
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "every live member answered not-mine; re-resolve the ring".to_string(),
                });
            }
        }
    }

    /// Queues a usage sample on the pipelined ingest path. The sample
    /// is routed to the key's live owner, framed together with its
    /// same-member neighbours (`BATCH`), and acknowledged
    /// asynchronously — up to [`ClusterClientConfig::pipeline_frames`]
    /// frames ride the wire per member, so member round trips overlap
    /// instead of serializing. Mirrors are queued at *ack* time onto
    /// the replica's pipe, keeping the sync path's invariant (queued
    /// mirrors = acknowledged-but-unreplicated samples) intact; a
    /// member death replays the unacknowledged tail in order through
    /// the same failover/adoption ladder as [`ClusterClient::observe`]
    /// (`cluster.pipeline.replayed_tails`). Per-machine sample order is
    /// preserved under every failure mode — see PROTOCOL.md §7.6.
    ///
    /// Call [`ClusterClient::flush_pipeline`] (any read does it too)
    /// before relying on the samples being applied.
    ///
    /// # Errors
    ///
    /// Routing exhaustion and non-transport protocol errors, exactly as
    /// [`ClusterClient::observe`]. Per-line server errors resolve into
    /// the pipeline tallies rather than failing the call.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_pipelined(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        task: TaskId,
        usage: f64,
        limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        if self.pending.iter().any(|q| !q.is_empty()) {
            // Sync-path mirrors must precede pipelined frames on the
            // shared connections.
            self.flush_mirrors()?;
        }
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            mem: None,
            tick,
        };
        self.waiting.push_back(Entry {
            hash,
            req,
            kind: EntryKind::Send { tried: 0 },
        });
        self.pump(false)
    }

    /// Settles the pipelined ingest path: every queued line is routed,
    /// written, and acknowledged (or displaced, replayed, and then
    /// acknowledged) before this returns.
    ///
    /// # Errors
    ///
    /// Routing exhaustion, a progress-free busy storm, and
    /// non-transport protocol errors.
    pub fn flush_pipeline(&mut self) -> Result<(), ClientError> {
        self.pump(true)
    }

    /// Drains the pipelined path's per-frame ack latencies as
    /// `(latency_us, resolved_lines)` pairs.
    pub(crate) fn take_frame_latencies(&mut self) -> Vec<(f64, u64)> {
        std::mem::take(&mut self.frame_lats)
    }

    /// Drains the pipelined path's `(ok, err, busy)` line tallies.
    /// Owner sends only — mirror acks are not counted.
    pub(crate) fn take_pipeline_tallies(&mut self) -> (u64, u64, u64) {
        let t = (self.pipelined_ok, self.pipelined_err, self.pipelined_busy);
        self.pipelined_ok = 0;
        self.pipelined_err = 0;
        self.pipelined_busy = 0;
        t
    }

    /// The pipelined engine: routes waiting lines onto member pipes,
    /// writes due frames, and drains replies until the backlog fits the
    /// per-member window (`flush`: until everything is acknowledged).
    /// Progress-free rounds — a busy storm — back off with the retry
    /// policy's schedule and eventually exhaust, like the sync
    /// pipeline's stall ladder.
    fn pump(&mut self, flush: bool) -> Result<(), ClientError> {
        let mut strikes = 0u32;
        loop {
            self.route_waiting()?;
            let s = self.settle_step(flush)?;
            if s.done && self.waiting.is_empty() {
                return Ok(());
            }
            if s.progress {
                strikes = 0;
                continue;
            }
            strikes += 1;
            if strikes >= self.cfg.client.retry.max_attempts {
                return Err(ClientError::Exhausted {
                    attempts: strikes,
                    last: "pipelined ingest made no progress".to_string(),
                });
            }
            self.backoff(strikes);
        }
    }

    /// Routes every waiting line onto its member pipe: the key's live
    /// owner, or the `tried`-th candidate for a line bounced by
    /// redirects. A full redirect round probes the ring (an adoption
    /// resets the count); a second full round exhausts, exactly like
    /// the sync path.
    fn route_waiting(&mut self) -> Result<(), ClientError> {
        while let Some(e) = self.waiting.pop_front() {
            match e.kind {
                EntryKind::Mirror => {
                    // Mirrors never route by key; one here means its
                    // pinned member died mid-displacement. The owner
                    // holds the data — degrade, don't re-route.
                    self.metrics.mirror_drops += 1;
                }
                EntryKind::Send { tried } => {
                    let order = self.candidates(e.hash);
                    if order.is_empty() {
                        self.waiting.push_front(e);
                        return Err(ClientError::Exhausted {
                            attempts: 0,
                            last: "no live ring member".to_string(),
                        });
                    }
                    if tried as usize >= order.len() {
                        self.waiting.push_front(Entry {
                            kind: EntryKind::Send { tried: 0 },
                            ..e
                        });
                        if self.probe_ring() {
                            // Adopted: the entry re-routes (tried reset
                            // by `adopt`) under the new ring.
                            continue;
                        }
                        return Err(ClientError::Exhausted {
                            attempts: 0,
                            last: "every live member answered not-mine; re-resolve the ring"
                                .to_string(),
                        });
                    }
                    self.pipes[order[tried as usize]].push(e);
                }
            }
        }
        Ok(())
    }

    /// One pass over every live pipe: seals and writes frames that are
    /// due (`flush` writes any non-empty open frame, otherwise only
    /// full ones), keeps at most `pipeline_frames` frames on each wire,
    /// and in flush mode drains every outstanding reply. Displaced
    /// lines land in the waiting queue for the caller's next round.
    fn settle_step(&mut self, flush: bool) -> Result<Settle, ClientError> {
        let batch = self.cfg.client.batch.max(1);
        let window = self.cfg.pipeline_frames;
        let mut progress = false;
        for index in 0..self.pipes.len() {
            if !self.alive[index] {
                continue;
            }
            loop {
                let open = self.pipes[index].open_len();
                if open == 0 || (!flush && open < batch) {
                    break;
                }
                let cut = self.pipes[index].seal_cut(batch);
                if self.pipes[index].wire_conflicts(cut) {
                    // Some machine in the cut is still on the wire:
                    // drain until it is released (the no-span rule).
                    match self.drain_oldest(index)? {
                        Drain::Ok { resolved, busy } => {
                            progress |= resolved > 0;
                            if busy {
                                break;
                            }
                        }
                        Drain::Lost => {
                            // A displacement changed routing state (retry
                            // or failover): that is forward motion, bounded
                            // by the per-member strike budget.
                            progress = true;
                            break;
                        }
                    }
                    continue;
                }
                let entries = self.pipes[index].take_open(cut);
                match self.write_entries(index, &entries)? {
                    true => {
                        let coalesced = entries.len() > 1;
                        self.pipes[index].sent(entries, Instant::now());
                        self.metrics.frames += 1;
                        self.global.pipeline_frames.inc();
                        self.global.pipeline_inflight.inc();
                        if coalesced {
                            self.metrics.coalesced_runs += 1;
                            self.global.pipeline_coalesced.inc();
                        }
                    }
                    false => {
                        self.pipe_transport_failure(index, entries);
                        progress = true;
                        break;
                    }
                }
                let mut stop = false;
                while self.alive[index] && self.pipes[index].inflight_len() > window {
                    match self.drain_oldest(index)? {
                        Drain::Ok { resolved, busy } => {
                            progress |= resolved > 0;
                            if busy {
                                stop = true;
                                break;
                            }
                        }
                        Drain::Lost => {
                            progress = true;
                            stop = true;
                            break;
                        }
                    }
                }
                if stop || !self.alive[index] {
                    break;
                }
            }
            while flush && self.alive[index] && self.pipes[index].inflight_len() > 0 {
                match self.drain_oldest(index)? {
                    Drain::Ok { resolved, .. } => progress |= resolved > 0,
                    Drain::Lost => progress = true,
                }
            }
        }
        let done = self.pipes.iter().enumerate().all(|(i, p)| {
            if !self.alive[i] || flush {
                p.is_empty()
            } else {
                p.open_len() < batch && p.inflight_len() <= window
            }
        });
        Ok(Settle { done, progress })
    }

    /// Settles every pipe — writes all open frames and drains every
    /// inflight reply — *without* routing the waiting queue, so it is
    /// safe inside [`ClusterClient::adopt`]: lines the pipeline never
    /// sent stay waiting and re-route under the ring that emerges.
    fn settle_pipes(&mut self) -> Result<(), ClientError> {
        let mut strikes = 0u32;
        loop {
            // Mirrors displaced by a busy tail re-enter their pipe's
            // open frame, so settling can take several passes.
            let s = self.settle_step(true)?;
            if s.done {
                return Ok(());
            }
            if s.progress {
                strikes = 0;
                continue;
            }
            strikes += 1;
            if strikes >= self.cfg.client.retry.max_attempts {
                return Err(ClientError::Exhausted {
                    attempts: strikes,
                    last: "pipelined frames would not settle".to_string(),
                });
            }
            self.backoff(strikes);
        }
    }

    /// Writes one sealed frame to member `index`. `Ok(true)` — on the
    /// wire; `Ok(false)` — the member's transport failed and the caller
    /// must displace the frame.
    fn write_entries(&mut self, index: usize, entries: &[Entry]) -> Result<bool, ClientError> {
        let outcome = self
            .client(index)
            .and_then(|c| c.write_frame(entries.len(), entries.iter().map(|e| &e.req)));
        match outcome {
            Ok(FrameIo::Done) => Ok(true),
            Ok(FrameIo::Lost) | Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                Ok(false)
            }
            Err(other) => Err(other),
        }
    }

    /// Drains member `index`'s oldest inflight frame and resolves each
    /// reply: `OK`/server errors acknowledge the line (queueing its
    /// mirror onto the replica's pipe), `not-mine` re-routes the line —
    /// and its still-open successors — through the waiting queue, and
    /// the first `BUSY` displaces the frame tail plus the whole open
    /// frame for an in-order replay (the server poisoned the rest of
    /// the frame, so applied observes are a prefix — PROTOCOL.md §2.1).
    fn drain_oldest(&mut self, index: usize) -> Result<Drain, ClientError> {
        let Some(n) = self.pipes[index].oldest_len() else {
            return Ok(Drain::Ok {
                resolved: 0,
                busy: false,
            });
        };
        let mut replies = Vec::with_capacity(n);
        match self
            .client(index)
            .and_then(|c| c.read_frame_replies(n, &mut replies))
        {
            Ok(FrameIo::Done) => {}
            Ok(FrameIo::Lost) | Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                self.pipe_transport_failure(index, Vec::new());
                return Ok(Drain::Lost);
            }
            Err(other) => return Err(other),
        }
        let frame = self.pipes[index]
            .complete_oldest()
            .expect("frame was inflight");
        self.global.pipeline_inflight.dec();
        self.pipe_strikes[index] = 0;
        let lat_us = frame.sent_at.elapsed().as_secs_f64() * 1e6;
        let mut resolved = 0u64;
        let mut busy_from: Option<usize> = None;
        let mut redirected: HashMap<u64, u32> = HashMap::new();
        let mut displaced: Vec<Entry> = Vec::new();
        for (i, (entry, resp)) in frame.entries.into_iter().zip(replies).enumerate() {
            if busy_from.is_some() || matches!(resp, Response::Busy) {
                if busy_from.is_none() {
                    busy_from = Some(i);
                }
                if matches!(resp, Response::Busy) {
                    self.pipelined_busy += 1;
                }
                displaced.push(entry);
                continue;
            }
            match resp {
                Response::Err {
                    code: ErrCode::NotMine,
                    ..
                } => match entry.kind {
                    EntryKind::Send { tried } => {
                        self.metrics.redirects += 1;
                        self.global.redirects.inc();
                        redirected.insert(entry.hash, tried + 1);
                        self.waiting.push_back(Entry {
                            kind: EntryKind::Send { tried: tried + 1 },
                            ..entry
                        });
                    }
                    EntryKind::Mirror => {
                        // The replica's all-alive view disagrees; the
                        // owner holds the data — degrade, don't re-route.
                        self.metrics.mirror_drops += 1;
                    }
                },
                Response::Err { .. } => {
                    resolved += 1;
                    if matches!(entry.kind, EntryKind::Send { .. }) {
                        self.pipelined_err += 1;
                    }
                }
                _ => {
                    resolved += 1;
                    if matches!(entry.kind, EntryKind::Send { .. }) {
                        self.pipelined_ok += 1;
                        if self.cfg.mirror {
                            if let Some(target) = self.mirror_target(entry.hash) {
                                self.pipes[target].push(Entry {
                                    kind: EntryKind::Mirror,
                                    ..entry
                                });
                            }
                        }
                    }
                }
            }
        }
        let busy = busy_from.is_some();
        if busy {
            // The rejected tail must replay before anything later from
            // the same machines: take the whole open frame too.
            displaced.extend(self.pipes[index].take_all_open());
            let mut mirrors = Vec::new();
            for e in displaced {
                match e.kind {
                    EntryKind::Send { .. } => self.waiting.push_back(e),
                    EntryKind::Mirror => mirrors.push(e),
                }
            }
            // Mirrors stay pinned: back onto this pipe, order intact.
            for e in mirrors {
                self.pipes[index].push(e);
            }
        } else if !redirected.is_empty() {
            let hashes: HashSet<u64> = redirected.keys().copied().collect();
            let moved = self.pipes[index].extract_open_matching(&hashes);
            for e in moved {
                match e.kind {
                    EntryKind::Send { tried } => {
                        let tried = redirected.get(&e.hash).copied().unwrap_or(tried);
                        self.waiting.push_back(Entry {
                            kind: EntryKind::Send { tried },
                            ..e
                        });
                    }
                    // A machine's mirrors live on a different pipe than
                    // its sends (owner ≠ mirror target) — unreachable,
                    // but re-pinning is the safe fallback.
                    EntryKind::Mirror => self.pipes[index].push(e),
                }
            }
        }
        if resolved > 0 {
            self.frame_lats.push((lat_us, resolved));
        }
        Ok(Drain::Ok { resolved, busy })
    }

    /// Member `index`'s transport failed mid-pipeline (write or drain).
    /// Its whole unacknowledged tail — inflight frames in send order,
    /// the frame that was about to be written, then the open frame — is
    /// displaced in order: sends replay through the waiting queue,
    /// mirrors stay pinned. Consecutive failures are bounded by the
    /// retry budget (the pipe-level analogue of the sync client's
    /// per-request retries); exhausting it marks the member dead, which
    /// drops its pinned mirrors.
    fn pipe_transport_failure(&mut self, index: usize, about_to_send: Vec<Entry>) {
        let frames = self.pipes[index].inflight_len();
        if frames > 0 {
            self.global.pipeline_inflight.add(-(frames as i64));
        }
        let open = self.pipes[index].take_all_open();
        let mut tail = self.pipes[index].fail();
        tail.extend(about_to_send);
        tail.extend(open);
        if !tail.is_empty() {
            self.metrics.replayed_tails += 1;
            self.global.pipeline_replayed.inc();
        }
        let mut mirrors = Vec::new();
        for e in tail {
            match e.kind {
                EntryKind::Send { .. } => self.waiting.push_back(e),
                EntryKind::Mirror => mirrors.push(e),
            }
        }
        self.pipe_strikes[index] = self.pipe_strikes[index].saturating_add(1);
        if self.pipe_strikes[index] >= self.cfg.client.retry.max_attempts {
            self.metrics.mirror_drops += mirrors.len() as u64;
            self.mark_dead(index);
        } else {
            // The member gets another chance on a fresh connection;
            // replays of already-applied lines are stale no-ops.
            for e in mirrors {
                self.pipes[index].push(e);
            }
            self.backoff(self.pipe_strikes[index]);
        }
    }

    /// Displaces member `index`'s remaining pipelined lines as part of
    /// its death: sends replay through the waiting queue, mirrors
    /// targeted at it drop (the owner still holds the data).
    fn displace_pipe(&mut self, index: usize) {
        let frames = self.pipes[index].inflight_len();
        if frames > 0 {
            self.global.pipeline_inflight.add(-(frames as i64));
        }
        let tail = self.pipes[index].fail();
        if tail.is_empty() {
            return;
        }
        self.metrics.replayed_tails += 1;
        self.global.pipeline_replayed.inc();
        for e in tail {
            match e.kind {
                EntryKind::Send { .. } => self.waiting.push_back(e),
                EntryKind::Mirror => self.metrics.mirror_drops += 1,
            }
        }
    }

    /// Sleeps `min(cap, base * 2^attempt)` scaled by a seeded jitter
    /// factor in `[0.5, 1.0)` — [`Client`]'s schedule, but per member:
    /// the pipeline backs off a whole pipe, not one request.
    fn backoff(&mut self, attempt: u32) {
        let base = self.cfg.client.retry.base.as_secs_f64();
        let cap = self.cfg.client.retry.cap.as_secs_f64();
        let exp = base * f64::from(2u32.saturating_pow(attempt.min(16)));
        let jitter = 0.5 + 0.5 * self.rng.random::<f64>();
        std::thread::sleep(Duration::from_secs_f64(exp.min(cap) * jitter));
    }

    /// Streams a usage sample to the key's owner and (with mirroring
    /// on) queues it for the replica.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion and non-`OK` responses.
    pub fn observe(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        task: TaskId,
        usage: f64,
        limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            mem: None,
            tick,
        };
        match self.send_routed(hash, &req)? {
            Response::Ok => {}
            other => return Err(ClientError::unexpected("OK", &other)),
        }
        if self.cfg.mirror {
            if let Some(target) = self.mirror_target(hash) {
                self.queue_mirror(target, req)?;
            }
        }
        Ok(())
    }

    /// Where a mirror of this key may go: the current replica, but only
    /// if it held a role under the full ring (members enforce all-alive
    /// ownership; anything else would bounce with `not-mine`).
    fn mirror_target(&self, hash: u64) -> Option<usize> {
        let all = vec![true; self.alive.len()];
        let (o_all, r_all) = self.ring.routes(hash, &all);
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        replica
            .filter(|r| Some(*r) == o_all || Some(*r) == r_all)
            .filter(|r| Some(*r) != owner)
    }

    /// Fetches the predicted peak for one machine from its owner.
    /// Queued mirrors are flushed first so a failover between this call
    /// and the ingest that preceded it cannot lose acknowledged state.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`PRED` response becomes
    /// [`ClientError::Server`].
    pub fn predict(&mut self, cell: &CellId, machine: MachineId) -> Result<f64, ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Predict {
            cell: cell.clone(),
            machine,
            vector: false,
        };
        match self.send_routed(hash, &req)? {
            Response::Pred { peak, .. } => Ok(peak),
            other => Err(ClientError::unexpected("PRED", &other)),
        }
    }

    /// Runs an admission check against the machine's owner.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`ADMITTED` response becomes
    /// [`ClientError::Server`].
    pub fn admit(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        limit: f64,
    ) -> Result<(bool, f64), ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Admit {
            cell: cell.clone(),
            machine,
            limit,
        };
        match self.send_routed(hash, &req)? {
            Response::Admitted { admit, projected } => Ok((admit, projected)),
            other => Err(ClientError::unexpected("ADMITTED", &other)),
        }
    }

    /// Cluster-wide `STATS`: every live member's snapshot folded through
    /// [`StatsSnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Propagates per-member request failures (a member that dies here
    /// is marked dead and skipped).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.flush_mirrors()?;
        let mut merged = StatsSnapshot::default();
        let mut ring_changed = false;
        for index in 0..self.alive.len() {
            if !self.alive[index] {
                continue;
            }
            match self.client(index).and_then(|c| c.stats()) {
                Ok(s) => {
                    // Full-word comparison only: the low 16 bits alias
                    // generations 2^16 apart (see `pack_epoch`), and the
                    // word orders nothing — it is a change *hint* whose
                    // follow-up is an authoritative `RING` probe.
                    let seen = self.last_epoch[index];
                    if s.epoch != 0 && seen != 0 && s.epoch != seen {
                        ring_changed = true;
                    }
                    self.last_epoch[index] = s.epoch;
                    merged.merge(&s);
                }
                Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                    self.mark_dead(index);
                }
                Err(other) => return Err(other),
            }
        }
        if ring_changed {
            self.probe_ring();
        }
        Ok(merged)
    }
}

/// Outcome of draining one member's oldest inflight frame.
enum Drain {
    /// Replies processed: `resolved` lines acknowledged or errored;
    /// `busy` — a rejected tail (plus the open frame) was displaced for
    /// replay.
    Ok { resolved: u64, busy: bool },
    /// The member's transport failed; its unacknowledged tail was
    /// displaced.
    Lost,
}

/// Result of one [`ClusterClient::settle_step`] pass.
struct Settle {
    /// Every pipe fits its target (empty under flush; within
    /// batch/window otherwise).
    done: bool,
    /// At least one line resolved this pass — the anti-starvation
    /// signal that resets the busy-storm strike count.
    progress: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::config::ServeConfig;
    use oc_serve::server::Server;
    use oc_trace::ids::JobId;

    /// An in-process 3-member ring (cargo's test harness owns `main`,
    /// so child processes are out; ownership maps make in-process
    /// servers behave exactly like cluster members).
    fn ring_servers(nodes: usize) -> (RingSpec, Vec<Server>, Vec<SocketAddr>) {
        let spec = RingSpec::new(nodes);
        let ring = spec.build();
        let servers: Vec<Server> = (0..nodes)
            .map(|i| {
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(ring.ownership_for(i));
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (spec, servers, addrs)
    }

    fn fleet_of(n: u32) -> (CellId, Vec<MachineId>) {
        (CellId::new("cc"), (0..n).map(MachineId).collect())
    }

    #[test]
    fn routes_and_mirrors_across_members() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(40);
        let task = TaskId::new(JobId(1), 0);
        for &m in &machines {
            for t in 0..5 {
                cc.observe(&cell, m, task, 0.2 + 0.01 * f64::from(m.0), 0.5, t)
                    .expect("observe");
            }
        }
        cc.flush_mirrors().expect("flush");
        let stats = cc.stats().expect("stats");
        // Owner + replica each ingested every sample.
        assert_eq!(stats.observes, 40 * 5 * 2);
        assert_eq!(stats.machines, 80, "each machine lives on two members");
        assert_eq!(cc.metrics().redirects, 0, "routed sends never redirect");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn predictions_survive_member_shutdown() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(30);
        let task = TaskId::new(JobId(2), 0);
        for t in 0..8 {
            for &m in &machines {
                let usage = 0.05 + 0.4 * f64::from((m.0 * 13 + t * 7) % 89) / 89.0;
                cc.observe(&cell, m, task, usage, 0.5, u64::from(t))
                    .expect("observe");
            }
        }
        let before: Vec<f64> = machines
            .iter()
            .map(|&m| cc.predict(&cell, m).expect("predict"))
            .collect();

        // Stop member 0 abruptly; the client discovers the death on its
        // next send and fails over to the replicas.
        let mut servers = servers;
        servers.remove(0).shutdown();
        for (i, &m) in machines.iter().enumerate() {
            let after = cc.predict(&cell, m).expect("predict after death");
            assert_eq!(
                after.to_bits(),
                before[i].to_bits(),
                "machine {} diverged after failover",
                m.0
            );
        }
        assert!(!cc.alive()[0], "member 0 marked dead");
        assert!(cc.metrics().failovers >= 1);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn remote_member_redirects_to_owner() {
        let (spec, _servers, addrs) = ring_servers(3);
        let ring = spec.build();
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(3), 0);
        // Find a machine whose owner is NOT member 0, then force the
        // first attempt at member 0 by shrinking the ring view.
        let all = vec![true; 3];
        let m = (0..200)
            .map(MachineId)
            .find(|m| {
                let h = key_hash(&(cell.clone(), *m));
                let (o, r) = ring.routes(h, &all);
                o != Some(0) && r != Some(0)
            })
            .expect("some machine avoids member 0");
        // A direct client pointed at the remote member sees the redirect
        // error the ClusterClient would absorb.
        let mut direct = Client::connect(addrs[0], ClientConfig::default()).expect("connect");
        let resp = direct
            .request(&Request::Observe {
                cell: cell.clone(),
                machine: m,
                task,
                usage: 0.3,
                limit: 0.5,
                mem: None,
                tick: 0,
            })
            .expect("request");
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::NotMine,
                    ..
                }
            ),
            "expected not-mine, got {resp:?}"
        );
        // The routed path lands it on the owner without surfacing an
        // error, and redirect-free.
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        cc.observe(&cell, m, task, 0.3, 0.5, 1).expect("routed");
        assert_eq!(cc.metrics().redirects, 0);
    }

    /// Satellite regression: when the failover flush itself fails (a
    /// second member dies before the takeover target is reachable),
    /// nothing was replayed — the queued mirrors are drops, and
    /// `replica_replays` must stay untouched. The pre-fix code counted
    /// every queued mirror as a replay *before* attempting the flush.
    #[test]
    fn cascading_deaths_count_drops_not_replays() {
        let (spec, mut servers, addrs) = ring_servers(3);
        let ring = spec.build();
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(7), 0);
        let all = vec![true; 3];
        // Machines owned by member 0 queue mirrors for members 1 and 2;
        // a machine owned by 1 with replica 0 trips the first death and
        // still has a live home afterwards.
        let mut owned0 = Vec::new();
        let mut trip = None;
        for m in (0..600).map(MachineId) {
            let h = key_hash(&(cell.clone(), m));
            match ring.routes(h, &all) {
                (Some(0), _) if owned0.len() < 40 => owned0.push(m),
                (Some(1), Some(0)) if trip.is_none() => trip = Some(m),
                _ => {}
            }
        }
        let trip = trip.expect("some machine routes (1, 0)");
        for &m in &owned0 {
            cc.observe(&cell, m, task, 0.3, 0.5, 0).expect("observe");
        }
        let q1 = cc.pending[1].len() as u64;
        let q2 = cc.pending[2].len() as u64;
        assert!(q1 > 0 && q2 > 0, "both targets should hold queued mirrors");
        assert!(cc.pending[0].is_empty(), "member 0 is never its own mirror");
        // Kill members 1 and 2 out from under the client.
        servers.remove(2).shutdown();
        servers.remove(1).shutdown();
        // The send to member 1 fails; the failover flush then finds
        // member 2 dead too. Nothing was delivered anywhere.
        cc.observe(&cell, trip, task, 0.3, 0.5, 1)
            .expect("failover observe via the replica");
        let m = cc.metrics();
        assert_eq!(m.replica_replays, 0, "undelivered mirrors are not replays");
        assert_eq!(m.mirror_drops, q1 + q2);
        assert_eq!(m.failovers, 2);
        assert!(!cc.alive()[1] && !cc.alive()[2]);
        servers.remove(0).shutdown();
    }

    /// An epoch-word change in `STATS` (the change hint) makes the
    /// client probe `RING` and adopt the newer generation on its own —
    /// no operator `adopt` call.
    #[test]
    fn epoch_change_triggers_ring_adoption() {
        use oc_serve::config::{OwnershipFactory, RingInfo};
        let spec = RingSpec::new(3);
        let servers: Vec<Server> = (0..3)
            .map(|i| {
                let factory = OwnershipFactory::new(move |n, v, s| {
                    if i >= n {
                        return None;
                    }
                    let spec = RingSpec {
                        nodes: n,
                        vnodes: v,
                        seed: s,
                        generation: 0,
                    };
                    Some(spec.build().ownership_for(i))
                });
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(spec.build().ownership_for(i))
                    .with_ring_info(RingInfo {
                        nodes: spec.nodes,
                        vnodes: spec.vnodes,
                        seed: spec.seed,
                    })
                    .with_ownership_factory(factory);
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        cc.stats().expect("stats records per-member epochs");
        assert_eq!(cc.metrics().adoptions, 0);
        // Supervisor-style push: generation 1 with the full address list;
        // every member re-stamps its epoch word.
        let addr_strings: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
        for &addr in &addrs {
            let mut direct = Client::connect(addr, ClientConfig::default()).expect("connect");
            let resp = direct
                .request(&Request::RingSet {
                    nodes: 3,
                    vnodes: spec.vnodes as u64,
                    seed: spec.seed,
                    generation: 1,
                    addrs: addr_strings.clone(),
                })
                .expect("ringset");
            assert!(matches!(resp, Response::Ok), "RINGSET answered {resp:?}");
        }
        cc.stats().expect("stats sees the epoch change");
        assert_eq!(cc.metrics().adoptions, 1, "one auto-adoption");
        assert!(cc.alive().iter().all(|a| *a));
        // The data plane still routes under the adopted ring.
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(9), 0);
        cc.observe(&cell, MachineId(0), task, 0.3, 0.5, 1)
            .expect("observe after adoption");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn membership_mismatch_is_a_config_error() {
        let spec = RingSpec::new(3);
        let addrs: Vec<SocketAddr> = vec!["127.0.0.1:1".parse().expect("addr")];
        let err = ClusterClient::connect(spec, &addrs, ClusterClientConfig::default());
        assert!(matches!(err, Err(ClientError::Config(_))));
    }
}
