//! [`ClusterClient`] — one client over an N-process ring.
//!
//! A `ClusterClient` holds one [`Client`] per member and routes every
//! data-plane call by the key's [`oc_serve::shard::key_hash`] through a
//! shared [`HashRing`]: `OBSERVE`/`PREDICT`/`ADMIT` go to the live
//! owner, and (with mirroring on) every `OBSERVE` is also queued for
//! the key's replica — the ring successor, which is exactly the node
//! that takes over if the owner dies. Because both copies see the same
//! ordered per-machine stream, the replica's state is bit-identical and
//! so are its predictions; a SIGKILLed owner therefore loses nothing an
//! acknowledged sample ever carried.
//!
//! Failure handling:
//!
//! * `ERR not-mine` (a member enforcing its [`oc_serve::config::OwnershipMap`])
//!   bumps `cluster.redirects` and the call retries on the replica,
//!   then on any other live member.
//! * A terminal transport error marks the member dead, replays its
//!   still-queued mirrors to the takeover targets
//!   (`cluster.replica_replays`), and re-routes the call.
//!
//! One degradation is deliberate: members classify keys against the
//! *all-alive* ring (a process cannot observe peer deaths), so after a
//! failure the new replica of a failed-over key would answer
//! `not-mine` to mirrors. Mirrors are therefore only sent to targets
//! that were owner or replica under the full ring — redundancy for the
//! failed-over range is restored by replacing the member and adopting a
//! generation-bumped [`RingSpec`], not by re-replication in place. See
//! `docs/OPERATIONS.md` §5.6.
//!
//! Adoption is automatic: after a member death, after an all-members
//! `not-mine` exhaustion, or when a member's `STATS` epoch word changes,
//! the client probes a live member with `RING` and adopts the described
//! membership when its *full 64-bit* generation is strictly newer and
//! the address list is complete (`cluster.adoptions`). The packed epoch
//! is only the change hint — generations 2^16 apart alias in it, so the
//! epoch is compared as a whole word and never decides which ring is
//! newer (PROTOCOL.md §7.3–7.4).

use crate::client::{Client, ClientConfig};
use crate::error::ClientError;
use oc_cluster::{HashRing, RingSpec};
use oc_serve::proto::{ErrCode, Request, Response, StatsSnapshot};
use oc_serve::shard::key_hash;
use oc_telemetry::Counter;
use oc_trace::ids::{CellId, MachineId, TaskId};
use std::net::SocketAddr;
use std::sync::Arc;

/// Mirrors queued per replica before an automatic flush.
const MIRROR_FLUSH_AT: usize = 64;

/// Shape of a [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct ClusterClientConfig {
    /// Per-member connection config; the seed is salted by member index
    /// so backoff jitter never locksteps across the fleet.
    pub client: ClientConfig,
    /// Mirror every `OBSERVE` to the key's replica. Costs one extra
    /// write per sample; buys SIGKILL survival.
    pub mirror: bool,
}

impl Default for ClusterClientConfig {
    /// Mirroring on — the cluster's reason to exist.
    fn default() -> ClusterClientConfig {
        ClusterClientConfig {
            client: ClientConfig::default(),
            mirror: true,
        }
    }
}

/// What a [`ClusterClient`] did across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// `ERR not-mine` responses that forced a re-route.
    pub redirects: u64,
    /// Queued mirrors force-flushed by a member death, delivered to
    /// their targets (including the takeover target) before any read
    /// could observe a gap.
    pub replica_replays: u64,
    /// Queued mirrors dropped because their *target* died (the owner
    /// still holds the data; redundancy is degraded, not lost).
    pub mirror_drops: u64,
    /// Members marked dead after a terminal transport error.
    pub failovers: u64,
    /// Newer ring descriptions adopted from a member's `RING` answer
    /// (a replacement or resize the client discovered on its own).
    pub adoptions: u64,
}

/// Handles into the process-wide registry mirroring [`ClusterMetrics`];
/// names documented in `docs/OPERATIONS.md`.
#[derive(Debug)]
struct GlobalCounters {
    redirects: Arc<Counter>,
    replica_replays: Arc<Counter>,
    adoptions: Arc<Counter>,
}

impl GlobalCounters {
    fn new() -> GlobalCounters {
        let m = oc_telemetry::global_metrics();
        GlobalCounters {
            redirects: m.counter("cluster.redirects"),
            replica_replays: m.counter("cluster.replica_replays"),
            adoptions: m.counter("cluster.adoptions"),
        }
    }
}

/// One logical client over a multi-process ring.
#[derive(Debug)]
pub struct ClusterClient {
    ring: HashRing,
    addrs: Vec<SocketAddr>,
    alive: Vec<bool>,
    clients: Vec<Option<Client>>,
    /// Mirrors not yet written, per target member.
    pending: Vec<Vec<Request>>,
    /// Each member's epoch word from its last `STATS` answer (`0` =
    /// never seen). Compared as the *full word* — the low 16 bits alone
    /// alias generations 2^16 apart.
    last_epoch: Vec<u64>,
    /// Re-entrancy guard: a probe triggered while another probe's
    /// adoption is flushing must not recurse.
    probing: bool,
    cfg: ClusterClientConfig,
    metrics: ClusterMetrics,
    global: GlobalCounters,
}

impl ClusterClient {
    /// Builds a client over the ring `spec` describes, with one address
    /// per member. Connections are opened lazily, on first use.
    ///
    /// # Errors
    ///
    /// [`ClientError::Config`] when `addrs` does not match `spec.nodes`
    /// or the per-member config is invalid.
    pub fn connect(
        spec: RingSpec,
        addrs: &[SocketAddr],
        cfg: ClusterClientConfig,
    ) -> Result<ClusterClient, ClientError> {
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        cfg.client.validate()?;
        Ok(ClusterClient {
            ring: spec.build(),
            addrs: addrs.to_vec(),
            alive: vec![true; spec.nodes],
            clients: (0..spec.nodes).map(|_| None).collect(),
            pending: vec![Vec::new(); spec.nodes],
            last_epoch: vec![0; spec.nodes],
            probing: false,
            cfg,
            metrics: ClusterMetrics::default(),
            global: GlobalCounters::new(),
        })
    }

    /// The liveness mask this client has inferred, by ring index.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// What this client did so far.
    pub fn metrics(&self) -> ClusterMetrics {
        self.metrics
    }

    /// Switches to a new membership (e.g. after a retired member was
    /// replaced under a bumped generation). Pending mirrors are flushed
    /// under the *old* ring first; all members start presumed alive.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterClient::connect`]-style validation.
    pub fn adopt(&mut self, spec: RingSpec, addrs: &[SocketAddr]) -> Result<(), ClientError> {
        self.flush_mirrors()?;
        if addrs.len() != spec.nodes {
            return Err(ClientError::Config(format!(
                "{} addresses for a {}-node ring",
                addrs.len(),
                spec.nodes
            )));
        }
        self.ring = spec.build();
        self.addrs = addrs.to_vec();
        self.alive = vec![true; spec.nodes];
        self.clients = (0..spec.nodes).map(|_| None).collect();
        self.pending = vec![Vec::new(); spec.nodes];
        self.last_epoch = vec![0; spec.nodes];
        Ok(())
    }

    /// The lazily-opened client for member `index`.
    fn client(&mut self, index: usize) -> Result<&mut Client, ClientError> {
        if self.clients[index].is_none() {
            let cfg = self
                .cfg
                .client
                .clone()
                .with_seed(self.cfg.client.seed.wrapping_add(index as u64 + 1));
            self.clients[index] = Some(Client::connect(self.addrs[index], cfg)?);
        }
        Ok(self.clients[index].as_mut().expect("just connected"))
    }

    /// Marks `index` dead after a terminal failure: drops its
    /// connection, abandons mirrors *targeted at* it, and replays every
    /// other queued mirror immediately — keys the dead member owned now
    /// resolve to their replica, and the replica's queue holds exactly
    /// the samples it has not yet seen.
    fn mark_dead(&mut self, index: usize) {
        if !self.alive[index] {
            return;
        }
        self.alive[index] = false;
        self.clients[index] = None;
        self.metrics.failovers += 1;
        let dropped = std::mem::take(&mut self.pending[index]);
        self.metrics.mirror_drops += dropped.len() as u64;
        let queued: u64 = self.pending.iter().map(|q| q.len() as u64).sum();
        if queued > 0 {
            // Only mirrors that actually reached their takeover target
            // count as replays; a flush that fails (a second death,
            // cascading into another mark_dead) records drops instead.
            let mut delivered = 0u64;
            let _ = self.flush_mirrors_inner(&mut delivered);
            self.metrics.replica_replays += delivered;
            self.global.replica_replays.add(delivered);
        }
        // The supervisor may already have replaced the member under a
        // bumped generation: ask a survivor before giving up on the slot.
        self.probe_ring();
    }

    /// Writes every queued mirror to its (live) target. Called before
    /// reads so replicas are never behind acknowledged ingest, and on
    /// failover to complete the takeover target's stream.
    ///
    /// # Errors
    ///
    /// Only non-transport errors propagate; a member that fails
    /// mid-flush is marked dead (degrading redundancy, never losing
    /// owner-held data).
    pub fn flush_mirrors(&mut self) -> Result<(), ClientError> {
        let mut delivered = 0u64;
        self.flush_mirrors_inner(&mut delivered)
    }

    /// [`ClusterClient::flush_mirrors`], counting successfully written
    /// mirrors into `delivered` so failover accounting can distinguish
    /// replays that happened from replays that turned into drops.
    fn flush_mirrors_inner(&mut self, delivered: &mut u64) -> Result<(), ClientError> {
        for index in 0..self.pending.len() {
            // A cascading mark_dead can probe and adopt a new membership
            // mid-flush, swapping the queues out from under this loop.
            if index >= self.pending.len() {
                break;
            }
            if self.pending[index].is_empty() {
                continue;
            }
            if !self.alive[index] {
                let dropped = std::mem::take(&mut self.pending[index]);
                self.metrics.mirror_drops += dropped.len() as u64;
                continue;
            }
            let batch = std::mem::take(&mut self.pending[index]);
            let outcome = self
                .client(index)
                .and_then(|c| c.pipeline_with(&batch, |_, _, _| {}));
            match outcome {
                Ok(()) => *delivered += batch.len() as u64,
                Err(e) => match e {
                    ClientError::Io(_) | ClientError::Exhausted { .. } => {
                        self.metrics.mirror_drops += batch.len() as u64;
                        self.mark_dead(index);
                    }
                    other => return Err(other),
                },
            }
        }
        Ok(())
    }

    /// Asks a live member for the current `RING` description and adopts
    /// it when its full 64-bit generation is strictly newer than the
    /// local ring's **and** the address list is complete. Returns
    /// whether a new membership was adopted. Probe transport errors are
    /// swallowed — the next data-plane call rediscovers them.
    fn probe_ring(&mut self) -> bool {
        if self.probing {
            return false;
        }
        self.probing = true;
        let adopted = self.probe_ring_inner();
        self.probing = false;
        if adopted {
            self.metrics.adoptions += 1;
            self.global.adoptions.inc();
        }
        adopted
    }

    fn probe_ring_inner(&mut self) -> bool {
        for index in 0..self.alive.len() {
            if !self.alive[index] {
                continue;
            }
            let resp = match self.client(index).and_then(|c| c.request(&Request::Ring)) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let Response::Ring {
                nodes,
                vnodes,
                seed,
                generation,
                addrs,
                ..
            } = resp
            else {
                // Standalone servers answer ERR; nothing to adopt.
                continue;
            };
            if generation <= self.ring.spec().generation {
                // The cluster is on our ring (or this member lags);
                // adopting would only repeat the current state.
                return false;
            }
            if nodes == 0 || vnodes == 0 || addrs.len() != nodes as usize {
                // A newer ring whose membership is not fully known yet;
                // maybe another member has the complete description.
                continue;
            }
            let parsed: Option<Vec<SocketAddr>> = addrs.iter().map(|a| a.parse().ok()).collect();
            let Some(parsed) = parsed else { continue };
            let spec = RingSpec {
                nodes: nodes as usize,
                vnodes: vnodes as usize,
                seed,
                generation,
            };
            return self.adopt(spec, &parsed).is_ok();
        }
        false
    }

    /// Queues a mirror of `req` for member `target`, flushing when the
    /// queue fills.
    fn queue_mirror(&mut self, target: usize, req: Request) -> Result<(), ClientError> {
        self.pending[target].push(req);
        if self.pending[target].len() >= MIRROR_FLUSH_AT {
            self.flush_mirrors()?;
        }
        Ok(())
    }

    /// Candidate members for a key, preference-ordered: live owner,
    /// live replica, then every other live member.
    fn candidates(&self, hash: u64) -> Vec<usize> {
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        let mut order = Vec::with_capacity(self.alive.len());
        order.extend(owner);
        order.extend(replica.filter(|r| Some(*r) != owner));
        for (i, &alive) in self.alive.iter().enumerate() {
            if alive && !order.contains(&i) {
                order.push(i);
            }
        }
        order
    }

    /// Sends `req` to the key's owner, falling over on `not-mine`
    /// redirects and member deaths.
    fn send_routed(&mut self, hash: u64, req: &Request) -> Result<Response, ClientError> {
        loop {
            let order = self.candidates(hash);
            if order.is_empty() {
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "no live ring member".to_string(),
                });
            }
            let mut redirected = false;
            for index in order {
                let outcome = self.client(index).and_then(|c| c.request(req));
                match outcome {
                    Ok(Response::Err {
                        code: ErrCode::NotMine,
                        ..
                    }) => {
                        self.metrics.redirects += 1;
                        self.global.redirects.inc();
                        redirected = true;
                    }
                    Ok(resp) => return Ok(resp),
                    Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                        self.mark_dead(index);
                        // Membership changed; recompute the order.
                        redirected = false;
                        break;
                    }
                    Err(other) => return Err(other),
                }
            }
            if redirected {
                // Every live member redirected: the ring disagrees with
                // the servers' ownership maps (stale spec). If the
                // members serve a newer generation, adopt it and retry;
                // a second full redirect round cannot adopt again (the
                // generation is no longer newer) and exhausts below.
                if self.probe_ring() {
                    continue;
                }
                return Err(ClientError::Exhausted {
                    attempts: 0,
                    last: "every live member answered not-mine; re-resolve the ring".to_string(),
                });
            }
        }
    }

    /// Streams a usage sample to the key's owner and (with mirroring
    /// on) queues it for the replica.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion and non-`OK` responses.
    pub fn observe(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        task: TaskId,
        usage: f64,
        limit: f64,
        tick: u64,
    ) -> Result<(), ClientError> {
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Observe {
            cell: cell.clone(),
            machine,
            task,
            usage,
            limit,
            mem: None,
            tick,
        };
        match self.send_routed(hash, &req)? {
            Response::Ok => {}
            other => return Err(ClientError::unexpected("OK", &other)),
        }
        if self.cfg.mirror {
            if let Some(target) = self.mirror_target(hash) {
                self.queue_mirror(target, req)?;
            }
        }
        Ok(())
    }

    /// Where a mirror of this key may go: the current replica, but only
    /// if it held a role under the full ring (members enforce all-alive
    /// ownership; anything else would bounce with `not-mine`).
    fn mirror_target(&self, hash: u64) -> Option<usize> {
        let all = vec![true; self.alive.len()];
        let (o_all, r_all) = self.ring.routes(hash, &all);
        let (owner, replica) = self.ring.routes(hash, &self.alive);
        replica
            .filter(|r| Some(*r) == o_all || Some(*r) == r_all)
            .filter(|r| Some(*r) != owner)
    }

    /// Fetches the predicted peak for one machine from its owner.
    /// Queued mirrors are flushed first so a failover between this call
    /// and the ingest that preceded it cannot lose acknowledged state.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`PRED` response becomes
    /// [`ClientError::Server`].
    pub fn predict(&mut self, cell: &CellId, machine: MachineId) -> Result<f64, ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Predict {
            cell: cell.clone(),
            machine,
            vector: false,
        };
        match self.send_routed(hash, &req)? {
            Response::Pred { peak, .. } => Ok(peak),
            other => Err(ClientError::unexpected("PRED", &other)),
        }
    }

    /// Runs an admission check against the machine's owner.
    ///
    /// # Errors
    ///
    /// Propagates routing exhaustion; a non-`ADMITTED` response becomes
    /// [`ClientError::Server`].
    pub fn admit(
        &mut self,
        cell: &CellId,
        machine: MachineId,
        limit: f64,
    ) -> Result<(bool, f64), ClientError> {
        self.flush_mirrors()?;
        let hash = key_hash(&(cell.clone(), machine));
        let req = Request::Admit {
            cell: cell.clone(),
            machine,
            limit,
        };
        match self.send_routed(hash, &req)? {
            Response::Admitted { admit, projected } => Ok((admit, projected)),
            other => Err(ClientError::unexpected("ADMITTED", &other)),
        }
    }

    /// Cluster-wide `STATS`: every live member's snapshot folded through
    /// [`StatsSnapshot::merge`].
    ///
    /// # Errors
    ///
    /// Propagates per-member request failures (a member that dies here
    /// is marked dead and skipped).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.flush_mirrors()?;
        let mut merged = StatsSnapshot::default();
        let mut ring_changed = false;
        for index in 0..self.alive.len() {
            if !self.alive[index] {
                continue;
            }
            match self.client(index).and_then(|c| c.stats()) {
                Ok(s) => {
                    // Full-word comparison only: the low 16 bits alias
                    // generations 2^16 apart (see `pack_epoch`), and the
                    // word orders nothing — it is a change *hint* whose
                    // follow-up is an authoritative `RING` probe.
                    let seen = self.last_epoch[index];
                    if s.epoch != 0 && seen != 0 && s.epoch != seen {
                        ring_changed = true;
                    }
                    self.last_epoch[index] = s.epoch;
                    merged.merge(&s);
                }
                Err(ClientError::Io(_)) | Err(ClientError::Exhausted { .. }) => {
                    self.mark_dead(index);
                }
                Err(other) => return Err(other),
            }
        }
        if ring_changed {
            self.probe_ring();
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::config::ServeConfig;
    use oc_serve::server::Server;
    use oc_trace::ids::JobId;

    /// An in-process 3-member ring (cargo's test harness owns `main`,
    /// so child processes are out; ownership maps make in-process
    /// servers behave exactly like cluster members).
    fn ring_servers(nodes: usize) -> (RingSpec, Vec<Server>, Vec<SocketAddr>) {
        let spec = RingSpec::new(nodes);
        let ring = spec.build();
        let servers: Vec<Server> = (0..nodes)
            .map(|i| {
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(ring.ownership_for(i));
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (spec, servers, addrs)
    }

    fn fleet_of(n: u32) -> (CellId, Vec<MachineId>) {
        (CellId::new("cc"), (0..n).map(MachineId).collect())
    }

    #[test]
    fn routes_and_mirrors_across_members() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(40);
        let task = TaskId::new(JobId(1), 0);
        for &m in &machines {
            for t in 0..5 {
                cc.observe(&cell, m, task, 0.2 + 0.01 * f64::from(m.0), 0.5, t)
                    .expect("observe");
            }
        }
        cc.flush_mirrors().expect("flush");
        let stats = cc.stats().expect("stats");
        // Owner + replica each ingested every sample.
        assert_eq!(stats.observes, 40 * 5 * 2);
        assert_eq!(stats.machines, 80, "each machine lives on two members");
        assert_eq!(cc.metrics().redirects, 0, "routed sends never redirect");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn predictions_survive_member_shutdown() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, machines) = fleet_of(30);
        let task = TaskId::new(JobId(2), 0);
        for t in 0..8 {
            for &m in &machines {
                let usage = 0.05 + 0.4 * f64::from((m.0 * 13 + t * 7) % 89) / 89.0;
                cc.observe(&cell, m, task, usage, 0.5, u64::from(t))
                    .expect("observe");
            }
        }
        let before: Vec<f64> = machines
            .iter()
            .map(|&m| cc.predict(&cell, m).expect("predict"))
            .collect();

        // Stop member 0 abruptly; the client discovers the death on its
        // next send and fails over to the replicas.
        let mut servers = servers;
        servers.remove(0).shutdown();
        for (i, &m) in machines.iter().enumerate() {
            let after = cc.predict(&cell, m).expect("predict after death");
            assert_eq!(
                after.to_bits(),
                before[i].to_bits(),
                "machine {} diverged after failover",
                m.0
            );
        }
        assert!(!cc.alive()[0], "member 0 marked dead");
        assert!(cc.metrics().failovers >= 1);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn remote_member_redirects_to_owner() {
        let (spec, _servers, addrs) = ring_servers(3);
        let ring = spec.build();
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(3), 0);
        // Find a machine whose owner is NOT member 0, then force the
        // first attempt at member 0 by shrinking the ring view.
        let all = vec![true; 3];
        let m = (0..200)
            .map(MachineId)
            .find(|m| {
                let h = key_hash(&(cell.clone(), *m));
                let (o, r) = ring.routes(h, &all);
                o != Some(0) && r != Some(0)
            })
            .expect("some machine avoids member 0");
        // A direct client pointed at the remote member sees the redirect
        // error the ClusterClient would absorb.
        let mut direct = Client::connect(addrs[0], ClientConfig::default()).expect("connect");
        let resp = direct
            .request(&Request::Observe {
                cell: cell.clone(),
                machine: m,
                task,
                usage: 0.3,
                limit: 0.5,
                mem: None,
                tick: 0,
            })
            .expect("request");
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::NotMine,
                    ..
                }
            ),
            "expected not-mine, got {resp:?}"
        );
        // The routed path lands it on the owner without surfacing an
        // error, and redirect-free.
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        cc.observe(&cell, m, task, 0.3, 0.5, 1).expect("routed");
        assert_eq!(cc.metrics().redirects, 0);
    }

    /// Satellite regression: when the failover flush itself fails (a
    /// second member dies before the takeover target is reachable),
    /// nothing was replayed — the queued mirrors are drops, and
    /// `replica_replays` must stay untouched. The pre-fix code counted
    /// every queued mirror as a replay *before* attempting the flush.
    #[test]
    fn cascading_deaths_count_drops_not_replays() {
        let (spec, mut servers, addrs) = ring_servers(3);
        let ring = spec.build();
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(7), 0);
        let all = vec![true; 3];
        // Machines owned by member 0 queue mirrors for members 1 and 2;
        // a machine owned by 1 with replica 0 trips the first death and
        // still has a live home afterwards.
        let mut owned0 = Vec::new();
        let mut trip = None;
        for m in (0..600).map(MachineId) {
            let h = key_hash(&(cell.clone(), m));
            match ring.routes(h, &all) {
                (Some(0), _) if owned0.len() < 40 => owned0.push(m),
                (Some(1), Some(0)) if trip.is_none() => trip = Some(m),
                _ => {}
            }
        }
        let trip = trip.expect("some machine routes (1, 0)");
        for &m in &owned0 {
            cc.observe(&cell, m, task, 0.3, 0.5, 0).expect("observe");
        }
        let q1 = cc.pending[1].len() as u64;
        let q2 = cc.pending[2].len() as u64;
        assert!(q1 > 0 && q2 > 0, "both targets should hold queued mirrors");
        assert!(cc.pending[0].is_empty(), "member 0 is never its own mirror");
        // Kill members 1 and 2 out from under the client.
        servers.remove(2).shutdown();
        servers.remove(1).shutdown();
        // The send to member 1 fails; the failover flush then finds
        // member 2 dead too. Nothing was delivered anywhere.
        cc.observe(&cell, trip, task, 0.3, 0.5, 1)
            .expect("failover observe via the replica");
        let m = cc.metrics();
        assert_eq!(m.replica_replays, 0, "undelivered mirrors are not replays");
        assert_eq!(m.mirror_drops, q1 + q2);
        assert_eq!(m.failovers, 2);
        assert!(!cc.alive()[1] && !cc.alive()[2]);
        servers.remove(0).shutdown();
    }

    /// An epoch-word change in `STATS` (the change hint) makes the
    /// client probe `RING` and adopt the newer generation on its own —
    /// no operator `adopt` call.
    #[test]
    fn epoch_change_triggers_ring_adoption() {
        use oc_serve::config::{OwnershipFactory, RingInfo};
        let spec = RingSpec::new(3);
        let servers: Vec<Server> = (0..3)
            .map(|i| {
                let factory = OwnershipFactory::new(move |n, v, s| {
                    if i >= n {
                        return None;
                    }
                    let spec = RingSpec {
                        nodes: n,
                        vnodes: v,
                        seed: s,
                        generation: 0,
                    };
                    Some(spec.build().ownership_for(i))
                });
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(spec.build().ownership_for(i))
                    .with_ring_info(RingInfo {
                        nodes: spec.nodes,
                        vnodes: spec.vnodes,
                        seed: spec.seed,
                    })
                    .with_ownership_factory(factory);
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let mut cc =
            ClusterClient::connect(spec, &addrs, ClusterClientConfig::default()).expect("connect");
        cc.stats().expect("stats records per-member epochs");
        assert_eq!(cc.metrics().adoptions, 0);
        // Supervisor-style push: generation 1 with the full address list;
        // every member re-stamps its epoch word.
        let addr_strings: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
        for &addr in &addrs {
            let mut direct = Client::connect(addr, ClientConfig::default()).expect("connect");
            let resp = direct
                .request(&Request::RingSet {
                    nodes: 3,
                    vnodes: spec.vnodes as u64,
                    seed: spec.seed,
                    generation: 1,
                    addrs: addr_strings.clone(),
                })
                .expect("ringset");
            assert!(matches!(resp, Response::Ok), "RINGSET answered {resp:?}");
        }
        cc.stats().expect("stats sees the epoch change");
        assert_eq!(cc.metrics().adoptions, 1, "one auto-adoption");
        assert!(cc.alive().iter().all(|a| *a));
        // The data plane still routes under the adopted ring.
        let (cell, _) = fleet_of(1);
        let task = TaskId::new(JobId(9), 0);
        cc.observe(&cell, MachineId(0), task, 0.3, 0.5, 1)
            .expect("observe after adoption");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn membership_mismatch_is_a_config_error() {
        let spec = RingSpec::new(3);
        let addrs: Vec<SocketAddr> = vec!["127.0.0.1:1".parse().expect("addr")];
        let err = ClusterClient::connect(spec, &addrs, ClusterClientConfig::default());
        assert!(matches!(err, Err(ClientError::Config(_))));
    }
}
