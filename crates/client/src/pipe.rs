//! Per-member pipelined frame bookkeeping for
//! [`ClusterClient`](crate::cluster::ClusterClient).
//!
//! A [`MemberPipe`] tracks one member's pipelined ingest state: an
//! `open` frame still being filled, and a FIFO of [`SentFrame`]s already
//! on the wire whose replies have not been drained. The module is a
//! **pure state machine** — no I/O — so its ordering and no-loss
//! invariants are property-tested exhaustively (the `props` module
//! below) without sockets or servers.
//!
//! Two rules make replay-after-failure order-safe:
//!
//! * **No-span** — a machine's samples never sit in more than one
//!   on-the-wire frame at once ([`MemberPipe::wire_conflicts`] forces a
//!   drain first). Whatever happens to one frame, every *later* line of
//!   an affected machine is still client-side (open frame), where it can
//!   be displaced behind the replayed tail.
//! * **Prefix-apply** — the server poisons the rest of a frame after a
//!   `BUSY` chunk (PROTOCOL.md §2.1), so a frame's applied observes are
//!   always a prefix. Replaying the rejected tail in order can therefore
//!   never leapfrog an applied sample of the same machine.
//!
//! Boundary sealing ([`MemberPipe::seal_cut`]) is the performance side
//! of the same coin: frames prefer to break *between* machines, so the
//! no-span rule almost never has to stall the pipe.

use oc_serve::proto::Request;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// How one queued line travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryKind {
    /// Routed by key to the live owner; re-routed (and replayed) on
    /// failure. `tried` counts consecutive `not-mine` hops so a full
    /// redirect round can be detected, exactly like the sync path.
    Send { tried: u32 },
    /// Pinned to the member whose pipe holds it (a replica mirror);
    /// dropped, never re-routed, when that member dies.
    Mirror,
}

/// One queued line on a member pipe.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Routing hash of the sample's `(cell, machine)` key — the
    /// per-machine ordering identity.
    pub hash: u64,
    pub req: Request,
    pub kind: EntryKind,
}

/// One frame on the wire, awaiting its replies.
#[derive(Debug)]
pub(crate) struct SentFrame {
    pub entries: Vec<Entry>,
    /// Write instant, for per-frame ack latency.
    pub sent_at: Instant,
}

/// One member's pipelined ingest state.
#[derive(Debug, Default)]
pub(crate) struct MemberPipe {
    /// Accumulating frame, not yet written.
    open: Vec<Entry>,
    /// Frames written, oldest first, replies undrained.
    inflight: VecDeque<SentFrame>,
    /// Unacked line count per machine hash across `inflight` — the
    /// no-span rule's ledger.
    wired: HashMap<u64, u32>,
}

impl MemberPipe {
    /// Queues one line onto the open frame.
    pub fn push(&mut self, e: Entry) {
        self.open.push(e);
    }

    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Line count of the oldest inflight frame, if any.
    pub fn oldest_len(&self) -> Option<usize> {
        self.inflight.front().map(|f| f.entries.len())
    }

    pub fn is_empty(&self) -> bool {
        self.open.is_empty() && self.inflight.is_empty()
    }

    /// How many open lines the next frame should carry. At least `1`
    /// (when the open frame is non-empty), at most `max` — but the cut
    /// prefers the last machine boundary at or below `max`, so one
    /// machine's run is kept whole whenever it fits. A run longer than
    /// `max` is cut mid-machine; the no-span rule then stalls the
    /// remainder until the frame drains, preserving order at the cost of
    /// pipelining that one machine.
    pub fn seal_cut(&self, max: usize) -> usize {
        let max = max.max(1);
        if self.open.len() <= max {
            return self.open.len();
        }
        let mut cut = max;
        while cut > 1 && self.open[cut - 1].hash == self.open[cut].hash {
            cut -= 1;
        }
        if cut == 1 && self.open[0].hash == self.open[1].hash {
            // One machine overflows the whole frame: no boundary exists.
            return max;
        }
        cut
    }

    /// Whether writing `open[..cut]` now would put some machine on the
    /// wire in two frames at once (the caller must drain first).
    pub fn wire_conflicts(&self, cut: usize) -> bool {
        !self.wired.is_empty()
            && self.open[..cut]
                .iter()
                .any(|e| self.wired.contains_key(&e.hash))
    }

    /// Removes the first `cut` open lines for writing.
    pub fn take_open(&mut self, cut: usize) -> Vec<Entry> {
        let rest = self.open.split_off(cut);
        std::mem::replace(&mut self.open, rest)
    }

    /// Records a written frame as inflight.
    pub fn sent(&mut self, entries: Vec<Entry>, sent_at: Instant) {
        for e in &entries {
            *self.wired.entry(e.hash).or_insert(0) += 1;
        }
        self.inflight.push_back(SentFrame { entries, sent_at });
    }

    /// Pops the oldest inflight frame (its replies are about to be
    /// processed), releasing its machines from the no-span ledger.
    pub fn complete_oldest(&mut self) -> Option<SentFrame> {
        let frame = self.inflight.pop_front()?;
        for e in &frame.entries {
            if let Some(n) = self.wired.get_mut(&e.hash) {
                *n -= 1;
                if *n == 0 {
                    self.wired.remove(&e.hash);
                }
            }
        }
        Some(frame)
    }

    /// Tears the pipe down after a member failure: every unacked line —
    /// inflight frames in send order, then the open frame — in original
    /// order. The pipe comes back empty.
    pub fn fail(&mut self) -> Vec<Entry> {
        let mut out = Vec::new();
        for f in self.inflight.drain(..) {
            out.extend(f.entries);
        }
        self.wired.clear();
        out.append(&mut self.open);
        out
    }

    /// Extracts every open line whose machine is in `hashes`, preserving
    /// the relative order of both the extracted and the remaining lines.
    /// Used after a redirect so a re-routed machine's later lines follow
    /// its replayed ones.
    pub fn extract_open_matching(&mut self, hashes: &std::collections::HashSet<u64>) -> Vec<Entry> {
        if hashes.is_empty() {
            return Vec::new();
        }
        let mut kept = Vec::with_capacity(self.open.len());
        let mut out = Vec::new();
        for e in self.open.drain(..) {
            if hashes.contains(&e.hash) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.open = kept;
        out
    }

    /// Removes and returns the whole open frame (busy displacement).
    pub fn take_all_open(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.open)
    }
}

/// Model-based property tests: arbitrary interleavings of observes,
/// busy displacement, redirects, and member deaths must never reorder a
/// machine's samples and never lose a sample the server acknowledged.
///
/// The harness replays the engine's bookkeeping discipline
/// ([`crate::cluster::ClusterClient::pump`]'s route → seal → drain
/// cycle) against a **model server** that applies each line only if its
/// tick is the machine's next expected one — replays of already-applied
/// ticks are stale no-ops (exactly the real server's monotone-tick
/// ingest), and a tick *beyond* the expected one is a gap: proof that a
/// sample was lost or leapfrogged. If every generated interleaving
/// settles with every pushed tick applied and no gap ever seen, the
/// pipe's displacement paths preserve both invariants.
#[cfg(test)]
mod props {
    use super::*;
    use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
    use proptest::prelude::*;
    use std::collections::HashSet;

    const MACHINES: u32 = 5;
    const MAX_FRAME: usize = 4;

    /// One step of an interleaving, decoded from a generated tuple.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// A new observe for machine `m` (ticks are per-machine serial).
        Push(u32),
        /// Seal and write the open frame if the no-span rule allows.
        Seal,
        /// Drain the oldest frame: every line acked.
        DrainOk,
        /// Drain the oldest frame: the server applied only the first
        /// `k` lines, then busy-poisoned the rest (PROTOCOL.md §2.1).
        DrainBusy(usize),
        /// The member died with frames on the wire, after the server
        /// had already applied the first `k` wired lines (the
        /// acks-lost ambiguity a replay must absorb as stale).
        Lost(usize),
        /// Drain the oldest frame: machine `m` answered `not-mine`,
        /// every other line acked.
        Redirect(u32),
    }

    fn decode(sel: u32, m: u32, k: usize) -> Op {
        match sel {
            0..=4 => Op::Push(m),
            5 | 6 => Op::Seal,
            7 | 8 => Op::DrainOk,
            9 => Op::DrainBusy(k % (MAX_FRAME + 1)),
            10 => Op::Lost(k),
            _ => Op::Redirect(m),
        }
    }

    fn obs(m: u32, tick: u64) -> Entry {
        Entry {
            hash: u64::from(m),
            req: Request::Observe {
                cell: CellId::new("p"),
                machine: MachineId(m),
                task: TaskId::new(JobId(1), 0),
                usage: 0.2,
                limit: 0.5,
                mem: None,
                tick,
            },
            kind: EntryKind::Send { tried: 0 },
        }
    }

    fn key(e: &Entry) -> (u32, u64) {
        match &e.req {
            Request::Observe { machine, tick, .. } => (machine.0, *tick),
            _ => unreachable!("harness only queues observes"),
        }
    }

    /// The model server: monotone per-machine tick ingest.
    struct Model {
        applied: Vec<u64>,
    }

    impl Model {
        fn apply(&mut self, e: &Entry) -> Result<(), String> {
            let (m, t) = key(e);
            let next = &mut self.applied[m as usize];
            if t > *next {
                return Err(format!(
                    "gap: machine {m} applied tick {t} but expected {next} — \
                     a sample was lost or reordered"
                ));
            }
            if t == *next {
                *next += 1;
            }
            // t < next: a replayed line the server already applied — stale.
            Ok(())
        }
    }

    /// The engine routes displaced lines back into the pipe before every
    /// seal or drain; replaying that here keeps waiting empty at
    /// displacement time, so displaced tails land in original order.
    fn route(pipe: &mut MemberPipe, waiting: &mut Vec<Entry>) {
        for e in waiting.drain(..) {
            pipe.push(e);
        }
    }

    fn seal(pipe: &mut MemberPipe) {
        if pipe.open_len() == 0 {
            return;
        }
        let cut = pipe.seal_cut(MAX_FRAME);
        if pipe.wire_conflicts(cut) {
            // The engine drains before writing; the harness just defers.
            return;
        }
        let frame = pipe.take_open(cut);
        pipe.sent(frame, Instant::now());
    }

    /// No machine may occupy two on-the-wire frames at once.
    fn check_no_span(pipe: &MemberPipe) -> Result<(), String> {
        for m in 0..MACHINES {
            let frames = pipe
                .inflight
                .iter()
                .filter(|f| f.entries.iter().any(|e| e.hash == u64::from(m)))
                .count();
            if frames > 1 {
                return Err(format!("machine {m} spans {frames} wired frames"));
            }
        }
        Ok(())
    }

    fn run_interleaving(ops: &[(u32, u32, usize)]) -> Result<(), String> {
        let mut pipe = MemberPipe::default();
        let mut waiting: Vec<Entry> = Vec::new();
        let mut next_tick = vec![0u64; MACHINES as usize];
        let mut model = Model {
            applied: vec![0; MACHINES as usize],
        };

        for &(sel, m, k) in ops {
            route(&mut pipe, &mut waiting);
            match decode(sel, m, k) {
                Op::Push(m) => {
                    let t = next_tick[m as usize];
                    next_tick[m as usize] += 1;
                    pipe.push(obs(m, t));
                }
                Op::Seal => seal(&mut pipe),
                Op::DrainOk => {
                    if let Some(f) = pipe.complete_oldest() {
                        for e in &f.entries {
                            model.apply(e)?;
                        }
                    }
                }
                Op::DrainBusy(k) => {
                    if let Some(f) = pipe.complete_oldest() {
                        let k = k.min(f.entries.len());
                        for e in &f.entries[..k] {
                            model.apply(e)?;
                        }
                        // The rejected tail and the whole open frame are
                        // displaced behind it, in order.
                        waiting.extend(f.entries.into_iter().skip(k));
                        waiting.extend(pipe.take_all_open());
                    }
                }
                Op::Lost(k) => {
                    // The server applied a prefix of the wired byte
                    // stream before the connection died; none of the
                    // acks came back, so the client replays everything.
                    let open_count = pipe.open_len();
                    let all = pipe.fail();
                    let wired_count = all.len() - open_count;
                    for e in &all[..k.min(wired_count)] {
                        model.apply(e)?;
                    }
                    waiting.extend(all);
                }
                Op::Redirect(m) => {
                    if let Some(f) = pipe.complete_oldest() {
                        let mut bounced = false;
                        for e in f.entries {
                            if key(&e).0 == m {
                                bounced = true;
                                waiting.push(e);
                            } else {
                                model.apply(&e)?;
                            }
                        }
                        if bounced {
                            // Later open lines of the redirected machine
                            // must follow its replayed ones.
                            let hashes: HashSet<u64> = [u64::from(m)].into();
                            waiting.extend(pipe.extract_open_matching(&hashes));
                        }
                    }
                }
            }
            check_no_span(&pipe)?;
        }

        // Settle: route, seal, and drain cleanly until nothing is left.
        let mut guard = 0u32;
        while !(pipe.is_empty() && waiting.is_empty()) {
            route(&mut pipe, &mut waiting);
            if pipe.inflight_len() > 0 {
                let f = pipe.complete_oldest().expect("inflight frame");
                for e in &f.entries {
                    model.apply(e)?;
                }
            } else {
                seal(&mut pipe);
            }
            check_no_span(&pipe)?;
            guard += 1;
            if guard > 100_000 {
                return Err("settle did not converge".to_string());
            }
        }

        for m in 0..MACHINES as usize {
            if model.applied[m] != next_tick[m] {
                return Err(format!(
                    "machine {m}: pushed {} ticks but only {} applied — samples lost",
                    next_tick[m], model.applied[m]
                ));
            }
        }
        Ok(())
    }

    proptest! {
        #[test]
        fn interleavings_never_reorder_or_lose_samples(
            ops in proptest::collection::vec((0u32..12, 0u32..MACHINES, 0usize..24), 1..120),
        ) {
            let outcome = run_interleaving(&ops);
            prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_trace::ids::{CellId, JobId, MachineId, TaskId};

    fn obs(m: u32, tick: u64) -> Entry {
        Entry {
            hash: u64::from(m),
            req: Request::Observe {
                cell: CellId::new("p"),
                machine: MachineId(m),
                task: TaskId::new(JobId(1), 0),
                usage: 0.2,
                limit: 0.5,
                mem: None,
                tick,
            },
            kind: EntryKind::Send { tried: 0 },
        }
    }

    #[test]
    fn seal_prefers_machine_boundaries() {
        let mut p = MemberPipe::default();
        for t in 0..3 {
            p.push(obs(1, t));
        }
        for t in 0..3 {
            p.push(obs(2, t));
        }
        // max 4 would cut machine 2's run at its second line; the cut
        // retreats to the boundary at 3.
        assert_eq!(p.seal_cut(4), 3);
        // Everything fits: take it all.
        assert_eq!(p.seal_cut(6), 6);
        assert_eq!(p.seal_cut(16), 6);
    }

    #[test]
    fn seal_cuts_mid_machine_only_when_one_run_overflows() {
        let mut p = MemberPipe::default();
        for t in 0..5 {
            p.push(obs(7, t));
        }
        assert_eq!(p.seal_cut(3), 3, "an overflowing run is cut at max");
    }

    #[test]
    fn no_span_ledger_tracks_wire_occupancy() {
        let mut p = MemberPipe::default();
        p.push(obs(1, 0));
        let f = p.take_open(1);
        p.sent(f, Instant::now());
        p.push(obs(1, 1));
        p.push(obs(2, 0));
        assert!(p.wire_conflicts(2), "machine 1 is already on the wire");
        p.complete_oldest().expect("one frame inflight");
        assert!(!p.wire_conflicts(2), "drained frames release the ledger");
    }

    #[test]
    fn fail_returns_everything_in_send_order() {
        let mut p = MemberPipe::default();
        p.push(obs(1, 0));
        p.push(obs(2, 0));
        let f = p.take_open(2);
        p.sent(f, Instant::now());
        p.push(obs(1, 1));
        let all = p.fail();
        let ticks: Vec<(u64, u64)> = all
            .iter()
            .map(|e| match &e.req {
                Request::Observe { machine, tick, .. } => (u64::from(machine.0), *tick),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ticks, vec![(1, 0), (2, 0), (1, 1)]);
        assert!(p.is_empty());
    }
}
