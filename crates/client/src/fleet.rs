//! The fleet driver: replays a synthetic fleet against a whole ring of
//! cluster members and folds the per-member results into one
//! [`LoadReport`] via [`LoadReport::merge`].
//!
//! Routing is client-side, exactly as `ClusterClient` routes: every
//! machine's samples go to the key's live owner, and (with mirroring
//! on) to its replica — but the driver precomputes whole per-member
//! request plans and streams them over one pipelined connection per
//! member, because the interesting throughput number is the fleet's,
//! not a router's. [`verify`] then proves end-state identity: each
//! machine's served prediction must be bit-identical to an offline
//! recompute over the same sample stream ([predictions are a pure
//! function of ingested state](oc_core::ingest::IncrementalView)), the
//! strongest form of the `lost == 0` ledger.

use crate::client::{Client, ClientConfig};
use crate::cluster::ClusterClient;
use crate::error::ClientError;
use crate::loadgen::{report_histogram, HistAcc, LoadReport, LATENCY_HIST_HI_US, SETUP_HIST_HI_US};
use oc_cluster::RingSpec;
use oc_core::ingest::IncrementalView;
use oc_core::predictor::clamp_prediction;
use oc_serve::config::ServeConfig;
use oc_serve::proto::{Request, Response, StatsSnapshot};
use oc_serve::shard::key_hash;
use oc_trace::ids::{CellId, JobId, MachineId, TaskId};
use std::net::SocketAddr;
use std::time::Instant;

/// Per-task limit every fleet sample carries.
const FLEET_LIMIT: f64 = 0.5;

/// The single synthetic task each fleet machine runs.
fn fleet_task() -> TaskId {
    TaskId::new(JobId(1), 0)
}

/// Deterministic per-(machine, tick) usage in `(0, 0.5]`. Every machine
/// traces a distinct series, so cross-machine state mixups cannot
/// produce a coincidentally-correct prediction.
pub fn fleet_usage(machine: u64, tick: u64) -> f64 {
    0.05 + 0.45 * ((machine.wrapping_mul(31).wrapping_add(tick.wrapping_mul(7)) % 97) as f64 / 97.0)
}

/// Shape of one fleet drive.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Cell name (the routing key's first half).
    pub cell: String,
    /// Fleet size.
    pub machines: u64,
    /// First tick of this drive (segmented drives continue a series).
    pub first_tick: u64,
    /// Ticks driven, `first_tick..first_tick + ticks`.
    pub ticks: u64,
    /// Mirror every sample to the key's replica member.
    pub mirror: bool,
    /// `BATCH` frame size per connection (1 disables framing).
    pub batch: usize,
    /// Pipeline window per connection, in *frames* of `batch` lines.
    /// The in-flight volume is `window × batch` lines; keep it at or
    /// below the members' shard queue depth or an open-throttle drive
    /// turns into a `BUSY` retry storm.
    pub window: usize,
    /// Fetch each member's `STATS` after the drive. Segmented drives
    /// skip intermediate fetches — only the final state matters, and a
    /// mid-run snapshot would double-count when reports merge.
    pub fetch_stats: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            cell: "fleet".to_string(),
            machines: 1000,
            first_tick: 0,
            ticks: 30,
            mirror: true,
            batch: 64,
            window: 32,
            fetch_stats: true,
        }
    }
}

/// A zeroed report for folding.
fn empty_report() -> LoadReport {
    LoadReport {
        sent: 0,
        ok: 0,
        busy: 0,
        errors: 0,
        retries: 0,
        reconnects: 0,
        faults: 0,
        acked_observes: 0,
        lost: 0,
        failed_connections: 0,
        conn_failures: Vec::new(),
        connections: 0,
        wall_secs: 0.0,
        achieved_qps: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        max_us: 0.0,
        setup_p50_us: 0.0,
        setup_p99_us: 0.0,
        setup_max_us: 0.0,
        latency: report_histogram(&[], LATENCY_HIST_HI_US),
        setup: report_histogram(&[], SETUP_HIST_HI_US),
        server: StatsSnapshot::default(),
    }
}

/// Machines in a block of streamed plan requests. Each block expands to
/// `PLAN_BLOCK_MACHINES × ticks` [`Request`]s, so per-member request
/// memory stays a few megabytes no matter the fleet size — materializing
/// a whole million-machine plan up front cost hundreds of megabytes of
/// fresh pages, which on slow first-touch hosts dwarfed the drive itself.
const PLAN_BLOCK_MACHINES: usize = 4096;

/// Builds one machine list per member: every machine on its owner,
/// mirrored to its replica when that replica held a role under the full
/// ring (members enforce all-alive ownership, so any other target would
/// bounce the mirror with `not-mine`). The per-tick requests are
/// expanded block-wise by [`drive_member`], in the same
/// machine-major/tick-minor order a materialized plan had.
fn build_plans(
    spec: RingSpec,
    alive: &[bool],
    cfg: &FleetConfig,
) -> Result<Vec<Vec<u32>>, ClientError> {
    let ring = spec.build();
    let cell = CellId::new(cfg.cell.clone());
    let all = vec![true; spec.nodes];
    let mut plans: Vec<Vec<u32>> = (0..spec.nodes).map(|_| Vec::new()).collect();
    for m in 0..cfg.machines {
        let machine = MachineId(m as u32);
        let h = key_hash(&(cell.clone(), machine));
        let (owner, replica) = ring.routes(h, alive);
        let Some(owner) = owner else {
            return Err(ClientError::Config("no live ring member".to_string()));
        };
        if cfg.mirror {
            let (o_all, r_all) = ring.routes(h, &all);
            let mirror_to = replica
                .filter(|r| Some(*r) == o_all || Some(*r) == r_all)
                .filter(|r| *r != owner);
            if let Some(r) = mirror_to {
                plans[r].push(machine.0);
            }
        }
        plans[owner].push(machine.0);
    }
    Ok(plans)
}

/// Expands one block of a member's machine list into per-tick `OBSERVE`
/// requests, reusing `reqs`'s storage across blocks.
fn expand_block(reqs: &mut Vec<Request>, cell: &CellId, machines: &[u32], cfg: &FleetConfig) {
    let task = fleet_task();
    reqs.clear();
    for &m in machines {
        for t in cfg.first_tick..cfg.first_tick + cfg.ticks {
            reqs.push(Request::Observe {
                cell: cell.clone(),
                machine: MachineId(m),
                task,
                usage: fleet_usage(u64::from(m), t),
                limit: FLEET_LIMIT,
                mem: None,
                tick: t,
            });
        }
    }
}

/// Streams one member's plan over one pipelined connection and measures
/// it as a single-connection [`LoadReport`]. The plan arrives as a
/// machine list and is expanded into requests block by block.
fn drive_member(addr: SocketAddr, index: usize, plan: Vec<u32>, cfg: &FleetConfig) -> LoadReport {
    let mut report = empty_report();
    report.connections = 1;
    // A fleet drive is open-throttle by design, so a member buried in
    // first-observe allocation (a million new machine views) can hold
    // its queue full for whole seconds. Patience is cheaper than a
    // failed drive: double the default retry budget.
    let retry = crate::client::RetryPolicy {
        max_attempts: 12,
        ..Default::default()
    };
    // `pipeline_window` counts *lines*: a window of `cfg.window` frames
    // must translate to `window × batch` lines or batching degrades to
    // stop-and-wait per frame — the regression that held the routed
    // cluster path 5× under the single-node data plane.
    let client_cfg = ClientConfig::default()
        .with_seed(0xF1EE7 + index as u64)
        .with_batch(cfg.batch.max(1))
        .with_pipeline_window(cfg.window.max(1).saturating_mul(cfg.batch.max(1)))
        .with_retry(retry);
    let setup_start = Instant::now();
    let mut client = match Client::connect(addr, client_cfg) {
        Ok(c) => c,
        Err(e) => {
            report.failed_connections = 1;
            report.conn_failures.push(format!("member {index}: {e}"));
            return report;
        }
    };
    let setup_us = [setup_start.elapsed().as_secs_f64() * 1e6];
    let start = Instant::now();
    let total_lines = plan.len() as u64 * cfg.ticks;
    let mut latencies = HistAcc::new(LATENCY_HIST_HI_US);
    let mut ok = 0u64;
    let mut errors = 0u64;
    let cell = CellId::new(cfg.cell.clone());
    let mut reqs: Vec<Request> = Vec::new();
    for machines in plan.chunks(PLAN_BLOCK_MACHINES.max(1)) {
        expand_block(&mut reqs, &cell, machines, cfg);
        let outcome = client.pipeline_with(&reqs, |_, resp, lat_us| {
            latencies.push(lat_us);
            match resp {
                Response::Err { .. } => errors += 1,
                _ => ok += 1,
            }
        });
        if let Err(e) = outcome {
            report.failed_connections = 1;
            report.conn_failures.push(format!("member {index}: {e}"));
            break;
        }
    }
    report.wall_secs = start.elapsed().as_secs_f64();
    report.sent = total_lines;
    report.ok = ok;
    report.errors = errors;
    report.acked_observes = ok;
    let m = client.metrics();
    report.busy = m.busy_retries;
    report.retries = m.retries;
    report.reconnects = m.reconnects;
    report.latency = latencies.finish();
    report.setup = report_histogram(&setup_us, SETUP_HIST_HI_US);
    report.p50_us = report.latency.quantile(50.0);
    report.p99_us = report.latency.quantile(99.0);
    report.max_us = report.latency.max_or_zero();
    report.setup_p50_us = setup_us[0];
    report.setup_p99_us = setup_us[0];
    report.setup_max_us = setup_us[0];
    let resolved = ok + errors;
    report.achieved_qps = if report.wall_secs > 0.0 {
        resolved as f64 / report.wall_secs
    } else {
        0.0
    };
    if cfg.fetch_stats {
        match client.stats() {
            Ok(s) => report.server = s,
            Err(e) => {
                report.failed_connections = 1;
                report
                    .conn_failures
                    .push(format!("member {index} stats: {e}"));
            }
        }
    }
    let accounted = report.server.observes + report.server.stale + report.server.errors;
    report.lost = if cfg.fetch_stats {
        report.acked_observes.saturating_sub(accounted)
    } else {
        0
    };
    report
}

/// Drives the fleet: one plan and one pipelined connection per live
/// member, in parallel, folded into one report.
///
/// # Errors
///
/// Plan construction failures (dead ring, bad membership); per-member
/// transport failures land in the report's `failed_connections`
/// instead.
pub fn run(
    spec: RingSpec,
    addrs: &[SocketAddr],
    alive: &[bool],
    cfg: &FleetConfig,
) -> Result<LoadReport, ClientError> {
    if addrs.len() != spec.nodes || alive.len() != spec.nodes {
        return Err(ClientError::Config(format!(
            "{} addresses / {} liveness flags for a {}-node ring",
            addrs.len(),
            alive.len(),
            spec.nodes
        )));
    }
    let plans = build_plans(spec, alive, cfg)?;
    let mut joins = Vec::new();
    for (index, plan) in plans.into_iter().enumerate() {
        if plan.is_empty() {
            continue;
        }
        let addr = addrs[index];
        let cfg = cfg.clone();
        joins.push(
            std::thread::Builder::new()
                .name("fleet-conn".to_string())
                .spawn(move || drive_member(addr, index, plan, &cfg))?,
        );
    }
    let mut merged = empty_report();
    for j in joins {
        match j.join() {
            Ok(r) => merged.merge(&r),
            Err(_) => {
                merged.failed_connections += 1;
                merged
                    .conn_failures
                    .push("fleet thread panicked".to_string());
            }
        }
    }
    Ok(merged)
}

/// Drives the fleet through one [`ClusterClient`] — every sample routed
/// per-key with failover, mirroring, and ring auto-adoption live, the
/// path an application's writes take. (The planned [`run`] measures raw
/// member throughput over precomputed per-member streams instead.) The
/// `cluster-replace` bench phase uses this for its post-replacement
/// segment, where the client starts on a stale generation and must
/// adopt the pushed ring on its own.
///
/// Samples go through [`ClusterClient::observe_pipelined`]: consecutive
/// same-member runs coalesce into `BATCH` frames and every member's
/// window rides the wire concurrently, so this path now paces with the
/// planned drive instead of serializing one round trip per line.
/// Latency is measured per *frame* ack and attributed to every line the
/// frame resolved.
///
/// `cfg.mirror`, `cfg.batch`, and `cfg.window` are ignored here: the
/// client's own [`ClusterClientConfig`](crate::cluster::ClusterClientConfig)
/// governs mirroring, frame size (`client.batch`), and window
/// (`pipeline_frames`).
///
/// # Errors
///
/// Routing exhaustion and non-transport failures. Individual member
/// deaths are absorbed as failovers, visible in `cc.metrics()`.
pub fn run_routed(cc: &mut ClusterClient, cfg: &FleetConfig) -> Result<LoadReport, ClientError> {
    let cell = CellId::new(cfg.cell.clone());
    let task = fleet_task();
    let mut report = empty_report();
    report.connections = 1;
    let total = cfg.machines * cfg.ticks;
    let mut latencies = HistAcc::new(LATENCY_HIST_HI_US);
    let start = Instant::now();
    for m in 0..cfg.machines {
        let machine = MachineId(m as u32);
        for t in cfg.first_tick..cfg.first_tick + cfg.ticks {
            cc.observe_pipelined(&cell, machine, task, fleet_usage(m, t), FLEET_LIMIT, t)?;
        }
        if m % 1024 == 0 {
            for (us, n) in cc.take_frame_latencies() {
                latencies.push_n(us, n);
            }
        }
    }
    cc.flush_pipeline()?;
    cc.flush_mirrors()?;
    for (us, n) in cc.take_frame_latencies() {
        latencies.push_n(us, n);
    }
    let (ok, errors, busy) = cc.take_pipeline_tallies();
    report.wall_secs = start.elapsed().as_secs_f64();
    report.sent = total;
    report.ok = ok;
    report.errors = errors;
    report.busy = busy;
    report.acked_observes = ok;
    report.latency = latencies.finish();
    report.p50_us = report.latency.quantile(50.0);
    report.p99_us = report.latency.quantile(99.0);
    report.max_us = report.latency.max_or_zero();
    report.achieved_qps = if report.wall_secs > 0.0 {
        total as f64 / report.wall_secs
    } else {
        0.0
    };
    if cfg.fetch_stats {
        report.server = cc.stats()?;
        let accounted = report.server.observes + report.server.stale + report.server.errors;
        report.lost = report.acked_observes.saturating_sub(accounted);
    }
    Ok(report)
}

/// Proves served-vs-offline final-state identity: for every machine,
/// the prediction served by its current live owner must be bit-identical
/// to an offline recompute over the machine's full sample stream
/// (`0..ticks`). Returns the mismatch count — the cluster's true `lost`
/// figure, stronger than counter arithmetic because it checks *state*,
/// not bookkeeping.
///
/// # Errors
///
/// Ring/membership validation and predictor construction; a machine
/// whose predict fails (unreachable owner, `unknown-machine`) counts as
/// a mismatch rather than erroring the sweep.
pub fn verify(
    spec: RingSpec,
    addrs: &[SocketAddr],
    alive: &[bool],
    cell: &str,
    machines: u64,
    ticks: u64,
) -> Result<u64, ClientError> {
    if addrs.len() != spec.nodes || alive.len() != spec.nodes {
        return Err(ClientError::Config(format!(
            "{} addresses / {} liveness flags for a {}-node ring",
            addrs.len(),
            alive.len(),
            spec.nodes
        )));
    }
    let ring = spec.build();
    let cell = CellId::new(cell);
    let task = fleet_task();
    // The members run `ServeConfig::default()` semantics; rebuild the
    // same predictor and view shape for the offline recompute.
    let serve_cfg = ServeConfig::default();
    let predictor = serve_cfg
        .predictor
        .build()
        .map_err(|e| ClientError::Config(format!("predictor: {e}")))?;
    let mut clients: Vec<Option<Client>> = (0..spec.nodes).map(|_| None).collect();
    let mut mismatches = 0u64;
    for m in 0..machines {
        let machine = MachineId(m as u32);
        let h = key_hash(&(cell.clone(), machine));
        let Some(owner) = ring.owner(h, alive) else {
            mismatches += 1;
            continue;
        };
        if clients[owner].is_none() {
            clients[owner] = Client::connect(addrs[owner], ClientConfig::default()).ok();
        }
        let served = clients[owner]
            .as_mut()
            .ok_or(())
            .and_then(|c| c.predict(&cell, machine).map_err(|_| ()));
        let mut view = IncrementalView::new(serve_cfg.machine_capacity, &serve_cfg.sim)
            .with_max_gap(serve_cfg.max_tick_gap);
        for t in 0..ticks {
            let _ = view.ingest(oc_trace::Tick(t), task, FLEET_LIMIT, fleet_usage(m, t));
        }
        view.flush();
        let expected = clamp_prediction(predictor.predict(view.view()), view.view());
        match served {
            Ok(peak) if peak.to_bits() == expected.to_bits() => {}
            _ => mismatches += 1,
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_serve::server::Server;

    fn ring_servers(nodes: usize) -> (RingSpec, Vec<Server>, Vec<SocketAddr>) {
        let spec = RingSpec::new(nodes);
        let ring = spec.build();
        let servers: Vec<Server> = (0..nodes)
            .map(|i| {
                let cfg = ServeConfig::default()
                    .with_addr("127.0.0.1:0")
                    .with_shards(1)
                    .with_ownership(ring.ownership_for(i));
                Server::start(cfg).expect("server starts")
            })
            .collect();
        let addrs = servers.iter().map(|s| s.addr()).collect();
        (spec, servers, addrs)
    }

    #[test]
    fn fleet_drive_verifies_bit_identical() {
        let (spec, servers, addrs) = ring_servers(3);
        let alive = vec![true; 3];
        let cfg = FleetConfig {
            machines: 60,
            ticks: 10,
            ..FleetConfig::default()
        };
        let report = run(spec, &addrs, &alive, &cfg).expect("fleet run");
        assert_eq!(report.failed_connections, 0, "{:?}", report.conn_failures);
        assert_eq!(report.ok, report.sent);
        assert_eq!(report.lost, 0);
        // Owner + replica each ingested every machine's stream.
        assert_eq!(report.server.observes, 60 * 10 * 2);
        let mismatches = verify(spec, &addrs, &alive, "fleet", 60, 10).expect("verify");
        assert_eq!(mismatches, 0);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn routed_drive_matches_offline_recompute() {
        let (spec, servers, addrs) = ring_servers(3);
        let mut cc =
            ClusterClient::connect(spec, &addrs, crate::cluster::ClusterClientConfig::default())
                .expect("connect");
        let cfg = FleetConfig {
            machines: 40,
            ticks: 8,
            ..FleetConfig::default()
        };
        let report = run_routed(&mut cc, &cfg).expect("routed run");
        assert_eq!(report.ok, report.sent);
        assert_eq!(report.lost, 0);
        // Owner + mirrored replica each ingested every machine's stream.
        assert_eq!(report.server.observes, 40 * 8 * 2);
        assert_eq!(cc.metrics().redirects, 0);
        let mismatches = verify(spec, &addrs, &[true; 3], "fleet", 40, 8).expect("verify");
        assert_eq!(mismatches, 0);
        for s in servers {
            s.shutdown();
        }
    }

    /// A member dies with pipelined frames still on its wire. The
    /// unacknowledged tail must replay through failover without
    /// reordering any machine's stream: the surviving members' served
    /// predictions stay bit-identical to an offline recompute over each
    /// machine's *full* series.
    #[test]
    fn pipelined_drive_replays_tail_through_failover() {
        let (spec, mut servers, addrs) = ring_servers(3);
        let mut ccfg = crate::cluster::ClusterClientConfig::default();
        // Real frames (the default client batch is 1): multi-line
        // coalescing plus several frames in flight per member.
        ccfg.client = ccfg.client.with_batch(16);
        ccfg.pipeline_frames = 8;
        let mut cc = ClusterClient::connect(spec, &addrs, ccfg).expect("connect");
        let cell = CellId::new("fleet");
        let task = fleet_task();
        let machines = 45u64;
        for m in 0..machines {
            let machine = MachineId(m as u32);
            for t in 0..6 {
                cc.observe_pipelined(&cell, machine, task, fleet_usage(m, t), FLEET_LIMIT, t)
                    .expect("observe");
            }
        }
        // Member 0 goes away while the client still holds undrained
        // frames for it (nothing was flushed yet).
        servers.remove(0).shutdown();
        for m in 0..machines {
            let machine = MachineId(m as u32);
            for t in 6..12 {
                cc.observe_pipelined(&cell, machine, task, fleet_usage(m, t), FLEET_LIMIT, t)
                    .expect("observe after death");
            }
        }
        cc.flush_pipeline().expect("flush");
        assert!(!cc.alive()[0], "member 0 discovered dead");
        let m = cc.metrics();
        assert!(m.replayed_tails >= 1, "no tail replayed: {m:?}");
        assert!(m.frames > 0 && m.coalesced_runs > 0, "{m:?}");
        let alive = vec![false, true, true];
        let mismatches = verify(spec, &addrs, &alive, "fleet", machines, 12).expect("verify");
        assert_eq!(mismatches, 0, "pipelined replay broke bit-identity");
        for s in servers {
            s.shutdown();
        }
    }

    /// Segmented drive with a member stopped between the halves: the
    /// merged report and the identity sweep must both come out clean.
    #[test]
    fn segmented_drive_survives_member_stop() {
        let (spec, mut servers, addrs) = ring_servers(3);
        let alive = vec![true; 3];
        let first = FleetConfig {
            machines: 45,
            first_tick: 0,
            ticks: 6,
            fetch_stats: false,
            ..FleetConfig::default()
        };
        let r1 = run(spec, &addrs, &alive, &first).expect("first half");
        assert_eq!(r1.failed_connections, 0, "{:?}", r1.conn_failures);

        // Graceful stop of member 0 (SIGKILL needs child processes; the
        // supervisor smoke covers that path).
        servers.remove(0).shutdown();
        let shrunk = vec![false, true, true];
        let second = FleetConfig {
            machines: 45,
            first_tick: 6,
            ticks: 6,
            fetch_stats: true,
            ..FleetConfig::default()
        };
        let r2 = run(spec, &addrs, &shrunk, &second).expect("second half");
        assert_eq!(r2.failed_connections, 0, "{:?}", r2.conn_failures);
        let sent_first = r1.sent;
        let mut merged = r1;
        merged.merge(&r2);
        assert_eq!(merged.sent, sent_first + r2.sent);
        // Keys that had a role on the dead member lose their mirror
        // (replication is degraded until the ring is regenerated), so
        // the second half sends strictly less.
        assert!(r2.sent < sent_first, "{} !< {sent_first}", r2.sent);

        let mismatches = verify(spec, &addrs, &shrunk, "fleet", 45, 12).expect("verify");
        assert_eq!(mismatches, 0, "post-failover predictions diverged");
        for s in servers {
            s.shutdown();
        }
    }
}
