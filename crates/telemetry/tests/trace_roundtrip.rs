//! End-to-end tracing pipeline test: record spans/events, drain, export
//! JSONL, parse it back, and check both field fidelity and span nesting.

use oc_telemetry::json;
use oc_telemetry::trace;

#[test]
fn traced_run_round_trips_through_jsonl() {
    trace::enable();
    {
        let _outer = trace::span("rt.request");
        trace::event("rt.parse", 3, 0);
        {
            let _inner = trace::span_ab("rt.predict", 42, 7);
            trace::event("rt.lookup", 0, 0);
        }
        trace::event("rt.respond", 0, 1);
    }
    trace::disable();

    let events = trace::drain();
    let mine: Vec<_> = events
        .iter()
        .filter(|e| e.name.starts_with("rt."))
        .cloned()
        .collect();
    assert_eq!(mine.len(), 5);

    let mut buf = Vec::new();
    trace::write_jsonl(&mut buf, &mine).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), 5, "one JSON object per line");

    let parsed = json::parse_jsonl(&text).unwrap();
    assert_eq!(parsed.len(), mine.len());
    for (p, e) in parsed.iter().zip(&mine) {
        assert!(p.matches(e), "{p:?} vs {e:?}");
    }

    // Re-assemble the nesting from the parsed stream alone.
    let by_name = |n: &str| parsed.iter().find(|p| p.name == n).unwrap();
    let outer = by_name("rt.request");
    let inner = by_name("rt.predict");
    assert_eq!(outer.depth, 0);
    assert_eq!(inner.depth, 1);
    assert_eq!(by_name("rt.parse").depth, 1);
    assert_eq!(by_name("rt.lookup").depth, 2);
    assert!(outer.ts_us <= inner.ts_us);
    assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    assert_eq!((inner.a, inner.b), (42, 7), "span payload words survive");
}
