//! Property tests for [`MetricsSnapshot`] aggregation: merging per-shard
//! snapshots must equal summing every shard's raw updates, which is the
//! law the serve layer's `METRICS` verb relies on when it folds shard
//! registries into one service-wide exposition.

use oc_telemetry::metrics::{encode_exposition, parse_exposition, MetricsSnapshot};
use oc_telemetry::MetricsRegistry;
use proptest::prelude::*;

const HIST_LO: f64 = 0.0;
const HIST_HI: f64 = 100.0;
const HIST_BINS: usize = 25;

/// Per-shard raw updates: counter adds, gauge deltas (biased by -50 at
/// apply time so gauges go negative), histogram samples. The vendored
/// proptest has no signed-range strategy, hence the unsigned encoding.
type ShardLoad = (Vec<u64>, Vec<u64>, Vec<f64>);

fn shard_load() -> impl Strategy<Value = ShardLoad> {
    (
        proptest::collection::vec(0u64..1_000, 0..20),
        proptest::collection::vec(0u64..100, 0..20),
        proptest::collection::vec(-20.0f64..150.0, 0..30),
    )
}

/// `a ⊕ b` without mutating either operand.
fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Structural equality with float-associativity slack on histogram
/// sums (bin counts, extremes, counters, and gauges must be exact).
fn assert_equivalent(a: &MetricsSnapshot, b: &MetricsSnapshot) -> Result<(), String> {
    prop_assert_eq!(a.counter("prop.counter"), b.counter("prop.counter"));
    prop_assert_eq!(a.gauge("prop.gauge"), b.gauge("prop.gauge"));
    match (a.histogram("prop.hist"), b.histogram("prop.hist")) {
        (None, None) => {}
        (Some(ha), Some(hb)) => {
            prop_assert_eq!(ha.count(), hb.count());
            prop_assert_eq!(ha.hist.counts(), hb.hist.counts());
            prop_assert_eq!(ha.hist.underflow(), hb.hist.underflow());
            prop_assert_eq!(ha.hist.overflow(), hb.hist.overflow());
            prop_assert_eq!(ha.max.to_bits(), hb.max.to_bits());
            prop_assert!((ha.sum - hb.sum).abs() <= 1e-9 * (1.0 + hb.sum.abs()));
        }
        (a, b) => prop_assert!(false, "histogram presence differs: {:?} vs {:?}", a, b),
    }
    Ok(())
}

fn apply(load: &ShardLoad) -> MetricsSnapshot {
    let (counts, deltas, samples) = load;
    let reg = MetricsRegistry::new();
    let c = reg.counter("prop.counter");
    for &n in counts {
        c.add(n);
    }
    let g = reg.gauge("prop.gauge");
    for &d in deltas {
        g.add(d as i64 - 50);
    }
    let h = reg
        .histogram("prop.hist", HIST_LO, HIST_HI, HIST_BINS)
        .unwrap();
    for &x in samples {
        h.record(x);
    }
    reg.snapshot()
}

proptest! {
    /// Merging any number of per-shard snapshots (in any association
    /// order: left fold here) equals one registry that saw every update.
    #[test]
    fn merged_snapshot_equals_per_shard_sums(
        shards in proptest::collection::vec(shard_load(), 1..6),
    ) {
        let mut merged = MetricsSnapshot::default();
        for s in &shards {
            merged.merge(&apply(s));
        }

        let combined: ShardLoad = (
            shards.iter().flat_map(|s| s.0.iter().copied()).collect(),
            shards.iter().flat_map(|s| s.1.iter().copied()).collect(),
            shards.iter().flat_map(|s| s.2.iter().copied()).collect(),
        );
        let reference = apply(&combined);

        prop_assert_eq!(merged.counter("prop.counter"), reference.counter("prop.counter"));
        prop_assert_eq!(merged.gauge("prop.gauge"), reference.gauge("prop.gauge"));
        let (mh, rh) = (
            merged.histogram("prop.hist").unwrap(),
            reference.histogram("prop.hist").unwrap(),
        );
        prop_assert_eq!(mh.count(), rh.count());
        prop_assert_eq!(mh.hist.counts(), rh.hist.counts());
        prop_assert_eq!(mh.hist.underflow(), rh.hist.underflow());
        prop_assert_eq!(mh.hist.overflow(), rh.hist.overflow());
        prop_assert_eq!(mh.max.to_bits(), rh.max.to_bits());
        // Sums accumulate in a different order across shards, so allow
        // float associativity slack proportional to the magnitude.
        prop_assert!((mh.sum - rh.sum).abs() <= 1e-9 * (1.0 + rh.sum.abs()));
    }

    /// The wire exposition of a merged snapshot parses back to the same
    /// values the snapshot reports — counters/gauges exactly, histogram
    /// scalars through the float formatter's round trip.
    #[test]
    fn exposition_of_merged_snapshot_round_trips(
        shards in proptest::collection::vec(shard_load(), 1..4),
    ) {
        let mut merged = MetricsSnapshot::default();
        for s in &shards {
            merged.merge(&apply(s));
        }
        let parsed = parse_exposition(&encode_exposition(&merged)).unwrap();
        prop_assert_eq!(
            parsed["prop.counter"],
            merged.counter("prop.counter").unwrap() as f64
        );
        prop_assert_eq!(
            parsed["prop.gauge"],
            merged.gauge("prop.gauge").unwrap() as f64
        );
        let h = merged.histogram("prop.hist").unwrap();
        prop_assert_eq!(parsed["prop.hist.count"], h.count() as f64);
        prop_assert_eq!(parsed["prop.hist.mean"].to_bits(), h.mean().to_bits());
        prop_assert_eq!(parsed["prop.hist.p50"].to_bits(), h.quantile(50.0).to_bits());
        prop_assert_eq!(parsed["prop.hist.p99"].to_bits(), h.quantile(99.0).to_bits());
        prop_assert_eq!(parsed["prop.hist.max"].to_bits(), h.max_or_zero().to_bits());
    }

    /// Associativity: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`. The cluster layer
    /// leans on this — a supervisor may fold members one at a time while
    /// an aggregator folds a pre-merged subset, and both must report the
    /// same service-wide view.
    #[test]
    fn merge_is_associative(
        a in shard_load(), b in shard_load(), c in shard_load(),
    ) {
        let (sa, sb, sc) = (apply(&a), apply(&b), apply(&c));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        assert_equivalent(&left, &right)?;
    }

    /// Commutativity: `a ⊕ b == b ⊕ a`, exactly — member fan-out order
    /// is nondeterministic, so order must not leak into the aggregate.
    /// (Float sums commute exactly; only association reorders rounding.)
    #[test]
    fn merge_is_commutative(a in shard_load(), b in shard_load()) {
        let (sa, sb) = (apply(&a), apply(&b));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
    }

    /// The empty snapshot is a two-sided identity: merging a fresh
    /// (default) snapshot in either direction changes nothing, so dead
    /// or not-yet-scraped members drop out of aggregation cleanly.
    #[test]
    fn empty_snapshot_is_identity(a in shard_load()) {
        let sa = apply(&a);
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(merged(&sa, &empty), sa.clone());
        prop_assert_eq!(merged(&empty, &sa), sa);
    }
}
