//! `oc-telemetry` — workspace-wide observability.
//!
//! The serve/client/sim layers of this workspace all need the same two
//! facilities, and both have to be cheap enough to leave compiled into the
//! per-tick prediction hot path:
//!
//! * [`trace`] — **structured tracing**: lightweight spans and events with
//!   monotonic microsecond timestamps. Each thread writes into its own
//!   lock-free single-producer ring buffer ([`ring`]); a collector drains
//!   every ring and exports the merged stream as JSONL
//!   ([`trace::write_jsonl`]). Tracing is off by default: when disabled,
//!   instrumentation costs one relaxed atomic load and a branch.
//! * [`metrics`] — a **unified metrics registry**: named counters, gauges,
//!   and histograms (reusing [`oc_stats::Histogram`] for bounded-memory
//!   distributions). Hot-path updates are single relaxed atomic operations
//!   on pre-registered handles; [`metrics::MetricsSnapshot`]s are pure data
//!   that merge across shards/threads and encode into the stable text
//!   exposition format served by `oc-serve`'s `METRICS` verb.
//!
//! The design notes (ring-buffer sizing, merge semantics, the overhead
//! budget) live in `DESIGN.md` §9; the operator-facing dictionary of every
//! metric and trace event lives in `docs/OPERATIONS.md`.
//!
//! # Examples
//!
//! ```
//! use oc_telemetry::metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("demo.requests");
//! requests.add(3);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(3));
//! ```
//!
//! Tracing a computation and exporting it:
//!
//! ```
//! oc_telemetry::trace::enable();
//! {
//!     let _span = oc_telemetry::trace::span("demo.work");
//!     oc_telemetry::trace::event("demo.step", 1, 0);
//! }
//! let events = oc_telemetry::trace::drain();
//! oc_telemetry::trace::disable();
//! assert!(events.iter().any(|e| e.name == "demo.work"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod trace;

pub use metrics::{Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot};
pub use trace::{enabled, event, span, Span, TraceEvent};

/// The process-wide metrics registry shared by library instrumentation
/// (client retries, simulator counters). Binaries that want isolation
/// (e.g. one registry per server) create their own [`MetricsRegistry`].
pub fn global_metrics() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
