//! JSONL encoding for trace exports, plus a parser for round-trip tests.
//!
//! One event per line, a flat JSON object with a fixed field set:
//!
//! ```text
//! {"kind":"span","name":"serve.request","thread":3,"ts_us":1042,"dur_us":17,"depth":0,"a":1,"b":0}
//! ```
//!
//! * `kind` — `"span"` (has a duration) or `"event"` (instant).
//! * `name` — the span/event name; JSON string escaping applies.
//! * `thread` — dense tracing-thread id.
//! * `ts_us` / `dur_us` — microseconds since the process epoch / span
//!   duration (`0` for events).
//! * `depth` — span-nesting depth on the recording thread.
//! * `a` / `b` — free-form per-name payload words.
//!
//! The encoder always emits the fields in the order above; the parser
//! accepts them in any order and ignores unknown fields, so the format
//! can grow without breaking existing consumers.

use crate::trace::{EventKind, TraceEvent};

/// Appends the JSON object for `e` (no trailing newline) to `out`.
pub fn encode_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"kind\":\"");
    out.push_str(e.kind.as_str());
    out.push_str("\",\"name\":\"");
    escape_into(out, e.name);
    out.push_str("\",\"thread\":");
    out.push_str(&e.thread.to_string());
    out.push_str(",\"ts_us\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"dur_us\":");
    out.push_str(&e.dur_us.to_string());
    out.push_str(",\"depth\":");
    out.push_str(&e.depth.to_string());
    out.push_str(",\"a\":");
    out.push_str(&e.a.to_string());
    out.push_str(",\"b\":");
    out.push_str(&e.b.to_string());
    out.push('}');
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A trace record parsed back from JSONL. Mirrors
/// [`TraceEvent`] with an owned name (the parser cannot
/// resolve back to the interned `&'static str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Record type.
    pub kind: EventKind,
    /// Span/event name.
    pub name: String,
    /// Dense tracing-thread id.
    pub thread: u64,
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Span-nesting depth.
    pub depth: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl ParsedEvent {
    /// Field-wise equality against an in-memory [`TraceEvent`].
    pub fn matches(&self, e: &TraceEvent) -> bool {
        self.kind == e.kind
            && self.name == e.name
            && self.thread == e.thread
            && self.ts_us == e.ts_us
            && self.dur_us == e.dur_us
            && self.depth == e.depth
            && self.a == e.a
            && self.b == e.b
    }
}

/// Parses one JSONL line. Returns `None` on malformed input or a missing
/// required field.
pub fn parse_event(line: &str) -> Option<ParsedEvent> {
    let mut p = Parser {
        s: line.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut kind = None;
    let mut name = None;
    let mut thread = None;
    let mut ts_us = None;
    let mut dur_us = None;
    let mut depth = None;
    let mut a = None;
    let mut b = None;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "kind" => {
                kind = Some(match p.string()?.as_str() {
                    "span" => EventKind::Span,
                    "event" => EventKind::Event,
                    _ => return None,
                })
            }
            "name" => name = Some(p.string()?),
            "thread" => thread = Some(p.number()?),
            "ts_us" => ts_us = Some(p.number()?),
            "dur_us" => dur_us = Some(p.number()?),
            "depth" => depth = Some(u32::try_from(p.number()?).ok()?),
            "a" => a = Some(p.number()?),
            "b" => b = Some(p.number()?),
            // Unknown field: skip its value (string or number).
            _ => p.skip_value()?,
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.skip_ws();
            p.expect(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return None;
    }
    Some(ParsedEvent {
        kind: kind?,
        name: name?,
        thread: thread?,
        ts_us: ts_us?,
        dur_us: dur_us?,
        depth: depth?,
        a: a?,
        b: b?,
    })
}

/// Parses a whole JSONL document, one event per non-empty line. Returns
/// `None` if any line is malformed.
pub fn parse_jsonl(text: &str) -> Option<Vec<ParsedEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_event)
        .collect()
}

/// Minimal cursor over the fixed JSONL schema.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        if self.eat(c) {
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = std::str::from_utf8(&self.s[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn skip_value(&mut self) -> Option<()> {
        match self.peek()? {
            b'"' => self.string().map(|_| ()),
            c if c.is_ascii_digit() => self.number().map(|_| ()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            name: "json_test.sample",
            kind: EventKind::Span,
            thread: 4,
            ts_us: 123_456,
            dur_us: 789,
            depth: 2,
            a: u64::MAX,
            b: 0,
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let e = sample();
        let mut line = String::new();
        encode_event(&mut line, &e);
        let parsed = parse_event(&line).unwrap();
        assert!(parsed.matches(&e), "{parsed:?} vs {e:?}");
    }

    #[test]
    fn parser_accepts_any_field_order_and_unknown_fields() {
        let line = r#"{"b":0,"a":1,"depth":0,"dur_us":0,"ts_us":9,"thread":2,"extra":"x","name":"n","kind":"event"}"#;
        let parsed = parse_event(line).unwrap();
        assert_eq!(parsed.name, "n");
        assert_eq!(parsed.kind, EventKind::Event);
        assert_eq!(parsed.ts_us, 9);
    }

    #[test]
    fn escaped_names_survive() {
        let e = TraceEvent {
            name: "weird \"name\"\twith\\stuff",
            ..sample()
        };
        let mut line = String::new();
        encode_event(&mut line, &e);
        let parsed = parse_event(&line).unwrap();
        assert_eq!(parsed.name, e.name);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"kind":"span"}"#, // missing fields
            r#"{"kind":"nope","name":"n","thread":0,"ts_us":0,"dur_us":0,"depth":0,"a":0,"b":0}"#,
            r#"{"kind":"span","name":"n","thread":0,"ts_us":0,"dur_us":0,"depth":0,"a":0,"b":0} trailing"#,
        ] {
            assert!(parse_event(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn parse_jsonl_handles_blank_lines() {
        let e = sample();
        let mut doc = String::new();
        encode_event(&mut doc, &e);
        doc.push('\n');
        doc.push('\n');
        encode_event(&mut doc, &e);
        doc.push('\n');
        let events = parse_jsonl(&doc).unwrap();
        assert_eq!(events.len(), 2);
    }
}
