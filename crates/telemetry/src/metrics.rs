//! Unified metrics registry: named counters, gauges, and histograms.
//!
//! # Model
//!
//! A [`MetricsRegistry`] maps stable dotted names (`serve.busy`,
//! `shard.queue_depth.0`) to metric instruments:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, requests).
//! * [`Gauge`] — signed level that moves both ways (queue depth, open
//!   connections).
//! * [`HistogramHandle`] — bounded-memory distribution backed by
//!   [`oc_stats::Histogram`], plus exact count/sum/max so means and
//!   maxima don't suffer binning error.
//!
//! Instruments are registered once (get-or-create by name) and the
//! returned [`Arc`] handle is cached by the caller; hot-path updates on
//! counters and gauges are single relaxed atomic RMWs. Histogram records
//! take a per-instrument mutex — intended for per-shard/per-thread
//! instruments where the lock is uncontended.
//!
//! # Snapshots and merging
//!
//! [`MetricsRegistry::snapshot`] captures a [`MetricsSnapshot`]: pure
//! data, no atomics. Snapshots [`merge`](MetricsSnapshot::merge) by
//! *summing* counters and gauges and bin-merging histograms, which is the
//! right semantics for aggregating per-shard registries into one
//! service-wide view (a gauge like queue depth sums to the service-wide
//! total across shards).
//!
//! # Wire exposition
//!
//! [`encode_exposition`] renders a snapshot as the single-line `v=1`
//! text format served by `oc-serve`'s `METRICS` verb and specified in
//! `docs/PROTOCOL.md`; [`parse_exposition`] reads it back.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use oc_stats::Histogram;

/// A monotonically increasing counter. Updates are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level that can move both ways. Updates are relaxed atomic RMWs.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Mutable state behind a histogram instrument: binned distribution plus
/// exact count/sum/max (binning would distort mean and max).
#[derive(Debug, Clone)]
struct HistState {
    hist: Histogram,
    sum: f64,
    max: f64,
}

/// A registered histogram instrument. Records take the instrument's own
/// mutex; use one instrument per shard/thread where contention matters.
#[derive(Debug)]
pub struct HistogramHandle {
    state: Mutex<HistState>,
}

impl HistogramHandle {
    fn new(lo: f64, hi: f64, bins: usize) -> Option<HistogramHandle> {
        Some(HistogramHandle {
            state: Mutex::new(HistState {
                hist: Histogram::new(lo, hi, bins).ok()?,
                sum: 0.0,
                max: f64::NEG_INFINITY,
            }),
        })
    }

    /// Records one observation.
    pub fn record(&self, x: f64) {
        let mut s = self.state.lock().unwrap();
        s.hist.push(x);
        s.sum += x;
        if x > s.max {
            s.max = x;
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock().unwrap();
        HistogramSnapshot {
            count: s.hist.total(),
            hist: s.hist.clone(),
            sum: s.sum,
            max: s.max,
        }
    }
}

/// Point-in-time copy of one histogram instrument. The exact scalars
/// (`count`, `sum`, `max`) are authoritative; `hist` exists for
/// quantiles, where within-one-bin-width error is acceptable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The binned distribution (includes underflow/overflow counts).
    pub hist: Histogram,
    /// Exact number of observations, including out-of-range ones.
    pub count: u64,
    /// Exact sum of all recorded observations.
    pub sum: f64,
    /// Exact maximum observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Total observations recorded, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Interpolated quantile over all recorded mass (0 when empty). A
    /// rank landing in the overflow mass answers the exact tracked
    /// maximum instead of the binned range ceiling.
    pub fn quantile(&self, p: f64) -> f64 {
        match self.hist.quantile(p) {
            Ok(q) if q >= self.hist.hi() => self.max.max(self.hist.hi()),
            Ok(q) => q,
            Err(_) => 0.0,
        }
    }

    /// Exact maximum, or 0 when empty.
    pub fn max_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Folds `other` into `self`: counts add, sums add, max takes the
    /// larger. Bins merge when the two instruments share a shape; on a
    /// shape mismatch (same name registered with different ranges in
    /// different processes) the exact scalars still combine but the
    /// binned quantiles keep `self`'s view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let _ = self.hist.merge(&other.hist);
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Registry of named instruments. Get-or-create is locked; the returned
/// handles are lock-free (counters/gauges) on the update path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramHandle>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use. Names must match `[A-Za-z0-9_.:-]+` (no spaces or `=`;
    /// enforced by a debug assertion) so the exposition format stays
    /// parseable.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        debug_assert!(valid_name(name), "invalid metric name: {name:?}");
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        debug_assert!(valid_name(name), "invalid metric name: {name:?}");
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given shape on first use. The shape is fixed by the first
    /// registration; later calls with a different shape get the existing
    /// instrument. Returns `None` only for an invalid shape
    /// (`lo >= hi`, non-finite bounds, or zero bins) on first registration.
    pub fn histogram(
        &self,
        name: &str,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Option<Arc<HistogramHandle>> {
        debug_assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Some(Arc::clone(h));
        }
        let h = Arc::new(HistogramHandle::new(lo, hi, bins)?);
        map.insert(name.to_string(), Arc::clone(&h));
        Some(h)
    }

    /// Captures every instrument's current value as pure data.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// Pure-data snapshot of a registry. Snapshots merge across shards and
/// encode into the wire exposition format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sets (or overwrites) a counter value directly. For layers that
    /// keep authoritative counts outside the registry (e.g. the serve
    /// shards' owned counters) and fold them into an exposition.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Sets (or overwrites) a gauge value directly.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Sets (or overwrites) a histogram snapshot directly.
    pub fn set_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Folds `other` into `self`: counters and gauges *sum* (a name absent
    /// on one side is treated as zero), histograms merge per
    /// [`HistogramSnapshot::merge`]. Summing gauges is the aggregation
    /// shards want: per-shard queue depths sum to the service-wide depth.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }
}

/// Exposition format version emitted by [`encode_exposition`].
pub const EXPOSITION_VERSION: u32 = 1;

/// Renders a snapshot as the single-line `v=1` wire exposition:
///
/// ```text
/// v=1 serve.busy=3 serve.conns=2 serve.latency_us.count=10 serve.latency_us.p50=120 …
/// ```
///
/// Space-separated `name=value` pairs sorted by name after the leading
/// `v=1`. Counters and gauges print as integers; each histogram expands
/// into `.count`, `.mean`, `.p50`, `.p99`, and `.max` scalars, with
/// floats in Rust's shortest round-trip notation. One line total, so the
/// response fits the protocol's one-line-per-request framing.
pub fn encode_exposition(snap: &MetricsSnapshot) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (name, v) in snap.counters() {
        pairs.push((name.to_string(), v.to_string()));
    }
    for (name, v) in snap.gauges() {
        pairs.push((name.to_string(), v.to_string()));
    }
    for (name, h) in snap.histograms() {
        pairs.push((format!("{name}.count"), h.count().to_string()));
        pairs.push((format!("{name}.mean"), h.mean().to_string()));
        pairs.push((format!("{name}.p50"), h.quantile(50.0).to_string()));
        pairs.push((format!("{name}.p99"), h.quantile(99.0).to_string()));
        pairs.push((format!("{name}.max"), h.max_or_zero().to_string()));
    }
    pairs.sort();
    let mut out = format!("v={EXPOSITION_VERSION}");
    for (name, value) in &pairs {
        out.push(' ');
        out.push_str(name);
        out.push('=');
        out.push_str(value);
    }
    out
}

/// Parses an exposition line back into name → value. Returns `None` on a
/// missing/unsupported version token, a malformed pair, or an unparseable
/// number. Integer-rendered values come back as exact `f64`s for every
/// magnitude the exposition emits in practice (they round-trip below
/// 2^53).
pub fn parse_exposition(line: &str) -> Option<BTreeMap<String, f64>> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != format!("v={EXPOSITION_VERSION}") {
        return None;
    }
    let mut out = BTreeMap::new();
    for pair in parts {
        let (name, value) = pair.split_once('=')?;
        if name.is_empty() {
            return None;
        }
        out.insert(name.to_string(), value.parse().ok()?);
    }
    Some(out)
}

/// Merges `v=1` exposition lines across processes — the wire extension
/// of [`MetricsSnapshot::merge`] used by cluster-wide `METRICS`
/// aggregation, where each member process contributes one exposition.
///
/// Per-name rules, mirroring the in-memory merge as closely as the flat
/// format allows:
///
/// * names ending in `.max` take the max of maxes (exact);
/// * names ending in `.mean`, `.p50`, or `.p99` become averages
///   weighted by their sibling `.count` (an approximation — quantiles do
///   not compose; an absent or zero sibling falls back to unweighted);
/// * everything else (counters, gauges, `.count`) sums, exactly as
///   [`MetricsSnapshot::merge`] sums them.
///
/// Returns `None` if any input fails [`parse_exposition`]. Merging a
/// single exposition with itself-empty input is the identity:
/// `merge_expositions(&[e])` reproduces `e`'s values.
pub fn merge_expositions(lines: &[&str]) -> Option<String> {
    let parsed: Vec<BTreeMap<String, f64>> = lines
        .iter()
        .map(|l| parse_exposition(l))
        .collect::<Option<_>>()?;
    let mut merged: BTreeMap<String, f64> = BTreeMap::new();
    // Pass 1: sums and maxes.
    for snap in &parsed {
        for (name, v) in snap {
            if name.ends_with(".mean") || name.ends_with(".p50") || name.ends_with(".p99") {
                continue;
            }
            let slot = merged.entry(name.clone()).or_insert(0.0);
            if name.ends_with(".max") {
                *slot = slot.max(*v);
            } else {
                *slot += v;
            }
        }
    }
    // Pass 2: count-weighted statistics.
    let stat_names: BTreeSet<String> = parsed
        .iter()
        .flat_map(|s| s.keys())
        .filter(|n| n.ends_with(".mean") || n.ends_with(".p50") || n.ends_with(".p99"))
        .cloned()
        .collect();
    for name in stat_names {
        let base = &name[..name.rfind('.').expect("suffix-matched name has a dot")];
        let count_key = format!("{base}.count");
        let mut weighted = 0.0;
        let mut total_w = 0.0;
        for snap in &parsed {
            if let Some(v) = snap.get(&name) {
                let w = snap.get(&count_key).copied().unwrap_or(0.0).max(0.0);
                weighted += v * w;
                total_w += w;
            }
        }
        let value = if total_w > 0.0 {
            weighted / total_w
        } else {
            // No weights anywhere: plain average over the members that
            // reported the name.
            let vals: Vec<f64> = parsed
                .iter()
                .filter_map(|s| s.get(&name))
                .copied()
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        merged.insert(name, value);
    }
    let mut out = format!("v={EXPOSITION_VERSION}");
    for (name, value) in &merged {
        out.push(' ');
        out.push_str(name);
        out.push('=');
        out.push_str(&value.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.requests");
        c.add(5);
        c.inc();
        assert_eq!(
            r.counter("t.requests").get(),
            6,
            "same name, same instrument"
        );
        assert_eq!(r.snapshot().counter("t.requests"), Some(6));
        assert_eq!(r.snapshot().counter("t.missing"), None);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("t.depth");
        g.inc();
        g.inc();
        g.dec();
        g.add(10);
        assert_eq!(r.snapshot().gauge("t.depth"), Some(11));
        g.set(-3);
        assert_eq!(r.snapshot().gauge("t.depth"), Some(-3));
    }

    #[test]
    fn histogram_shape_is_fixed_by_first_registration() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t.lat", 0.0, 100.0, 10).unwrap();
        h.record(5.0);
        h.record(55.0);
        h.record(1000.0); // overflow
        let h2 = r.histogram("t.lat", 0.0, 1.0, 2).unwrap();
        h2.record(5.0);
        let snap = r.snapshot();
        let hs = snap.histogram("t.lat").unwrap();
        assert_eq!(hs.count(), 4, "second handle hit the same instrument");
        assert_eq!(hs.hist.overflow(), 1);
        assert_eq!(hs.max, 1000.0);
        assert!((hs.mean() - (5.0 + 55.0 + 1000.0 + 5.0) / 4.0).abs() < 1e-9);
        assert!(r.histogram("t.bad", 1.0, 0.0, 4).is_none());
    }

    #[test]
    fn snapshot_merge_sums_everything() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("t.c").add(2);
        b.counter("t.c").add(3);
        b.counter("t.only_b").add(7);
        a.gauge("t.g").add(4);
        b.gauge("t.g").add(-1);
        a.histogram("t.h", 0.0, 10.0, 10).unwrap().record(1.0);
        b.histogram("t.h", 0.0, 10.0, 10).unwrap().record(9.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("t.c"), Some(5));
        assert_eq!(merged.counter("t.only_b"), Some(7));
        assert_eq!(merged.gauge("t.g"), Some(3));
        let h = merged.histogram("t.h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max, 9.0);
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exposition_round_trips() {
        let r = MetricsRegistry::new();
        r.counter("t.busy").add(41);
        r.gauge("t.depth").set(-2);
        let h = r.histogram("t.lat_us", 0.0, 1000.0, 100).unwrap();
        for i in 0..100 {
            h.record(i as f64 * 10.0);
        }
        let snap = r.snapshot();
        let line = encode_exposition(&snap);
        assert!(line.starts_with("v=1 "), "{line}");
        assert!(!line.contains('\n'));
        let parsed = parse_exposition(&line).unwrap();
        assert_eq!(parsed["t.busy"], 41.0);
        assert_eq!(parsed["t.depth"], -2.0);
        assert_eq!(parsed["t.lat_us.count"], 100.0);
        assert_eq!(parsed["t.lat_us.max"], 990.0);
        let p50 = parsed["t.lat_us.p50"];
        assert!((400.0..=600.0).contains(&p50), "{p50}");
        // Pairs are sorted by name.
        let names: Vec<&str> = line
            .split_ascii_whitespace()
            .skip(1)
            .map(|p| p.split_once('=').unwrap().0)
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn exposition_rejects_garbage() {
        assert!(parse_exposition("").is_none());
        assert!(parse_exposition("v=2 a=1").is_none());
        assert!(parse_exposition("v=1 noequals").is_none());
        assert!(parse_exposition("v=1 a=notanumber").is_none());
        assert!(parse_exposition("v=1 =5").is_none());
        assert_eq!(parse_exposition("v=1").unwrap().len(), 0);
    }

    #[test]
    fn empty_histogram_exposes_zeros() {
        let r = MetricsRegistry::new();
        r.histogram("t.empty", 0.0, 1.0, 4).unwrap();
        let line = encode_exposition(&r.snapshot());
        let parsed = parse_exposition(&line).unwrap();
        assert_eq!(parsed["t.empty.count"], 0.0);
        assert_eq!(parsed["t.empty.mean"], 0.0);
        assert_eq!(parsed["t.empty.p50"], 0.0);
        assert_eq!(parsed["t.empty.max"], 0.0);
    }
}
