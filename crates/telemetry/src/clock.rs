//! Monotonic microsecond timestamps with a process-wide epoch.
//!
//! Trace events carry `u64` microseconds since the first call into this
//! module (not wall-clock time): monotonic, immune to NTP steps, and cheap
//! to subtract. Exported JSONL is therefore self-consistent within one
//! process; correlating across processes needs an external anchor.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process epoch — the `Instant` of the first timestamp taken.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`epoch`]. Monotonic, never goes backwards.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn epoch_is_stable() {
        assert_eq!(epoch(), epoch());
    }
}
