//! Lock-free single-producer/single-consumer event ring buffers.
//!
//! Each tracing thread owns one [`Ring`] and is its only *producer*; the
//! collector ([`crate::trace::drain`]) is the only *consumer* (it serializes
//! itself behind the tracer's registry lock). Under that SPSC discipline
//! the ring needs no locks at all: every slot field is a relaxed atomic,
//! published by a release store of the slot's sequence number and observed
//! by an acquire load on the consumer side.
//!
//! **Overflow policy: drop-newest.** When the ring is full the producer
//! drops the incoming event and bumps [`Ring::dropped`] instead of blocking
//! or overwriting in-flight slots — the hot path must never stall on the
//! collector, and a truncated trace with an honest drop counter beats a
//! torn one. Size the ring ([`DEFAULT_CAPACITY`]) so a collector draining
//! once per run never sees drops at realistic event rates; `dropped` is
//! exported so silent loss is impossible.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Default per-thread ring capacity, in events. At 56 bytes a slot this is
/// ~1.8 MiB per tracing thread; a full day-scale simulator run with
/// 1-in-64 tick sampling emits a few thousand events, so drops only occur
/// when tracing is enabled on a pathological workload.
pub const DEFAULT_CAPACITY: usize = 32 * 1024;

/// What a raw slot records. All fields are plain numbers; names are
/// interned ids resolved by the collector (see [`crate::trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Microseconds since the process epoch (event time; for spans, the
    /// *start* instant).
    pub ts_us: u64,
    /// Span duration in microseconds; `0` for instant events.
    pub dur_us: u64,
    /// Interned name id.
    pub name_id: u32,
    /// `0` = completed span, `1` = instant event.
    pub kind: u32,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u32,
    /// First free-form payload word (meaning is per event name).
    pub a: u64,
    /// Second free-form payload word.
    pub b: u64,
}

/// One ring slot: per-field atomics, published by `seq`.
#[derive(Debug)]
struct Slot {
    /// `position + 1` of the event stored here, `0` when never written.
    seq: AtomicU64,
    ts_us: AtomicU64,
    dur_us: AtomicU64,
    name_id: AtomicU32,
    kind: AtomicU32,
    depth: AtomicU32,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            name_id: AtomicU32::new(0),
            kind: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded SPSC event ring. See the module docs for the producer /
/// consumer discipline and the drop-newest overflow policy.
#[derive(Debug)]
pub struct Ring {
    slots: Box<[Slot]>,
    /// Next write position. Written only by the producer.
    head: AtomicU64,
    /// Next read position. Written only by the consumer.
    tail: AtomicU64,
    /// Events dropped because the ring was full.
    dropped: AtomicU64,
}

impl Ring {
    /// Creates a ring of [`DEFAULT_CAPACITY`] slots.
    pub fn new() -> Ring {
        Ring::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a ring with `capacity` slots (at least 1).
    pub fn with_capacity(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped at the full ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event. **Producer-side**: must only be called by the
    /// ring's owning thread. Returns `false` (and counts a drop) when the
    /// ring is full.
    pub fn push(&self, e: RawEvent) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.ts_us.store(e.ts_us, Ordering::Relaxed);
        slot.dur_us.store(e.dur_us, Ordering::Relaxed);
        slot.name_id.store(e.name_id, Ordering::Relaxed);
        slot.kind.store(e.kind, Ordering::Relaxed);
        slot.depth.store(e.depth, Ordering::Relaxed);
        slot.a.store(e.a, Ordering::Relaxed);
        slot.b.store(e.b, Ordering::Relaxed);
        // Publish: consumers only read a slot whose seq matches its
        // position, so every field store above happens-before the read.
        slot.seq.store(head + 1, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        true
    }

    /// Moves every published event into `out`, in record order.
    /// **Consumer-side**: callers must serialize drains (the tracer drains
    /// under its registry lock).
    pub fn drain_into(&self, out: &mut Vec<RawEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail < head {
            let slot = &self.slots[(tail % self.slots.len() as u64) as usize];
            if slot.seq.load(Ordering::Acquire) != tail + 1 {
                break; // Not yet published; the producer will finish it.
            }
            out.push(RawEvent {
                ts_us: slot.ts_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
                name_id: slot.name_id.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed),
                depth: slot.depth.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
    }
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> RawEvent {
        RawEvent {
            ts_us: i,
            dur_us: 0,
            name_id: i as u32,
            kind: 1,
            depth: 0,
            a: i * 2,
            b: i * 3,
        }
    }

    #[test]
    fn fifo_order_survives_a_drain() {
        let ring = Ring::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(ev(i)));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(*e, ev(i as u64));
        }
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let ring = Ring::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(99)));
        assert_eq!(ring.dropped(), 1);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[3], ev(3), "the oldest four survive, the newest drops");
        // Space freed: pushes work again.
        assert!(ring.push(ev(5)));
    }

    #[test]
    fn wraparound_keeps_order() {
        let ring = Ring::with_capacity(4);
        let mut out = Vec::new();
        for round in 0..10u64 {
            for i in 0..3 {
                assert!(ring.push(ev(round * 3 + i)));
            }
            ring.drain_into(&mut out);
        }
        assert_eq!(out.len(), 30);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_us, i as u64);
        }
    }

    #[test]
    fn concurrent_producer_and_consumer_lose_nothing() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::with_capacity(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..10_000u64 {
                    if ring.push(ev(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut out = Vec::new();
        while !producer.is_finished() {
            ring.drain_into(&mut out);
        }
        ring.drain_into(&mut out);
        let pushed = producer.join().unwrap();
        assert_eq!(out.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), 10_000);
        // Timestamps strictly increase: nothing reordered or torn.
        for w in out.windows(2) {
            assert!(w[0].ts_us < w[1].ts_us);
        }
    }
}
