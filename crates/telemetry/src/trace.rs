//! Structured tracing: spans and instant events over per-thread rings.
//!
//! # Model
//!
//! * A **span** ([`span`]) measures a region: it records its start
//!   timestamp on creation and pushes one completed-span record (start,
//!   duration, nesting depth) when the guard drops. Nesting is tracked
//!   per thread, so a drained trace can be re-assembled into a tree.
//! * An **event** ([`event`]) is an instant: one record with a timestamp
//!   and two free-form `u64` payload words.
//!
//! # Cost discipline
//!
//! Tracing is **off by default**. Every instrumentation site first checks
//! [`enabled`] — one relaxed atomic load and a predictable branch — so
//! leaving spans compiled into the simulator hot path is within the
//! overhead budget (DESIGN.md §9). When enabled, a record is a handful of
//! relaxed stores into the calling thread's own lock-free
//! [`Ring`]; names are `&'static str` interned once per
//! thread through a pointer-keyed cache, so steady-state recording never
//! touches a lock.
//!
//! # Collection
//!
//! [`drain`] visits every thread's ring (including threads that have since
//! exited), resolves interned names, and returns the merged stream sorted
//! by timestamp. [`write_jsonl`] exports it in the JSONL schema documented
//! in [`crate::json`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock;
use crate::ring::{RawEvent, Ring};

/// Master switch. Relaxed is enough: enabling tracing a hair late or
/// early only gains/loses a few records, never tears one.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns tracing on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off process-wide. Already-recorded events stay in the
/// rings until [`drain`]ed.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether tracing is currently on. Instrumentation sites branch on this
/// before doing any other work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Global interning table: name string → dense id. Locked only on a
/// thread's *first* use of each name (see the per-thread pointer cache).
struct NameTable {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn name_table() -> &'static Mutex<NameTable> {
    static TABLE: OnceLock<Mutex<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(NameTable {
            ids: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Every thread's ring, kept alive here even after the thread exits so
/// its tail of events survives until the next [`drain`].
struct RegisteredRing {
    thread: u64,
    ring: Arc<Ring>,
}

fn ring_registry() -> &'static Mutex<Vec<RegisteredRing>> {
    static REGISTRY: OnceLock<Mutex<Vec<RegisteredRing>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread tracing context.
struct Ctx {
    ring: Arc<Ring>,
    depth: Cell<u32>,
    /// `&'static str` pointer → interned id. Identical literals may have
    /// distinct addresses across codegen units; each address still maps
    /// to the one id the global table assigned to that string's content.
    name_cache: RefCell<HashMap<*const u8, u32>>,
}

impl Ctx {
    fn new() -> Ctx {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Ring::new());
        ring_registry().lock().unwrap().push(RegisteredRing {
            thread,
            ring: Arc::clone(&ring),
        });
        Ctx {
            ring,
            depth: Cell::new(0),
            name_cache: RefCell::new(HashMap::new()),
        }
    }

    fn intern(&self, name: &'static str) -> u32 {
        let key = name.as_ptr();
        if let Some(&id) = self.name_cache.borrow().get(&key) {
            return id;
        }
        let mut table = name_table().lock().unwrap();
        let id = match table.ids.get(name) {
            Some(&id) => id,
            None => {
                let id = table.names.len() as u32;
                table.names.push(name);
                table.ids.insert(name, id);
                id
            }
        };
        drop(table);
        self.name_cache.borrow_mut().insert(key, id);
        id
    }
}

thread_local! {
    static CTX: Ctx = Ctx::new();
}

const KIND_SPAN: u32 = 0;
const KIND_EVENT: u32 = 1;

/// Records an instant event with two payload words. No-op when tracing
/// is disabled. The meaning of `a`/`b` is per event name and documented
/// in `docs/OPERATIONS.md`.
#[inline]
pub fn event(name: &'static str, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let ts_us = clock::now_us();
    // Ignore `try_with` failure: the thread is tearing down its TLS and
    // the record is better lost than panicking in a destructor.
    let _ = CTX.try_with(|ctx| {
        ctx.ring.push(RawEvent {
            ts_us,
            dur_us: 0,
            name_id: ctx.intern(name),
            kind: KIND_EVENT,
            depth: ctx.depth.get(),
            a,
            b,
        });
    });
}

/// Opens a span; the region ends (and the record is written) when the
/// returned guard drops. When tracing is disabled the guard is inert.
#[must_use = "a span measures until the guard drops; binding it to _ ends it immediately"]
#[inline]
pub fn span(name: &'static str) -> Span {
    span_ab(name, 0, 0)
}

/// Like [`span`] but attaches two payload words to the span record.
#[must_use = "a span measures until the guard drops; binding it to _ ends it immediately"]
#[inline]
pub fn span_ab(name: &'static str, a: u64, b: u64) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let start_us = clock::now_us();
    let depth = CTX
        .try_with(|ctx| {
            let d = ctx.depth.get();
            ctx.depth.set(d + 1);
            d
        })
        .unwrap_or(0);
    Span {
        inner: Some(SpanInner {
            name,
            start_us,
            depth,
            a,
            b,
        }),
    }
}

struct SpanInner {
    name: &'static str,
    start_us: u64,
    depth: u32,
    a: u64,
    b: u64,
}

/// RAII guard returned by [`span`]. Dropping it records the completed
/// span with its measured duration.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = clock::now_us().saturating_sub(inner.start_us);
        let _ = CTX.try_with(|ctx| {
            ctx.depth.set(ctx.depth.get().saturating_sub(1));
            // Record even if tracing was disabled mid-span: the span was
            // opened under tracing, so its completion belongs in the trace.
            ctx.ring.push(RawEvent {
                ts_us: inner.start_us,
                dur_us,
                name_id: ctx.intern(inner.name),
                kind: KIND_SPAN,
                depth: inner.depth,
                a: inner.a,
                b: inner.b,
            });
        });
    }
}

/// Whether a [`TraceEvent`] is a completed span or an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A region with a duration, recorded when its guard dropped.
    Span,
    /// An instant occurrence (`dur_us` is 0).
    Event,
}

impl EventKind {
    /// Stable wire name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Event => "event",
        }
    }
}

/// One drained, name-resolved trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span/event name (an interned static string).
    pub name: &'static str,
    /// Record type.
    pub kind: EventKind,
    /// Dense id of the recording thread (assigned in tracing-first-use
    /// order, not the OS thread id).
    pub thread: u64,
    /// Microseconds since the process epoch; for spans, the start instant.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Span-nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Drains every thread's ring and returns the merged stream sorted by
/// `(ts_us, thread)`. Events recorded after the drain started may or may
/// not be included; call after the traced workload has quiesced for a
/// complete picture.
pub fn drain() -> Vec<TraceEvent> {
    let registry = ring_registry().lock().unwrap();
    let mut raw: Vec<(u64, RawEvent)> = Vec::new();
    let mut buf: Vec<RawEvent> = Vec::new();
    for entry in registry.iter() {
        buf.clear();
        entry.ring.drain_into(&mut buf);
        raw.extend(buf.iter().map(|e| (entry.thread, *e)));
    }
    drop(registry);

    let table = name_table().lock().unwrap();
    let mut out: Vec<TraceEvent> = raw
        .into_iter()
        .map(|(thread, e)| TraceEvent {
            name: table
                .names
                .get(e.name_id as usize)
                .copied()
                .unwrap_or("<unknown>"),
            kind: if e.kind == KIND_SPAN {
                EventKind::Span
            } else {
                EventKind::Event
            },
            thread,
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            depth: e.depth,
            a: e.a,
            b: e.b,
        })
        .collect();
    out.sort_by_key(|e| (e.ts_us, e.thread));
    out
}

/// Total events dropped at full rings across all threads so far.
pub fn dropped() -> u64 {
    ring_registry()
        .lock()
        .unwrap()
        .iter()
        .map(|e| e.ring.dropped())
        .sum()
}

/// Writes `events` to `w`, one JSON object per line (see [`crate::json`]
/// for the schema).
pub fn write_jsonl<W: Write>(w: &mut W, events: &[TraceEvent]) -> io::Result<()> {
    let mut line = String::new();
    for e in events {
        line.clear();
        crate::json::encode_event(&mut line, e);
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share the process-global tracer; serialize
    /// them and tag each test's events with unique names.
    pub(crate) fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = tracer_lock();
        disable();
        event("trace_test.disabled", 1, 2);
        {
            let _s = span("trace_test.disabled_span");
        }
        let events = drain();
        assert!(!events
            .iter()
            .any(|e| e.name.starts_with("trace_test.disabled")));
    }

    #[test]
    fn spans_nest_and_events_inherit_depth() {
        let _guard = tracer_lock();
        enable();
        {
            let _outer = span("trace_test.nest_outer");
            event("trace_test.nest_at1", 7, 0);
            {
                let _inner = span("trace_test.nest_inner");
                event("trace_test.nest_at2", 0, 9);
            }
        }
        disable();
        let events = drain();
        let find = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let outer = find("trace_test.nest_outer");
        let inner = find("trace_test.nest_inner");
        let at1 = find("trace_test.nest_at1");
        let at2 = find("trace_test.nest_at2");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(at1.depth, 1, "event inside one span sits at depth 1");
        assert_eq!(at2.depth, 2);
        assert_eq!((at1.a, at1.b), (7, 0));
        // The inner span's interval lies within the outer's.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(outer.kind, EventKind::Span);
        assert_eq!(at1.kind, EventKind::Event);
    }

    #[test]
    fn drain_is_sorted_and_consumes() {
        let _guard = tracer_lock();
        enable();
        for i in 0..50 {
            event("trace_test.sorted", i, 0);
        }
        disable();
        let events = drain();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "trace_test.sorted")
            .collect();
        assert_eq!(mine.len(), 50);
        for w in events.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        let again = drain();
        assert!(!again.iter().any(|e| e.name == "trace_test.sorted"));
    }

    #[test]
    fn multi_thread_events_carry_distinct_thread_ids() {
        let _guard = tracer_lock();
        enable();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    event("trace_test.mt", i, 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let events = drain();
        let threads: std::collections::HashSet<u64> = events
            .iter()
            .filter(|e| e.name == "trace_test.mt")
            .map(|e| e.thread)
            .collect();
        assert_eq!(threads.len(), 3, "each thread drains under its own id");
    }
}
