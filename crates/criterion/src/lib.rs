//! Vendored offline stand-in for the subset of [`criterion`] this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so benches run on
//! this minimal harness: it calibrates each benchmark, takes timed
//! samples, and prints `median / min / mean` nanoseconds per iteration
//! (plus throughput when declared) in a stable, greppable one-line format:
//!
//! ```text
//! bench: group/name ... median 12345 ns/iter (min 12000, mean 12400) 8.10 Melem/s
//! ```
//!
//! Differences from upstream, by design: no warm-up phases beyond
//! calibration, no statistical outlier analysis, no HTML reports, no
//! comparison to saved baselines. Sample counts honor
//! [`BenchmarkGroup::sample_size`] and adapt downward for very slow
//! benchmarks so full-workspace `cargo bench` stays bounded.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Target wall-clock duration of one timed sample, in nanoseconds.
const TARGET_SAMPLE_NS: f64 = 5_000_000.0;

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput declaration: scales per-iteration time into an element or
/// byte rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how much memory a batched setup allocates. The stand-in
/// harness accepts the variants for source compatibility; they do not
/// change the sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; many can be held at once.
    SmallInput,
    /// Setup output is large; batch conservatively.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per timed sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Calibrates and times `f`, recording per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: estimate the cost of one iteration.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed().as_millis() < 2 {
            std::hint::black_box(f());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / calibration_iters as f64;

        let iters_per_sample = (TARGET_SAMPLE_NS / per_iter).max(1.0) as u64;
        // Keep very slow benchmarks bounded: above 250 ms per iteration,
        // take at most 3 samples of 1 iteration each.
        let samples = if per_iter > 250_000_000.0 {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };

        self.samples.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the measurement. Each timed sample runs `setup` once per
    /// iteration and measures only the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibration: estimate routine cost (setup excluded from the
        // estimate the same way it is excluded from samples).
        let mut calibration_iters = 0u64;
        let mut timed_ns = 0u128;
        let start = Instant::now();
        while start.elapsed().as_millis() < 2 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            timed_ns += t.elapsed().as_nanos();
            calibration_iters += 1;
        }
        let per_iter = (timed_ns as f64 / calibration_iters as f64).max(1.0);

        let iters_per_sample = (TARGET_SAMPLE_NS / per_iter).max(1.0) as u64;
        let samples = if per_iter > 250_000_000.0 {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };

        self.samples.clear();
        for _ in 0..samples {
            let mut sample_ns = 0u128;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                sample_ns += t.elapsed().as_nanos();
            }
            self.samples
                .push(sample_ns as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.is_empty() {
            println!("bench: {id} ... no samples (Bencher::iter never called)");
            return;
        }
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!(" {}elem/s", si(n as f64 / (median * 1e-9))),
            Some(Throughput::Bytes(n)) => format!(" {}B/s", si(n as f64 / (median * 1e-9))),
            None => String::new(),
        };
        println!(
            "bench: {id} ... median {} ns/iter (min {}, mean {}){rate}",
            median.round() as u128,
            min.round() as u128,
            mean.round() as u128,
        );
    }
}

/// Formats a rate with an SI prefix.
fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.2} ")
    }
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        };
        f(&mut b);
        b.report(id, None);
        self
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into().id), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| ()));
    }

    #[test]
    fn si_prefixes() {
        assert_eq!(si(1.5e9), "1.50 G");
        assert_eq!(si(2.5e6), "2.50 M");
        assert_eq!(si(3.5e3), "3.50 k");
        assert_eq!(si(42.0), "42.00 ");
    }
}
