//! The contention → CPU-scheduling-latency model.
//!
//! The paper's QoS metric is CPU scheduling latency: the time a ready
//! thread waits for a free CPU. We model a machine's per-tick latency as a
//! queueing-style waiting time driven by the instantaneous demand-to-
//! capacity ratio `ρ`:
//!
//! ```text
//! latency(ρ) = base · (1 + gain · ρ^sharpness / (1 − min(ρ, ρ_cap))) · noise
//! ```
//!
//! * At low `ρ` the queueing term vanishes and latency sits at `base`
//!   (scaled by noise) — matching the paper's observation that latency on
//!   violation-free machines clusters around a common mean.
//! * As `ρ → 1` the term diverges like an M/M/c waiting time; `sharpness`
//!   keeps moderate utilizations cheap so only near-saturation ticks hurt —
//!   the paper's "a violation is not a sufficient condition for resource
//!   exhaustion".
//! * `noise` is lognormal and captures the confounders the paper names
//!   (NUMA locality, network traffic) that blur per-machine correlation
//!   (Spearman ≈ 0.4 raw) but vanish under bucketing (≈ 0.95).
//!
//! Latency here is a dimensionless multiple of the zero-contention mean;
//! the paper normalizes the same way (Figure 3(d), Figure 14).

use oc_trace::gen::splitmix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parameters of the latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Zero-contention latency level (1.0 = the normalization unit).
    pub base: f64,
    /// Weight of the queueing term.
    pub gain: f64,
    /// Exponent on `ρ` — higher makes only near-saturation ticks costly.
    pub sharpness: f64,
    /// Saturation clamp for `ρ` inside the queueing denominator.
    pub rho_cap: f64,
    /// Log-space σ of the per-tick lognormal noise.
    pub noise_sigma: f64,
    /// Seed mixed into per-machine noise streams.
    pub seed: u64,
}

impl Default for LatencyModel {
    /// Defaults calibrated so that the Figure 3(d) reproduction lands in
    /// the paper's band (slope ≈ 14 on latency normalized to the
    /// zero-violation mean over violation rates 0–0.1).
    fn default() -> Self {
        LatencyModel {
            base: 1.0,
            gain: 1.8,
            sharpness: 5.0,
            rho_cap: 0.93,
            noise_sigma: 0.25,
            seed: 0x0905_1A7E,
        }
    }
}

impl LatencyModel {
    /// Deterministic expected latency (no noise) at demand ratio `rho`.
    pub fn expected_latency(&self, rho: f64) -> f64 {
        let rho = rho.max(0.0);
        let r = rho.min(self.rho_cap);
        self.base * (1.0 + self.gain * r.powf(self.sharpness) / (1.0 - r))
    }

    /// Per-tick latency series for one machine given its usage series.
    ///
    /// `usage[i]` is the machine's instantaneous peak demand at tick `i`
    /// (the ground-truth within-tick peak); `capacity` its physical
    /// capacity. Noise is seeded by `(model.seed, machine_key)` so series
    /// are reproducible per machine.
    pub fn machine_series(&self, usage: &[f64], capacity: f64, machine_key: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(splitmix(self.seed ^ splitmix(machine_key)));
        usage
            .iter()
            .map(|&u| {
                let noise = lognormal_noise(&mut rng, self.noise_sigma);
                self.expected_latency(u / capacity) * noise
            })
            .collect()
    }
}

/// Draws `exp(N(-σ²/2, σ²))` — mean-1 lognormal noise.
fn lognormal_noise(rng: &mut SmallRng, sigma: f64) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (-0.5 * sigma * sigma + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_contention() {
        let m = LatencyModel::default();
        let lo = m.expected_latency(0.2);
        let mid = m.expected_latency(0.7);
        let hi = m.expected_latency(0.95);
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        // Low utilization is near-base.
        assert!((lo - m.base).abs() / m.base < 0.01);
        // Near saturation is many times base.
        assert!(hi > 5.0 * m.base);
    }

    #[test]
    fn rho_is_clamped() {
        let m = LatencyModel::default();
        let at_cap = m.expected_latency(m.rho_cap);
        assert_eq!(m.expected_latency(1.5), at_cap);
        assert!(at_cap.is_finite());
    }

    #[test]
    fn noise_is_mean_one() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| lognormal_noise(&mut rng, 0.35)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "noise mean {mean}");
    }

    #[test]
    fn series_is_deterministic_per_machine() {
        let m = LatencyModel::default();
        let usage = vec![0.5, 0.7, 0.9, 0.3];
        let a = m.machine_series(&usage, 1.0, 42);
        let b = m.machine_series(&usage, 1.0, 42);
        let c = m.machine_series(&usage, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn negative_rho_is_treated_as_idle() {
        let m = LatencyModel::default();
        assert_eq!(m.expected_latency(-1.0), m.expected_latency(0.0));
    }
}
