//! Node power model and power-capping response.
//!
//! Overcommit interacts with the power budget: a machine's power draw is
//! dominated by CPU utilization, so a prediction violation — admitted
//! demand exceeding the predicted peak — shows up not only as scheduling
//! latency but as power above the provisioned cap. Datacenter power
//! delivery is itself oversubscribed (the same statistical argument as
//! CPU overcommit), and the enforcement mechanism is different: a breached
//! power cap does not queue work, it *throttles* the node (RAPL/DVFS
//! clipping), stretching every running task.
//!
//! The model here is deliberately simple and linear — the standard
//! idle-plus-proportional form:
//!
//! ```text
//! power(u) = idle + dynamic · clamp(u, 0, 1)        (full load = 1.0)
//! ```
//!
//! Capping inverts it: a cap ratio `c` (fraction of full-load power)
//! admits CPU utilization up to `util_at_cap(c)`. Demand above that is
//! clipped, and the clipped fraction is charged as a latency stretch
//! weighted by the workload's [`QosTier`] — throttling is applied
//! best-effort-first, so higher tiers see a smaller share of the stretch.

use oc_stats::resource::ResourceVec;

/// Linear node power model, normalized to full-load power 1.0.
///
/// # Examples
///
/// ```
/// use oc_qos::power::PowerModel;
///
/// let m = PowerModel::default();
/// assert!((m.power(0.0) - m.idle).abs() < 1e-12);
/// assert!((m.power(1.0) - 1.0).abs() < 1e-12);
/// // A 90% cap admits utilization strictly below 1.0.
/// let u = m.util_at_cap(0.9);
/// assert!(u < 1.0 && m.power(u) <= 0.9 + 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Idle power as a fraction of full-load power.
    pub idle: f64,
    /// Dynamic range: `idle + dynamic = 1.0` at full load.
    pub dynamic: f64,
}

impl Default for PowerModel {
    /// Idle fraction 0.35 — typical of the server-class machines the
    /// paper's fleet runs (idle power 30–40% of peak).
    fn default() -> Self {
        PowerModel {
            idle: 0.35,
            dynamic: 0.65,
        }
    }
}

impl PowerModel {
    /// Node power at CPU utilization `u` (clamped to `[0, 1]`), as a
    /// fraction of full-load power.
    pub fn power(&self, u: f64) -> f64 {
        self.idle + self.dynamic * u.clamp(0.0, 1.0)
    }

    /// The largest CPU utilization whose power stays within a cap of
    /// `cap` × full-load power. Zero when the cap is below idle power
    /// (the node cannot comply without suspending).
    pub fn util_at_cap(&self, cap: f64) -> f64 {
        if self.dynamic <= 0.0 {
            return 1.0;
        }
        ((cap - self.idle) / self.dynamic).clamp(0.0, 1.0)
    }
}

/// Workload QoS tiers, ordered by protection under power capping.
///
/// Throttling is applied bottom-up: best-effort work absorbs most of the
/// frequency clip before standard, and standard before premium — the
/// tier's [`stretch_weight`](QosTier::stretch_weight) encodes the share
/// of the clip each tier experiences as latency stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosTier {
    /// Latency-critical serving; protected until the cap is deeply breached.
    Premium,
    /// Ordinary production batch/serving mix.
    Standard,
    /// Scavenger-class work; first to be throttled.
    BestEffort,
}

impl QosTier {
    /// All tiers, most-protected first.
    pub const ALL: [QosTier; 3] = [QosTier::Premium, QosTier::Standard, QosTier::BestEffort];

    /// Fraction of a node-level clip this tier experiences as latency
    /// stretch.
    pub fn stretch_weight(self) -> f64 {
        match self {
            QosTier::Premium => 0.25,
            QosTier::Standard => 1.0,
            QosTier::BestEffort => 2.5,
        }
    }

    /// Display name (stable; used in CSV columns and metric names).
    pub fn name(self) -> &'static str {
        match self {
            QosTier::Premium => "premium",
            QosTier::Standard => "standard",
            QosTier::BestEffort => "best_effort",
        }
    }
}

/// Outcome of applying a power cap to one tick of node demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapOutcome {
    /// Uncapped node power for the offered utilization.
    pub power: f64,
    /// CPU utilization actually granted after clipping.
    pub granted_util: f64,
    /// Fraction of demand clipped (`0` when under the cap).
    pub clipped_frac: f64,
}

impl CapOutcome {
    /// Latency stretch factor for a tier: running at reduced frequency
    /// stretches execution roughly by the inverse of the granted share,
    /// scaled by the tier's exposure.
    ///
    /// # Examples
    ///
    /// ```
    /// use oc_qos::power::{PowerModel, QosTier, apply_cap};
    ///
    /// let out = apply_cap(&PowerModel::default(), 1.0, 0.8);
    /// assert!(out.clipped_frac > 0.0);
    /// let premium = out.tier_stretch(QosTier::Premium);
    /// let scavenger = out.tier_stretch(QosTier::BestEffort);
    /// assert!(premium < scavenger);
    /// assert!(premium >= 1.0);
    /// ```
    pub fn tier_stretch(&self, tier: QosTier) -> f64 {
        1.0 + tier.stretch_weight() * self.clipped_frac / (1.0 - self.clipped_frac).max(1e-9)
    }
}

/// Applies power cap `cap` (fraction of full-load power) to an offered
/// CPU utilization `util`, returning the clip outcome.
pub fn apply_cap(model: &PowerModel, util: f64, cap: f64) -> CapOutcome {
    let util = util.clamp(0.0, 1.0);
    let allowed = model.util_at_cap(cap);
    let granted = util.min(allowed);
    let clipped = if util > 0.0 {
        ((util - granted) / util).clamp(0.0, 1.0)
    } else {
        0.0
    };
    CapOutcome {
        power: model.power(util),
        granted_util: granted,
        clipped_frac: clipped,
    }
}

/// Worst-lane demand-to-capacity ratio: the `ρ` a multi-resource machine
/// feeds the latency model is the maximum over lanes — the first
/// exhausted resource is the one that queues work.
///
/// Lanes with non-positive capacity are skipped (an unprovisioned lane
/// cannot be the bottleneck).
///
/// # Examples
///
/// ```
/// use oc_qos::power::worst_rho;
/// use oc_stats::resource::Res2;
///
/// let usage = Res2::from_lanes([0.5, 0.9]);
/// let capacity = Res2::from_lanes([1.0, 1.0]);
/// assert!((worst_rho(&usage, &capacity) - 0.9).abs() < 1e-12);
/// ```
pub fn worst_rho<const N: usize>(usage: &ResourceVec<N>, capacity: &ResourceVec<N>) -> f64 {
    let mut rho = 0.0f64;
    for lane in 0..N {
        let cap = capacity.lane(lane);
        if cap > 0.0 {
            rho = rho.max(usage.lane(lane) / cap);
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_stats::resource::Res2;

    #[test]
    fn power_is_linear_in_util() {
        let m = PowerModel::default();
        assert!((m.power(0.5) - (0.35 + 0.325)).abs() < 1e-12);
        assert_eq!(m.power(-1.0), m.power(0.0));
        assert_eq!(m.power(2.0), m.power(1.0));
    }

    #[test]
    fn cap_inversion_round_trips() {
        let m = PowerModel::default();
        for cap in [0.5, 0.7, 0.9, 1.0] {
            let u = m.util_at_cap(cap);
            assert!(m.power(u) <= cap + 1e-12, "cap {cap}");
        }
        // A cap below idle admits no dynamic power at all.
        assert_eq!(m.util_at_cap(0.2), 0.0);
        // A cap above full load admits everything.
        assert_eq!(m.util_at_cap(1.5), 1.0);
    }

    #[test]
    fn under_cap_is_a_no_op() {
        let out = apply_cap(&PowerModel::default(), 0.3, 0.9);
        assert_eq!(out.granted_util, 0.3);
        assert_eq!(out.clipped_frac, 0.0);
        for tier in QosTier::ALL {
            assert_eq!(out.tier_stretch(tier), 1.0);
        }
    }

    #[test]
    fn over_cap_clips_and_stretches_by_tier() {
        let out = apply_cap(&PowerModel::default(), 1.0, 0.8);
        assert!(out.granted_util < 1.0);
        assert!(out.clipped_frac > 0.0 && out.clipped_frac < 1.0);
        let stretches: Vec<f64> = QosTier::ALL.iter().map(|&t| out.tier_stretch(t)).collect();
        // Most-protected first => monotonically increasing stretch.
        assert!(stretches[0] < stretches[1] && stretches[1] < stretches[2]);
        assert!(stretches.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn zero_demand_never_clips() {
        let out = apply_cap(&PowerModel::default(), 0.0, 0.2);
        assert_eq!(out.clipped_frac, 0.0);
        assert_eq!(out.granted_util, 0.0);
    }

    #[test]
    fn worst_rho_picks_the_bottleneck_lane() {
        let cap = Res2::from_lanes([2.0, 1.0]);
        assert!(
            (worst_rho(&Res2::from_lanes([1.0, 0.2]), &cap) - 0.5).abs() < 1e-12,
            "cpu-bound"
        );
        assert!(
            (worst_rho(&Res2::from_lanes([0.4, 0.8]), &cap) - 0.8).abs() < 1e-12,
            "mem-bound"
        );
        // Unprovisioned lanes are skipped.
        let cap0 = Res2::from_lanes([1.0, 0.0]);
        assert_eq!(worst_rho(&Res2::from_lanes([0.5, 9.0]), &cap0), 0.5);
    }
}
