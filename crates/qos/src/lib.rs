//! QoS substrate: the CPU scheduling latency model.
//!
//! The paper validates its simulation methodology by correlating oracle
//! violation rates with a production QoS metric — CPU scheduling latency,
//! the time a ready thread waits for a free CPU (Section 3.3). Production
//! latency telemetry is not reproducible outside Google, so this crate
//! substitutes a mechanistic contention model: per-tick latency grows like
//! an M/M/c waiting time in the machine's demand-to-capacity ratio, with
//! lognormal noise standing in for the confounders the paper names (NUMA
//! locality, network traffic). The substitution preserves exactly the
//! causal chain the paper relies on — violations admit too much workload,
//! co-peaks then saturate the machine, saturation inflates waiting time —
//! so the *correlation structure* between violation rate and tail latency
//! survives even though absolute milliseconds are not modeled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod power;
pub mod report;

pub use model::LatencyModel;
pub use power::{apply_cap, worst_rho, CapOutcome, PowerModel, QosTier};
pub use report::{slo_miss_rate, QosReport};
