//! Per-machine QoS summaries and SLO accounting.

use oc_stats::{percentile_slice, StatsError};

/// Summary of one machine's CPU scheduling latency over a period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosReport {
    /// Mean latency.
    pub mean: f64,
    /// Median latency.
    pub p50: f64,
    /// 90th-percentile latency (the production tail metric of Figure 14(b)).
    pub p90: f64,
    /// 99th-percentile latency (the tail metric of Figure 3(d)).
    pub p99: f64,
    /// Largest single-tick latency.
    pub max: f64,
}

impl QosReport {
    /// Summarizes a latency series.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty series.
    pub fn from_series(latency: &[f64]) -> Result<QosReport, StatsError> {
        if latency.is_empty() {
            return Err(StatsError::Empty);
        }
        Ok(QosReport {
            mean: latency.iter().sum::<f64>() / latency.len() as f64,
            p50: percentile_slice(latency, 50.0)?,
            p90: percentile_slice(latency, 90.0)?,
            p99: percentile_slice(latency, 99.0)?,
            max: latency.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Returns a copy with every field divided by `unit` (for the paper's
    /// "normalized to the mean latency at zero violations" plots).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `unit` is not positive.
    pub fn normalized(&self, unit: f64) -> Result<QosReport, StatsError> {
        if !(unit > 0.0) {
            return Err(StatsError::InvalidParameter {
                what: "normalization unit must be positive",
            });
        }
        Ok(QosReport {
            mean: self.mean / unit,
            p50: self.p50 / unit,
            p90: self.p90 / unit,
            p99: self.p99 / unit,
            max: self.max / unit,
        })
    }
}

/// Fraction of ticks whose latency exceeds an SLO threshold.
pub fn slo_miss_rate(latency: &[f64], threshold: f64) -> f64 {
    if latency.is_empty() {
        return 0.0;
    }
    latency.iter().filter(|&&l| l > threshold).count() as f64 / latency.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_percentiles() {
        let series: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let r = QosReport::from_series(&series).unwrap();
        assert!((r.mean - 50.5).abs() < 1e-9);
        assert!((r.p50 - 50.5).abs() < 1e-9);
        assert!(r.p90 > r.p50 && r.p99 > r.p90);
        assert_eq!(r.max, 100.0);
    }

    #[test]
    fn empty_series_is_an_error() {
        assert!(QosReport::from_series(&[]).is_err());
    }

    #[test]
    fn normalization() {
        let r = QosReport::from_series(&[2.0, 4.0]).unwrap();
        let n = r.normalized(2.0).unwrap();
        assert!((n.mean - 1.5).abs() < 1e-12);
        assert_eq!(n.max, 2.0);
        assert!(r.normalized(0.0).is_err());
    }

    #[test]
    fn slo_misses() {
        let series = [1.0, 2.0, 3.0, 10.0];
        assert!((slo_miss_rate(&series, 2.5) - 0.5).abs() < 1e-12);
        assert_eq!(slo_miss_rate(&[], 1.0), 0.0);
    }
}
