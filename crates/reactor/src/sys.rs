//! Platform backends. All `unsafe` in the crate lives below this module:
//! raw `extern "C"` declarations for the libc symbols every Rust binary
//! already links (no external crates — the build environment vendors
//! everything).

#[cfg(unix)]
mod fd;
#[cfg(unix)]
pub use fd::{close_fd, pipe_nonblocking, raise_nofile_limit, read_fd, write_fd};

#[cfg(target_os = "linux")]
mod epoll;
#[cfg(target_os = "linux")]
pub use epoll::{EventBuf, Selector};

#[cfg(all(unix, not(target_os = "linux")))]
mod poll;
#[cfg(all(unix, not(target_os = "linux")))]
pub use poll::{EventBuf, Selector};

#[cfg(not(unix))]
mod unsupported;
#[cfg(not(unix))]
pub use unsupported::{
    close_fd, pipe_nonblocking, raise_nofile_limit, read_fd, write_fd, EventBuf, Selector,
};
