//! Stub backend for non-Unix targets: everything type-checks, every
//! constructor fails with `Unsupported` at runtime. The oc-serve reactor
//! frontend detects this at startup and the threaded frontend remains
//! available.

use crate::{Event, Interest, RawFd};
use std::io;
use std::time::Duration;

fn unsupported<T>() -> io::Result<T> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "oc-reactor: readiness polling is only implemented on Unix",
    ))
}

pub struct EventBuf;

impl EventBuf {
    pub fn with_capacity(_capacity: usize) -> EventBuf {
        EventBuf
    }
}

pub struct Selector;

impl Selector {
    pub fn new() -> io::Result<Selector> {
        unsupported()
    }

    pub fn register(&self, _fd: RawFd, _token: usize, _interest: Interest) -> io::Result<()> {
        unsupported()
    }

    pub fn reregister(&self, _fd: RawFd, _token: usize, _interest: Interest) -> io::Result<()> {
        unsupported()
    }

    pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
        unsupported()
    }

    pub fn wait(
        &self,
        _buf: &mut EventBuf,
        _out: &mut Vec<Event>,
        _timeout: Option<Duration>,
    ) -> io::Result<()> {
        unsupported()
    }
}

pub fn close_fd(_fd: RawFd) {}

pub fn read_fd(_fd: RawFd, _buf: &mut [u8]) -> io::Result<usize> {
    unsupported()
}

pub fn write_fd(_fd: RawFd, _buf: &[u8]) -> io::Result<usize> {
    unsupported()
}

pub fn raise_nofile_limit() -> io::Result<u64> {
    unsupported()
}
