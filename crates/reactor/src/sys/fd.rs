//! Shared Unix fd helpers: pipe creation, raw read/write/close, and the
//! best-effort `RLIMIT_NOFILE` raise.

use crate::RawFd;
use std::io;
use std::os::raw::{c_int, c_void};

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
}

#[cfg(not(target_os = "linux"))]
extern "C" {
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8; // macOS / BSD value

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// Close an fd, ignoring errors (used from `Drop` paths).
pub fn close_fd(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Raw non-blocking read. Returns `Ok(0)` on EOF.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Raw non-blocking write.
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr() as *const c_void, buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Create a non-blocking close-on-exec pipe; returns `(read, write)`.
#[cfg(target_os = "linux")]
pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;
    let mut fds = [0 as c_int; 2];
    if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((fds[0], fds[1]))
}

/// Create a non-blocking close-on-exec pipe; returns `(read, write)`.
/// Non-Linux Unix lacks `pipe2`, so flags are applied with `fcntl`
/// afterwards (a benign race in multi-threaded exec'ing programs; this
/// workspace does not exec between the two calls).
#[cfg(not(target_os = "linux"))]
pub fn pipe_nonblocking() -> io::Result<(RawFd, RawFd)> {
    const F_SETFL: c_int = 4;
    const F_SETFD: c_int = 2;
    const FD_CLOEXEC: c_int = 1;
    const O_NONBLOCK: c_int = 0o4; // macOS / BSD value
    let mut fds = [0 as c_int; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    for fd in fds {
        if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0
            || unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) } < 0
        {
            let err = io::Error::last_os_error();
            close_fd(fds[0]);
            close_fd(fds[1]);
            return Err(err);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Best-effort raise of the `RLIMIT_NOFILE` soft limit to the hard
/// limit. Returns the soft limit now in effect; a denied raise (e.g. no
/// `CAP_SYS_RESOURCE` trying to exceed the hard cap — not possible here,
/// we only go up to it) degrades to the old soft limit.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= lim.rlim_max {
        return Ok(lim.rlim_cur);
    }
    let want = Rlimit {
        rlim_cur: lim.rlim_max,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
        return Ok(lim.rlim_cur); // best-effort: keep the old soft limit
    }
    Ok(want.rlim_cur)
}
