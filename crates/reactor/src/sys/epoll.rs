//! Linux `epoll` backend (level-triggered).

use crate::{Event, Interest, RawFd};
use std::io;
use std::os::raw::c_int;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

// The kernel ABI packs epoll_event on x86-64 (12 bytes, no padding
// between `events` and `data`); other architectures use natural C layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

fn interest_bits(interest: Interest) -> u32 {
    let mut bits = EPOLLRDHUP;
    if interest.is_readable() {
        bits |= EPOLLIN;
    }
    if interest.is_writable() {
        bits |= EPOLLOUT;
    }
    bits
}

fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            // Round sub-millisecond timeouts up so a short deadline does
            // not degenerate into a zero-timeout busy loop.
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            ms.min(c_int::MAX as u128) as c_int
        }
    }
}

/// Raw `epoll_event` buffer reused across waits.
pub struct EventBuf {
    raw: Vec<EpollEvent>,
}

impl EventBuf {
    pub fn with_capacity(capacity: usize) -> EventBuf {
        EventBuf {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity],
        }
    }
}

/// `epoll` selector: one epoll instance, closed on drop.
pub struct Selector {
    epfd: RawFd,
}

impl Selector {
    pub fn new() -> io::Result<Selector> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Selector { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest_bits(interest),
            data: token as u64,
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // A zeroed event for DEL: required on pre-2.6.9 kernels, harmless
        // everywhere else.
        let mut ev = EpollEvent { events: 0, data: 0 };
        if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(
        &self,
        buf: &mut EventBuf,
        out: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let n = unsafe {
            epoll_wait(
                self.epfd,
                buf.raw.as_mut_ptr(),
                buf.raw.len() as c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: report as an empty wait
            }
            return Err(err);
        }
        for raw in &buf.raw[..n as usize] {
            // Copy out of the (possibly packed) struct before reading.
            let bits = raw.events;
            let data = raw.data;
            out.push(Event::new(
                data as usize,
                bits & EPOLLIN != 0,
                bits & EPOLLOUT != 0,
                bits & EPOLLERR != 0,
                bits & (EPOLLRDHUP | EPOLLHUP) != 0,
            ));
        }
        Ok(())
    }
}

impl Drop for Selector {
    fn drop(&mut self) {
        super::close_fd(self.epfd);
    }
}
