//! `poll(2)` fallback backend for non-Linux Unix.
//!
//! Interest is tracked in user space (a mutex-guarded map rebuilt into a
//! `pollfd` array per wait). This is O(fds) per wait — fine for the
//! portability fallback; Linux production deployments use the `epoll`
//! backend.

use crate::{Event, Interest, RawFd};
use std::collections::BTreeMap;
use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::sync::Mutex;
use std::time::Duration;

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

extern "C" {
    // nfds_t is `unsigned long` on Linux and `unsigned int` on the BSDs;
    // passing a small value as c_ulong is ABI-compatible on the LP64
    // register conventions this fallback targets.
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

fn interest_bits(interest: Interest) -> c_short {
    let mut bits = 0;
    if interest.is_readable() {
        bits |= POLLIN;
    }
    if interest.is_writable() {
        bits |= POLLOUT;
    }
    bits
}

fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            ms.min(c_int::MAX as u128) as c_int
        }
    }
}

/// No raw buffer needed: events are converted directly out of the
/// `pollfd` snapshot.
pub struct EventBuf {
    cap: usize,
}

impl EventBuf {
    pub fn with_capacity(capacity: usize) -> EventBuf {
        EventBuf { cap: capacity }
    }
}

/// `poll(2)` selector: interest map keyed by fd (BTreeMap for a
/// deterministic pollfd order).
pub struct Selector {
    fds: Mutex<BTreeMap<RawFd, (usize, Interest)>>,
}

impl Selector {
    pub fn new() -> io::Result<Selector> {
        Ok(Selector {
            fds: Mutex::new(BTreeMap::new()),
        })
    }

    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut fds = self.fds.lock().unwrap();
        if fds.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        fds.insert(fd, (token, interest));
        Ok(())
    }

    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut fds = self.fds.lock().unwrap();
        match fds.get_mut(&fd) {
            Some(entry) => {
                *entry = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut fds = self.fds.lock().unwrap();
        match fds.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub fn wait(
        &self,
        buf: &mut EventBuf,
        out: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        // Snapshot under the lock, poll outside it: registrations made
        // while blocked are seen on the next wait (a Waker covers the
        // cross-thread nudge case).
        let mut pollfds: Vec<PollFd> = {
            let fds = self.fds.lock().unwrap();
            fds.iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: interest_bits(interest),
                    revents: 0,
                })
                .collect()
        };
        let n = unsafe {
            poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        if n == 0 {
            return Ok(());
        }
        let tokens = self.fds.lock().unwrap();
        for pfd in &pollfds {
            if pfd.revents == 0 || out.len() >= buf.cap {
                continue;
            }
            // Skip fds deregistered while we were polling (and POLLNVAL
            // from fds closed without deregistration).
            let Some(&(token, _)) = tokens.get(&pfd.fd) else {
                continue;
            };
            if pfd.revents & POLLNVAL != 0 {
                continue;
            }
            out.push(Event::new(
                token,
                pfd.revents & POLLIN != 0,
                pfd.revents & POLLOUT != 0,
                pfd.revents & POLLERR != 0,
                pfd.revents & POLLHUP != 0,
            ));
        }
        Ok(())
    }
}
