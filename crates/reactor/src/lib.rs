//! Vendored std-only readiness polling.
//!
//! This crate is the workspace's stand-in for `mio`/`polling` (the build
//! environment has no crates.io access, so we vendor a minimal wrapper
//! over the OS readiness APIs). It provides:
//!
//! - [`Poller`] — a level-triggered readiness selector backed by `epoll`
//!   on Linux and `poll(2)` on other Unix systems. Non-Unix targets get a
//!   stub whose constructor returns [`std::io::ErrorKind::Unsupported`].
//! - [`Waker`] — a pipe-based cross-thread wakeup handle tied to a
//!   reserved token, so a blocked [`Poller::wait`] can be interrupted
//!   without a polling interval (used by oc-serve's accept loop and
//!   reactor threads for prompt shutdown).
//! - [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` soft-to-hard
//!   raise for high fan-in servers and load generators.
//!
//! The API is deliberately tiny and synchronous: one selector per thread,
//! `register`/`reregister`/`deregister` by raw fd, and a `wait` that fills
//! a caller-owned [`Events`] buffer. All readiness is level-triggered:
//! callers must drain (read to `WouldBlock` / write until blocked) or
//! de-assert interest, or `wait` will report the same readiness again.
//!
//! This is the only crate in the workspace that contains `unsafe` code
//! (raw FFI to the libc symbols already linked into every Rust binary);
//! everything above it — oc-serve's reactor, the client fan-in driver —
//! stays `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::ops::BitOr;
use std::time::Duration;

mod sys;

/// Raw OS file descriptor accepted by [`Poller`] registration calls.
///
/// On Unix this is `std::os::unix::io::RawFd`; a same-width alias is
/// provided elsewhere so the crate still type-checks on non-Unix targets
/// (where every operation fails with `Unsupported`).
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;

/// See the Unix variant; stub alias for non-Unix targets.
#[cfg(not(unix))]
pub type RawFd = i32;

/// Readiness interest: which directions of I/O a registration wants
/// reported. Combine with `|`: `Interest::READABLE | Interest::WRITABLE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the fd is readable (data, EOF, or peer close).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the fd is writable (send buffer has room again).
    pub const WRITABLE: Interest = Interest(0b10);

    /// True if this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// True if this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification returned by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: usize,
    readable: bool,
    writable: bool,
    error: bool,
    read_closed: bool,
}

impl Event {
    pub(crate) fn new(
        token: usize,
        readable: bool,
        writable: bool,
        error: bool,
        read_closed: bool,
    ) -> Event {
        Event {
            token,
            readable,
            writable,
            error,
            read_closed,
        }
    }

    /// The token supplied at registration time.
    pub fn token(self) -> usize {
        self.token
    }

    /// Readable — includes EOF/peer-close/error conditions, so a caller
    /// that only checks `is_readable` will still observe the close when
    /// its next read returns 0 or an error.
    pub fn is_readable(self) -> bool {
        self.readable || self.error || self.read_closed
    }

    /// Writable (or in an error state, which a write will surface).
    pub fn is_writable(self) -> bool {
        self.writable || self.error
    }

    /// Error condition (`EPOLLERR`/`POLLERR`) on the fd.
    pub fn is_error(self) -> bool {
        self.error
    }

    /// The peer closed its write half (`EPOLLRDHUP`/`POLLHUP`): reads
    /// will drain any buffered bytes and then return EOF.
    pub fn is_read_closed(self) -> bool {
        self.read_closed
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poller::wait`].
pub struct Events {
    sys: sys::EventBuf,
    list: Vec<Event>,
}

impl Events {
    /// Create a buffer that can report up to `capacity` events per wait.
    /// More ready fds than `capacity` are reported on subsequent waits
    /// (level-triggered readiness persists until handled).
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            sys: sys::EventBuf::with_capacity(capacity),
            list: Vec::with_capacity(capacity),
        }
    }

    /// Iterate over the events from the most recent wait.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.list.iter()
    }

    /// Number of events from the most recent wait.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the most recent wait returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.list.iter()
    }
}

/// A level-triggered readiness selector (`epoll` on Linux, `poll(2)` on
/// other Unix systems).
///
/// Tokens are caller-chosen `usize` values echoed back in events; the
/// poller does not interpret them. Registering an fd that is already
/// registered is an error on Linux (`EEXIST`) — use [`Poller::reregister`]
/// to change token or interest. Closing an fd removes it from an epoll
/// set automatically, but prefer explicit [`Poller::deregister`] so the
/// `poll(2)` backend (which tracks interest in user space) stays in sync.
pub struct Poller {
    sel: sys::Selector,
}

impl Poller {
    /// Create a new selector. Fails with `Unsupported` on non-Unix.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            sel: sys::Selector::new()?,
        })
    }

    /// Start watching `fd` with the given token and interest.
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.sel.register(fd, token, interest)
    }

    /// Change the token and/or interest of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.sel.reregister(fd, token, interest)
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.sel.deregister(fd)
    }

    /// Block until at least one registered fd is ready, `timeout` elapses
    /// (`None` blocks indefinitely), or a [`Waker`] fires. Fills `events`
    /// and returns the number of events. A signal interruption (`EINTR`)
    /// is reported as an empty wait, not an error.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.list.clear();
        self.sel.wait(&mut events.sys, &mut events.list, timeout)?;
        Ok(events.list.len())
    }
}

/// Cross-thread wakeup handle for a [`Poller`].
///
/// Internally a non-blocking pipe whose read end is registered with the
/// poller under a caller-reserved token. [`Waker::wake`] is async-safe to
/// call from any thread; the poller's owning thread must call
/// [`Waker::drain`] when it sees the token, or (level-triggered) every
/// subsequent wait returns immediately.
///
/// The waker must not outlive its poller's use of it: dropping the waker
/// closes the pipe but does not deregister it (the `epoll` backend cleans
/// up on close; the `poll(2)` backend requires an explicit
/// [`Poller::deregister`] first).
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Create a waker and register its read end with `poller` under
    /// `token`.
    pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        let waker = Waker { read_fd, write_fd };
        poller.register(read_fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// The registered read-end fd (for explicit deregistration).
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wake the poller. Idempotent while a wake is pending: if the pipe
    /// is already full the poller is guaranteed to wake, so a would-block
    /// write counts as success.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write_fd(self.write_fd, &[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => self.wake(),
            Err(e) => Err(e),
        }
    }

    /// Consume all pending wakeups. Call from the poller thread when an
    /// event with the waker's token is seen.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match sys::read_fd(self.read_fd, &mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// Best-effort raise of the process `RLIMIT_NOFILE` soft limit to the
/// hard limit. Returns the soft limit now in effect (the old one if the
/// raise failed or was unnecessary). High fan-in callers (the reactor
/// server, the 10k-connection load generator) call this at startup; a
/// failure is not an error — the caller just lives with the smaller
/// limit and its connection cap.
pub fn raise_nofile_limit() -> io::Result<u64> {
    sys::raise_nofile_limit()
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_event_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(rx.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();
        tx.write_all(b"ping").unwrap();

        let mut events = Events::with_capacity(4);
        // Level-triggered: unread data keeps reporting until drained.
        for _ in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1);
            let ev = events.iter().next().unwrap();
            assert_eq!(ev.token(), 7);
            assert!(ev.is_readable());
        }

        let mut rx_nb = rx;
        let mut buf = [0u8; 16];
        assert_eq!(rx_nb.read(&mut buf).unwrap(), 4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn writable_then_deregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(tx.as_raw_fd(), 3, Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().is_writable());

        poller
            .reregister(tx.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "readable interest must mask writability");

        poller.deregister(tx.as_raw_fd()).unwrap();
        poller
            .register(tx.as_raw_fd(), 9, Interest::WRITABLE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), 9);
    }

    #[test]
    fn waker_interrupts_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, 0).unwrap());

        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });

        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), 0);
        assert!(start.elapsed() < Duration::from_secs(5));
        waker.drain();

        // Drained: the next wait times out instead of re-reporting.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();

        // Coalescing: many wakes, one drain.
        for _ in 0..1000 {
            waker.wake().unwrap();
        }
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn raise_nofile_is_best_effort() {
        // Must not error on Unix; the value is whatever the host grants.
        let limit = raise_nofile_limit().unwrap();
        assert!(limit > 0);
    }
}
