//! Case scheduling: configuration and per-case RNG derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases (the upstream default), overridable with the
    /// `PROPTEST_CASES` environment variable.
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of the test name: the per-test base seed.
///
/// Deterministic across runs and processes so failures reproduce exactly.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG for one case of one test.
pub fn case_rng(name_seed: u64, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(name_seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seed_distinguishes_names() {
        assert_ne!(name_seed("alpha"), name_seed("beta"));
        assert_eq!(name_seed("alpha"), name_seed("alpha"));
    }

    #[test]
    fn with_cases_sets_count() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
