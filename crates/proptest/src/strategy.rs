//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A source of generated values for one property-test case.
pub type TestRng = SmallRng;

/// Types that can generate values of `Self::Value` from a [`TestRng`].
///
/// Unlike upstream proptest there is no shrink tree: a strategy is just a
/// deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                // Wrapping: the full-u64 domain has span 2^64, which wraps
                // to 0 and is handled below instead of overflowing here.
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Inclusive upper bound: scale a 53-bit draw by 1/(2^53 - 1).
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// A vector-length specification (`1..50`, `0..=8`, or an exact `usize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// Largest allowed length, inclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
